"""Command-line interface: ``python -m repro <command> ...``.

The end-to-end tool the paper's §VIII asks for ("we should integrate
our techniques into one system, so that we can provide a program as
input and ... receive a reordered, improved program as output"):

* ``reorder FILE``  — read a Prolog program, print the reordered one;
* ``analyze FILE``  — print what the analyses infer (fixity,
  semifixity, recursion, legal modes, warnings);
* ``run FILE QUERY`` — execute a query, printing answers and the call
  count;
* ``compare FILE QUERY`` — run a query on both the original and the
  reordered program and report the improvement ratio;
* ``profile FILE QUERY`` — run a query fully instrumented (event bus,
  pipeline spans, search counters, calibration drift) and export the
  telemetry as JSONL (see docs/OBSERVABILITY.md);
* ``serve FILE`` — long-lived concurrent query server with snapshot
  isolation and admission control (see docs/SERVING.md);
* ``client ADDRESS OP`` — one request against a running server;
* ``tables [N ...]`` — regenerate the paper's tables.

``run``, ``compare`` and ``reorder`` accept ``--profile`` (human
telemetry summary) and ``--json PATH`` (JSONL export; ``-`` = stdout).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    CallGraph,
    Declarations,
    FixityAnalysis,
    ModeInference,
    SemifixityAnalysis,
    all_input_modes,
    mode_str,
    recursive_predicates,
)
from .errors import BudgetExceededError, ReproError
from .prolog import Database, Engine, indicator_str, term_to_string
from .reorder import ReorderOptions, Reorderer
from .robustness import Budget

__all__ = [
    "main", "build_parser", "EXIT_ERROR", "EXIT_RESOURCE",
    "EXIT_UNAVAILABLE",
]

#: Exit code for parse/load/run-time errors (the historical one).
EXIT_ERROR = 2
#: Exit code for resource exhaustion: a ``--timeout`` deadline expired
#: or a budget ran out (the :class:`~repro.errors.BudgetExceededError`
#: family). Distinct from :data:`EXIT_ERROR` so callers can tell "the
#: program is wrong" from "the program ran out of time".
EXIT_RESOURCE = 3
#: Exit code for "this server cannot take the work right now": the
#: admission controller shed the request (queue full / draining), or
#: ``repro client`` could not reach the server at all. Distinct from
#: :data:`EXIT_RESOURCE` because the work was never attempted — a
#: retry (or another replica) is the right response, not a bigger
#: budget. Mirrored as literals in ``repro.serve.protocol.STATUS_EXIT``
#: (pinned against this table by ``tests/serve/test_protocol.py``).
EXIT_UNAVAILABLE = 4

#: The exit-code taxonomy, in ``repro --help`` form (docs/ROBUSTNESS.md
#: carries the full prose table).
EXIT_CODE_EPILOG = """\
exit codes:
  0  success
  1  mismatch: compare/verify found differing answer sets
  2  error: parse, load, or run-time failure
  3  resource: a --timeout deadline or budget ran out
  4  unavailable: the server shed the request (admission queue full or
     draining) or was unreachable; retry or try another replica
"""


def _load(path: str, indexing: bool = True) -> Database:
    with open(path) as handle:
        database = Database.from_source(handle.read(), indexing=indexing)
    for warning in database.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    return database


def _options_from_args(args: argparse.Namespace) -> ReorderOptions:
    return ReorderOptions(
        reorder_goals=not args.no_goals,
        reorder_clauses=not args.no_clauses,
        specialize=not args.no_specialize,
        runtime_tests=args.runtime_tests,
        unfold_rounds=args.unfold,
        exhaustive_limit=args.exhaustive_limit,
        table_all=getattr(args, "table_all", False),
        phase_timeout=getattr(args, "phase_timeout", None),
        astar_node_budget=getattr(args, "astar_node_budget", None),
    )


def _add_profile_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", action="store_true",
                        help="print a telemetry summary (events, spans, wall time)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write telemetry as JSONL to PATH ('-' = stdout)")


def _add_table_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--table-all", action="store_true",
                        help="table every user predicate (variant memoization; "
                             "see docs/TABLING.md)")


def _add_eval_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--eval", choices=["topdown", "bottomup", "auto"],
                        default="topdown", dest="eval_strategy",
                        help="evaluation strategy: topdown SLD (default), "
                             "bottomup semi-naive for datalog-eligible "
                             "strata, or auto per-stratum cost-model choice "
                             "(see docs/EVALUATION.md)")


def _add_robustness_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="wall-clock deadline; expiry exits with code "
                             f"{EXIT_RESOURCE} (see docs/ROBUSTNESS.md)")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="inject deterministic faults, e.g. "
                             "'engine.call:raise@5' (testing harness; "
                             "see docs/ROBUSTNESS.md)")
    parser.add_argument("--fault-seed", type=int, default=0, metavar="N",
                        help="seed for --faults trigger positions (default 0)")


def _deadline_budget(args: argparse.Namespace) -> Optional[Budget]:
    """One shared Budget for every stage of this command (or None)."""
    timeout = getattr(args, "timeout", None)
    return Budget(deadline=timeout) if timeout is not None else None


def _add_reorder_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-goals", action="store_true",
                        help="do not reorder goals within clauses")
    parser.add_argument("--no-clauses", action="store_true",
                        help="do not reorder clauses within predicates")
    parser.add_argument("--no-specialize", action="store_true",
                        help="reorder in place instead of per-mode versions")
    parser.add_argument("--runtime-tests", action="store_true",
                        help="emit nonvar-guarded if-then-else (paper §V-D)")
    parser.add_argument("--unfold", type=int, default=0, metavar="N",
                        help="apply N unfolding sweeps first (paper §VIII)")
    parser.add_argument("--exhaustive-limit", type=int, default=6,
                        help="max block size for exhaustive search (then A*)")
    parser.add_argument("--phase-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-predicate build deadline; an expired build "
                             "degrades that predicate to source order")
    parser.add_argument("--astar-node-budget", type=int, default=None,
                        metavar="N",
                        help="A* node-expansion cap per block (exhaustion "
                             "falls back to a greedy admissible completion)")


def command_reorder(args: argparse.Namespace) -> int:
    """``reorder FILE``: print the reordered program."""
    database = _load(args.file)
    reorderer = Reorderer(
        database, _options_from_args(args), budget=_deadline_budget(args)
    )
    program = reorderer.reorder()
    print(program.source(), end="")
    if args.report:
        print("\n% --- report " + "-" * 40, file=sys.stderr)
        for line in program.report.summary().splitlines():
            print(f"% {line}", file=sys.stderr)
    if args.profile:
        print("% --- pipeline spans " + "-" * 32, file=sys.stderr)
        for line in reorderer.spans.format().splitlines():
            print(f"%{line}", file=sys.stderr)
    if args.json:
        from .observability import profile_header, report_records, write_jsonl

        records = [profile_header(command="reorder", file=args.file)]
        records.extend(reorderer.spans.to_records())
        records.append(reorderer.search_counters.to_record())
        records.append(reorderer.context.counters_record())
        records.extend(report_records(program.report))
        write_jsonl(records, args.json)
    return 0


def command_analyze(args: argparse.Namespace) -> int:
    """``analyze FILE``: print what the static analyses infer."""
    database = _load(args.file)
    declarations = Declarations.from_database(database)
    graph = CallGraph(database)
    fixity = FixityAnalysis(database, graph, declarations)
    semifixity = SemifixityAnalysis(database, graph, declarations)
    inference = ModeInference(database, declarations, graph)

    print("entry points:")
    for entry in graph.entry_points(declarations.entries):
        print(f"  {indicator_str(entry)}")
    print("recursive:")
    for indicator in sorted(recursive_predicates(graph) | declarations.recursive):
        print(f"  {indicator_str(indicator)}")
    print("fixed (side-effecting):")
    for indicator in sorted(fixity.fixed_predicates):
        print(f"  {indicator_str(indicator)}")
    print("semifixed (culprit positions):")
    for indicator in database.predicates():
        positions = semifixity.positions(indicator)
        if positions:
            print(f"  {indicator_str(indicator)}: {sorted(positions)}")
    print("legal modes:")
    for indicator in database.predicates():
        pairs = []
        for mode in all_input_modes(indicator[1]):
            output = inference.output_mode(indicator, mode)
            if output is not None:
                pairs.append(f"{mode_str(mode)}->{mode_str(output)}")
        print(f"  {indicator_str(indicator)}: {', '.join(pairs) or 'NONE'}")
    for warning in inference.warnings:
        print(f"warning: {warning}")
    return 0


def _print_profile_summary(bus, metrics) -> None:
    """Human-readable telemetry summary to stderr."""
    counts = bus.counts()
    ports = ", ".join(
        f"{port}={counts.get(f'port.{port}', 0)}"
        for port in ("call", "exit", "redo", "fail")
    )
    print(f"% events  : {len(bus)} ({ports})", file=sys.stderr)
    if bus.truncated:
        print(f"% events  : {bus.dropped} dropped (limit {bus.limit})",
              file=sys.stderr)
    index_events = bus.by_kind("index")
    if index_events:
        hits = sum(1 for e in index_events if e.hit)
        narrowed = sum(1 for e in index_events if e.candidates < e.total)
        print(
            f"% index   : {len(index_events)} lookups, {hits} keyed, "
            f"{narrowed} narrowed",
            file=sys.stderr,
        )
    if metrics.table_hits or metrics.table_misses:
        print(
            f"% tables  : {metrics.table_hits} hits, "
            f"{metrics.table_misses} misses, "
            f"{metrics.table_answers} answers, "
            f"{metrics.tables_completed} completed",
            file=sys.stderr,
        )
    wall = bus.predicate_wall_seconds()
    by_calls = sorted(
        metrics.calls_by_predicate.items(), key=lambda item: -item[1]
    )[:8]
    print("% top predicates (calls, boxed wall time):", file=sys.stderr)
    for indicator, calls in by_calls:
        seconds = wall.get(indicator, 0.0)
        print(
            f"%   {indicator[0]}/{indicator[1]:<3} {calls:>8} calls"
            f"  {seconds * 1e3:9.3f} ms",
            file=sys.stderr,
        )


def command_run(args: argparse.Namespace) -> int:
    """``run FILE QUERY``: execute a query, printing answers + calls."""
    database = _load(args.file)
    engine = Engine(
        database,
        table_all=args.table_all,
        vm=getattr(args, "vm", False),
        budget=_deadline_budget(args),
        eval_strategy=getattr(args, "eval_strategy", "topdown"),
    )
    if getattr(args, "dump_bytecode", False):
        from .prolog.vm import disassemble_database

        print(disassemble_database(database), end="", file=sys.stderr)
    bus = None
    if args.profile or args.json:
        from .observability import attach

        bus = attach(engine)
    solutions, metrics = engine.run(args.query)
    for solution in solutions:
        bindings = ", ".join(
            f"{name} = {term_to_string(term)}"
            for name, term in solution.bindings.items()
        )
        print(bindings or "true")
    if not solutions:
        print("no")
    print(f"% {len(solutions)} solution(s), {metrics.calls} calls")
    if metrics.table_hits or metrics.table_misses:
        print(
            f"% tables: {metrics.table_hits} hits, {metrics.table_misses} "
            f"misses, {metrics.table_answers} answers"
        )
    if engine.output_text():
        print(f"% output: {engine.output_text()!r}")
    if bus is not None and args.profile:
        _print_profile_summary(bus, metrics)
    if bus is not None and args.json:
        from .observability import (
            event_records,
            metrics_record,
            profile_header,
            solutions_record,
            write_jsonl,
        )

        records = [
            profile_header(
                command="run", file=args.file, query=args.query,
                dropped=bus.dropped, sampled_rate=1.0,
            )
        ]
        records.append(metrics_record(metrics))
        records.append(solutions_record(solutions))
        records.extend(event_records(bus))
        write_jsonl(records, args.json)
    return 0


def command_disasm(args: argparse.Namespace) -> int:
    """``disasm FILE``: print the compiled bytecode per clause."""
    from .prolog.vm import disassemble_database, disassemble_predicate

    database = _load(args.file)
    if args.predicate is None:
        print(disassemble_database(database), end="")
        return 0
    name, slash, arity_text = args.predicate.rpartition("/")
    if not slash or not arity_text.isdigit():
        print(f"error: bad predicate spec {args.predicate!r} "
              f"(expected name/arity)", file=sys.stderr)
        return EXIT_ERROR
    indicator = (name, int(arity_text))
    if not database.defines(indicator):
        print(f"error: unknown predicate {args.predicate}", file=sys.stderr)
        return EXIT_ERROR
    print("\n".join(disassemble_predicate(database, indicator)))
    return 0


def compare_exit_code(
    original_count: int, new_count: int, matches: bool
) -> int:
    """Exit code of ``compare``: nonzero when the answer sets differ,
    including the asymmetric-emptiness case (one run found solutions,
    the other none) the paper treats as an outright reordering bug."""
    if (original_count == 0) != (new_count == 0):
        return 1
    return 0 if matches else 1


def _compare_run(engine, query: str, timeout: Optional[float]):
    """Run one side of a ``compare`` under its own deadline.

    Returns ``(solutions, metrics, timed_out)``. A timed-out run keeps
    the partial metrics charged up to the deadline so the other
    version's numbers can still be reported (satellite: no dying with
    the first version's traceback).
    """
    before = engine.metrics.snapshot()
    timed_out = False
    try:
        budget = Budget(deadline=timeout) if timeout is not None else None
        solutions = engine.ask(query, budget=budget)
    except BudgetExceededError:
        solutions = []
        timed_out = True
    return solutions, engine.metrics.snapshot() - before, timed_out


def command_compare(args: argparse.Namespace) -> int:
    """``compare FILE QUERY``: original vs reordered call counts.

    With ``--timeout`` each version runs under its own deadline; a
    version that exceeds it is reported with a ``TIMEOUT`` marker and
    the command exits with :data:`EXIT_RESOURCE` instead of dying with
    a traceback — the surviving version's numbers still print.
    """
    database = _load(args.file)
    report = None
    spans = None
    search = None
    strategy = getattr(args, "eval_strategy", "topdown")
    if args.method == "warren":
        from .baselines.warren import WarrenReorderer

        reordered_database = WarrenReorderer(database).reorder_program()
        new_engine = Engine(
            reordered_database, table_all=args.table_all, eval_strategy=strategy
        )
    else:
        reorderer = Reorderer(
            database, _options_from_args(args), budget=_deadline_budget(args)
        )
        program = reorderer.reorder()
        new_engine = program.engine(
            table_all=args.table_all, eval_strategy=strategy
        )
        report, spans, search = (
            program.report, reorderer.spans, reorderer.search_counters
        )
    original_engine = Engine(
        database, table_all=args.table_all, eval_strategy=strategy
    )
    original_bus = new_bus = None
    if args.profile or args.json:
        from .observability import attach

        original_bus = attach(original_engine)
        new_bus = attach(new_engine)
    original_solutions, original, original_timeout = _compare_run(
        original_engine, args.query, args.timeout
    )
    new_solutions, new, new_timeout = _compare_run(
        new_engine, args.query, args.timeout
    )
    any_timeout = original_timeout or new_timeout
    matches = sorted(s.key() for s in original_solutions) == sorted(
        s.key() for s in new_solutions
    )
    original_marker = " TIMEOUT (partial)" if original_timeout else ""
    new_marker = " TIMEOUT (partial)" if new_timeout else ""
    print(f"original : {original.calls} calls, "
          f"{len(original_solutions)} solutions{original_marker}")
    print(f"reordered: {new.calls} calls, "
          f"{len(new_solutions)} solutions{new_marker}")
    if any_timeout:
        pass  # a partial run makes the ratio and answer check meaningless
    elif new.calls:
        print(f"ratio    : {original.calls / new.calls:.2f}")
    else:
        print("ratio    : n/a")
        print("warning: reordered run made 0 calls; ratio is undefined",
              file=sys.stderr)
    if any_timeout:
        print("ratio    : n/a (timeout)")
    if (
        original.table_hits or original.table_misses
        or new.table_hits or new.table_misses
    ):
        print(
            f"tables   : original {original.table_hits} hits/"
            f"{original.table_misses} misses, "
            f"reordered {new.table_hits} hits/{new.table_misses} misses"
        )
    if not any_timeout and (len(original_solutions) == 0) != (len(new_solutions) == 0):
        print(
            "warning: one run returned solutions and the other none — "
            "the reordering is not set-equivalent on this query",
            file=sys.stderr,
        )
    if any_timeout:
        which = ", ".join(
            name for name, hit in (
                ("original", original_timeout), ("reordered", new_timeout)
            ) if hit
        )
        print(f"answers  : incomparable ({which} timed out)")
        print(
            f"error: comparison partial — {which} exceeded the "
            f"{args.timeout:g}s deadline",
            file=sys.stderr,
        )
    else:
        print(f"answers  : {'identical set' if matches else 'DIFFER (bug!)'}")
    if args.json:
        from .observability import (
            event_records,
            metrics_record,
            profile_header,
            report_records,
            solutions_record,
            write_jsonl,
        )

        from .observability import degenerate_record

        records = [
            profile_header(
                command="compare", file=args.file, query=args.query,
                method=args.method,
                dropped=original_bus.dropped + new_bus.dropped,
                sampled_rate=1.0,
            )
        ]
        records.append(metrics_record(original, run="original"))
        records.append(solutions_record(original_solutions, run="original"))
        records.append(metrics_record(new, run="reordered"))
        records.append(solutions_record(new_solutions, run="reordered"))
        for run_name, metrics_snapshot, hit in (
            ("original", original, original_timeout),
            ("reordered", new, new_timeout),
        ):
            if not hit and metrics_snapshot.calls == 0:
                records.append(
                    degenerate_record(
                        "zero calls; ratio is undefined",
                        run=run_name,
                        calls=0,
                    )
                )
        for run_name, hit in (
            ("original", original_timeout), ("reordered", new_timeout)
        ):
            if hit:
                records.append({
                    "type": "timeout", "run": run_name,
                    "seconds": args.timeout,
                })
        if spans is not None:
            records.extend(spans.to_records())
        if search is not None:
            records.append(search.to_record())
        if report is not None:
            records.extend(report_records(report))
        records.extend(event_records(original_bus, run="original"))
        records.extend(event_records(new_bus, run="reordered"))
        write_jsonl(records, args.json)
    if args.profile:
        print("% original run:", file=sys.stderr)
        _print_profile_summary(original_bus, original)
        print("% reordered run:", file=sys.stderr)
        _print_profile_summary(new_bus, new)
    if any_timeout:
        return EXIT_RESOURCE
    return compare_exit_code(len(original_solutions), len(new_solutions), matches)


def command_profile(args: argparse.Namespace) -> int:
    """``profile FILE QUERY``: fully instrumented run + JSONL export.

    Produces, in order: a header record, the ten pipeline span records,
    the goal-search counters, the reorder report, engine metrics, the
    solution count, calibration-drift records, and the raw event
    stream. A human summary goes to stderr.

    With ``--follow`` the run uses the sampled streaming recorder
    instead of the exhaustive event bus: a live per-predicate summary
    refreshes on stderr while the query runs, drift comes from the
    continuous :class:`DriftMonitor`, and the JSONL stream carries
    ``stream``/``sample`` records instead of raw events. ``--trace``
    additionally writes a Chrome/Perfetto trace-event file from the
    pipeline spans plus the Byrd boxes (bus windows, or sampled boxes
    under ``--follow``).
    """
    from .analysis.calibration import CalibrationOptions, EmpiricalCalibrator
    from .observability import (
        PIPELINE_PHASES,
        attach,
        event_records,
        metrics_record,
        profile_header,
        report_records,
        solutions_record,
        write_jsonl,
    )
    from .observability.drift import DriftOptions, DriftReporter

    database = _load(args.file)
    # One deadline budget shared by every stage of the command.
    budget = _deadline_budget(args)
    # 1. The reordering pipeline, for spans / search counters / report.
    reorderer = Reorderer(database.copy(), _options_from_args(args), budget=budget)
    program = reorderer.reorder()
    spans = reorderer.spans
    # 2. Empirical calibration (measures its own phase span).
    calibrated = 0
    if args.no_calibrate:
        spans.mark_skipped("calibration")
    else:
        calibrator = EmpiricalCalibrator(
            database,
            CalibrationOptions(
                max_samples=args.calibration_samples,
                task_timeout=args.task_timeout,
            ),
        )
        warnings_before = len(database.warnings)
        with spans.span("calibration") as span:
            declarations = calibrator.calibrate(jobs=args.jobs)
            calibrated = len(declarations.costs)
            span.meta.update(
                measured=calibrated,
                failures=len(calibrator.failures),
                jobs=args.jobs,
            )
            if calibrator.quarantined:
                span.meta.update(quarantined=len(calibrator.quarantined))
        # Failed measurements land on the warnings channel; surface
        # them like every other database warning, and in the report.
        for warning in database.warnings[warnings_before:]:
            print(f"warning: {warning}", file=sys.stderr)
        program.report.calibration_failures = (
            calibrator.failure_warnings() + calibrator.quarantine_warnings()
        )
    spans.ensure(PIPELINE_PHASES)
    # 3. The instrumented run itself (on the original program: that is
    #    what the model's predictions describe). ``--follow`` swaps the
    #    exhaustive event bus for the sampled streaming recorder and
    #    refreshes a live summary while the query runs.
    engine = Engine(database, table_all=args.table_all, budget=budget)
    bus = None
    recorder = None
    if args.follow:
        import threading

        from .observability.streaming import attach_recorder

        recorder = attach_recorder(engine)
        stop = threading.Event()

        def _tick() -> None:
            while not stop.wait(args.follow_interval):
                for line in recorder.summary_lines():
                    print(f"% follow  : {line}", file=sys.stderr)

        ticker = threading.Thread(target=_tick, daemon=True)
        ticker.start()
        try:
            solutions, metrics = engine.run(args.query)
        finally:
            stop.set()
            ticker.join(timeout=1.0)
    else:
        bus = attach(engine)
        try:
            solutions, metrics = engine.run(args.query)
        finally:
            database.events = None
    # 4. Predicted-vs-observed drift: replayed from the event stream,
    #    or fed continuously from the streaming aggregates.
    drift = []
    drift_events = []
    if recorder is not None:
        from .observability.streaming.monitor import DriftMonitor

        monitor = DriftMonitor(
            database, DriftOptions(cost_factor=args.drift_factor)
        )
        drift_events = monitor.feed(recorder.aggregates)
    else:
        reporter = DriftReporter(
            database, DriftOptions(cost_factor=args.drift_factor)
        )
        drift = reporter.report(bus=bus)

    print(f"% profile : {args.file} ?- {args.query}", file=sys.stderr)
    print(f"% answers : {len(solutions)} solution(s), {metrics.calls} calls",
          file=sys.stderr)
    if bus is not None:
        _print_profile_summary(bus, metrics)
    else:
        for line in recorder.summary_lines():
            print(f"% stream  : {line}", file=sys.stderr)
    print("% pipeline spans:", file=sys.stderr)
    for line in spans.format().splitlines():
        print(f"%{line}", file=sys.stderr)
    if recorder is not None:
        print(
            f"% drift   : {len(drift_events)} (predicate, mode) pair(s) "
            f"crossed the threshold (factor {args.drift_factor:g})",
            file=sys.stderr,
        )
        for event in drift_events[: args.drift_top]:
            scc = ", ".join(event.scc)
            print(
                f"%   {event.indicator[0]}/{event.indicator[1]} {event.mode}: "
                f"{'; '.join(event.reasons)} [scc: {scc}]",
                file=sys.stderr,
            )
    else:
        flagged = [record for record in drift if record.flagged]
        print(
            f"% drift   : {len(flagged)}/{len(drift)} (predicate, mode) pairs "
            f"flagged (factor {args.drift_factor:g})",
            file=sys.stderr,
        )
        for record in drift[: args.drift_top]:
            print(f"%   {record.format()}", file=sys.stderr)

    if args.json:
        if recorder is not None:
            header = profile_header(
                command="profile", file=args.file, query=args.query,
                dropped=recorder.dropped,
                sampled_rate=recorder.sampled_rate(),
            )
        else:
            header = profile_header(
                command="profile", file=args.file, query=args.query,
                dropped=bus.dropped, sampled_rate=1.0,
            )
        records = [header]
        records.extend(spans.to_records())
        records.append(reorderer.search_counters.to_record())
        records.append(reorderer.context.counters_record())
        records.extend(report_records(program.report))
        records.append(metrics_record(metrics))
        records.append(solutions_record(solutions))
        if recorder is not None:
            records.extend(recorder.aggregates.to_records())
            records.extend(sample.to_record() for sample in recorder.samples())
            records.extend(event.to_record() for event in drift_events)
        else:
            records.extend(record.to_record() for record in drift)
            records.extend(event_records(bus))
        count = write_jsonl(records, args.json)
        if args.json != "-":
            print(f"% wrote {count} records to {args.json}", file=sys.stderr)
    if args.trace:
        from .observability.streaming.perfetto import write_trace

        count = write_trace(
            args.trace,
            spans=spans,
            bus=bus,
            samples=recorder.samples() if recorder is not None else None,
        )
        print(f"% wrote {count} trace events to {args.trace}", file=sys.stderr)
    return 0


def command_verify(args: argparse.Namespace) -> int:
    """``verify FILE``: sampled set-equivalence check (exit 1 on fail)."""
    from .reorder.verify import verify_reordering

    database = _load(args.file)
    program = Reorderer(database, _options_from_args(args)).reorder()
    report = verify_reordering(
        database, program, max_samples=args.samples
    )
    print(report.format())
    return 0 if report.passed else 1


def command_explain(args: argparse.Namespace) -> int:
    """``explain FILE PRED MODE``: candidate orders with model costs."""
    from .analysis import parse_mode_string
    from .reorder.explain import explain_predicate

    database = _load(args.file)
    name, _, arity_text = args.predicate.partition("/")
    indicator = (name, int(arity_text))
    mode = parse_mode_string(args.mode)
    reorderer = Reorderer(database)
    print(explain_predicate(reorderer, indicator, mode))
    return 0


def command_serve(args: argparse.Namespace) -> int:
    """``serve FILE``: run the concurrent query server until drained.

    See docs/SERVING.md for the protocol, snapshot semantics, and
    admission tuning. SIGINT/SIGTERM start a graceful drain.
    """
    import asyncio

    from .serve import QueryServer, ServeOptions

    database = _load(args.file)
    options = ServeOptions(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        default_timeout=args.default_timeout,
        max_solutions=args.max_solutions,
        max_calls=args.max_calls,
        grace=args.grace,
        drain_timeout=args.drain_timeout,
        log_path=args.log,
        table_all=args.table_all,
        eval_strategy=getattr(args, "eval_strategy", "topdown"),
        backend=args.backend,
        workers=args.workers,
    )
    server = QueryServer(database, options)

    async def _run() -> None:
        await server.start()
        print(
            f"serving {args.file} on {server.address} "
            f"(backend {options.backend}, "
            f"generation {server.store.generation}, "
            f"max {options.max_inflight} in flight + "
            f"{options.max_queue} queued)",
            file=sys.stderr,
        )
        if server.backend_warning:
            print(f"warning: {server.backend_warning}", file=sys.stderr)
        await server.serve_forever()

    asyncio.run(_run())
    stats = server.stats()
    print(
        f"drained: {stats['completed']} completed, "
        f"{stats['rejected']} rejected, "
        f"final generation {stats['generation']}",
        file=sys.stderr,
    )
    return 0


def command_client(args: argparse.Namespace) -> int:
    """``client ADDRESS OP``: one request against a running server.

    Prints the response as one JSON line; the exit code follows the
    response status (0 ok, 2 error, 3 timeout/exhausted/cancelled, 4
    rejected/unavailable — :data:`EXIT_UNAVAILABLE` also covers an
    unreachable server). ``--retry N`` retries shed/unreachable
    requests with exponential backoff before giving up.
    """
    import json

    from .serve import request_with_retries, status_exit_code

    message: dict = {"op": args.op}
    if args.op == "query":
        if not args.text:
            print("error: query needs a query string", file=sys.stderr)
            return EXIT_ERROR
        message["query"] = args.text
        if args.limit is not None:
            message["limit"] = args.limit
        if args.timeout is not None:
            message["timeout"] = args.timeout
    elif args.op == "update":
        if not (args.assert_ or args.retract):
            print("error: update needs --assert and/or --retract",
                  file=sys.stderr)
            return EXIT_ERROR
        if args.assert_:
            message["assert"] = list(args.assert_)
        if args.retract:
            message["retract"] = list(args.retract)
    response = request_with_retries(
        args.address,
        message,
        retries=max(0, args.retry),
        backoff=args.retry_backoff,
    )
    print(json.dumps(response, sort_keys=True))
    return status_exit_code(str(response.get("status", "error")))


def command_tables(args: argparse.Namespace) -> int:
    """``tables [N ...]``: regenerate the paper's tables/figures."""
    from .experiments import figure1, figure2, table1, table2, table3, table4

    wanted = set(args.which or ["1", "2", "3", "4", "fig"])
    if "fig" in wanted:
        print(figure1().format())
        print()
        print(figure2().format())
        print()
    generators = {"1": table1, "2": table2, "3": table3, "4": table4}
    for key in ("1", "2", "3", "4"):
        if key in wanted:
            print(generators[key]().format())
            print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prolog program reordering (Gooley & Wah, ICDE 1988)",
        epilog=EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    reorder = commands.add_parser("reorder", help="reorder a Prolog file")
    reorder.add_argument("file")
    reorder.add_argument("--report", action="store_true",
                         help="print the decision report to stderr")
    _add_reorder_flags(reorder)
    _add_profile_flags(reorder)
    _add_table_flag(reorder)
    _add_robustness_flags(reorder)
    reorder.set_defaults(handler=command_reorder)

    analyze = commands.add_parser("analyze", help="show the static analyses")
    analyze.add_argument("file")
    analyze.set_defaults(handler=command_analyze)

    run = commands.add_parser("run", help="run a query against a file")
    run.add_argument("file")
    run.add_argument("query")
    run.add_argument("--vm", action="store_true",
                     help="execute on the bytecode VM trampoline instead of "
                          "the generator clause loop (same answers and "
                          "counters; see docs/VM.md)")
    run.add_argument("--dump-bytecode", action="store_true",
                     help="print the compiled bytecode of every predicate "
                          "to stderr before running")
    _add_profile_flags(run)
    _add_table_flag(run)
    _add_eval_flag(run)
    _add_robustness_flags(run)
    run.set_defaults(handler=command_run)

    disasm = commands.add_parser(
        "disasm", help="print the compiled bytecode of a Prolog file"
    )
    disasm.add_argument("file")
    disasm.add_argument("--predicate", metavar="NAME/ARITY", default=None,
                        help="only this predicate (e.g. append/3)")
    disasm.set_defaults(handler=command_disasm)

    compare = commands.add_parser(
        "compare", help="query the original and the reordered program"
    )
    compare.add_argument("file")
    compare.add_argument("query")
    compare.add_argument("--method", choices=["markov", "warren"],
                         default="markov",
                         help="reordering method (default: the Markov system)")
    _add_reorder_flags(compare)
    _add_profile_flags(compare)
    _add_table_flag(compare)
    _add_eval_flag(compare)
    _add_robustness_flags(compare)
    compare.set_defaults(handler=command_compare)

    profile = commands.add_parser(
        "profile",
        help="instrumented run: events, spans, search counters, drift",
    )
    profile.add_argument("file")
    profile.add_argument("query")
    profile.add_argument("--json", metavar="PATH", default=None,
                         help="write telemetry as JSONL to PATH ('-' = stdout)")
    profile.add_argument("--follow", action="store_true",
                         help="sampled streaming mode: live per-predicate "
                              "summary on stderr while the query runs "
                              "(bounded memory, safe to leave on)")
    profile.add_argument("--follow-interval", type=float, default=2.0,
                         metavar="SECONDS",
                         help="refresh period of the --follow summary "
                              "(default 2)")
    profile.add_argument("--trace", metavar="PATH", default=None,
                         help="write a Chrome/Perfetto trace-event JSON file "
                              "(load in ui.perfetto.dev)")
    profile.add_argument("--drift-factor", type=float, default=3.0,
                         help="flag estimates off by this factor (default 3)")
    profile.add_argument("--drift-top", type=int, default=10,
                         help="drift lines printed in the summary (default 10)")
    profile.add_argument("--no-calibrate", action="store_true",
                         help="skip the empirical-calibration phase")
    profile.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="calibration worker processes (1 = serial; "
                              "any N gives bit-identical results)")
    profile.add_argument("--calibration-samples", type=int, default=8,
                         help="sample queries per (predicate, mode) (default 8)")
    profile.add_argument("--task-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="per-task deadline for calibration workers; a "
                              "hung worker is killed, retried once, then "
                              "quarantined and re-measured serially "
                              "(default 30)")
    _add_reorder_flags(profile)
    _add_table_flag(profile)
    _add_robustness_flags(profile)
    profile.set_defaults(handler=command_profile)

    verify = commands.add_parser(
        "verify", help="check the reordered program is set-equivalent"
    )
    verify.add_argument("file")
    verify.add_argument("--samples", type=int, default=6,
                        help="sample calls per predicate and mode")
    _add_reorder_flags(verify)
    verify.set_defaults(handler=command_verify)

    explain = commands.add_parser(
        "explain", help="show candidate goal orders and model costs"
    )
    explain.add_argument("file")
    explain.add_argument("predicate", help="name/arity, e.g. aunt/2")
    explain.add_argument("mode", help="calling mode, e.g. '(-,+)' or 'ui'")
    explain.set_defaults(handler=command_explain)

    serve = commands.add_parser(
        "serve",
        help="concurrent query server (snapshot isolation, admission "
             "control; see docs/SERVING.md)",
    )
    serve.add_argument("file")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind host (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7878,
                       help="TCP port; 0 = ephemeral (default 7878)")
    serve.add_argument("--unix", metavar="PATH", default=None,
                       help="serve on a UNIX socket instead of TCP")
    serve.add_argument("--max-inflight", type=int, default=8, metavar="N",
                       help="concurrent executing requests (default 8)")
    serve.add_argument("--max-queue", type=int, default=16, metavar="N",
                       help="admitted-but-waiting requests before load is "
                            "shed with status 'rejected' (default 16)")
    serve.add_argument("--default-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="per-request deadline unless the request "
                            "overrides it (default 30)")
    serve.add_argument("--max-solutions", type=int, default=10_000,
                       metavar="N",
                       help="default per-request solution cap (default 10000)")
    serve.add_argument("--max-calls", type=int, default=None, metavar="N",
                       help="per-request predicate-call budget (default none)")
    serve.add_argument("--grace", type=float, default=0.5, metavar="SECONDS",
                       help="extra wall time past the deadline before the "
                            "watchdog abandons a wedged request (default 0.5)")
    serve.add_argument("--backend", choices=["thread", "process"],
                       default="thread",
                       help="query execution backend: 'thread' shares the "
                            "server process, 'process' runs each query in a "
                            "supervised worker process that is killed on "
                            "deadline (default thread)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="executor worker count (default: derived from "
                            "--max-inflight)")
    serve.add_argument("--drain-timeout", type=float, default=5.0,
                       metavar="SECONDS",
                       help="seconds in-flight requests get to finish after "
                            "SIGINT/SIGTERM (default 5)")
    serve.add_argument("--log", metavar="PATH", default=None,
                       help="append request lifecycle events as JSONL")
    serve.add_argument("--faults", metavar="SPEC", default=None,
                       help="inject deterministic faults (sites serve.request "
                            "and serve.worker; see docs/ROBUSTNESS.md)")
    serve.add_argument("--fault-seed", type=int, default=0, metavar="N",
                       help="seed for --faults trigger positions (default 0)")
    _add_table_flag(serve)
    _add_eval_flag(serve)
    serve.set_defaults(handler=command_serve)

    client = commands.add_parser(
        "client", help="send one request to a running repro server"
    )
    client.add_argument("address",
                        help="host:port, unix:/path, or a bare socket path")
    client.add_argument("op", choices=["query", "update", "ping", "stats"])
    client.add_argument("text", nargs="?", default=None,
                        help="the query string (op query)")
    client.add_argument("--limit", type=int, default=None,
                        help="solution cap for this query")
    client.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="deadline for this query")
    client.add_argument("--assert", dest="assert_", action="append",
                        metavar="CLAUSES", default=None,
                        help="program text to add (repeatable; op update)")
    client.add_argument("--retract", action="append", metavar="SPEC",
                        default=None,
                        help="name/arity or a clause to remove (repeatable; "
                             "op update)")
    client.add_argument("--retry", type=int, default=0, metavar="N",
                        help="retry up to N times when the server sheds the "
                             "request (status rejected/unavailable) or is "
                             "unreachable (default 0)")
    client.add_argument("--retry-backoff", type=float, default=0.25,
                        metavar="SECONDS",
                        help="base of the exponential retry backoff: waits "
                             "SECS, 2*SECS, 4*SECS, ... between attempts "
                             "(default 0.25)")
    client.set_defaults(handler=command_client)

    tables = commands.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument("which", nargs="*", choices=["1", "2", "3", "4", "fig"],
                        help="which tables (default: all + figures)")
    tables.set_defaults(handler=command_tables)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Typed :class:`~repro.errors.ReproError` failures (parse errors,
    depth-limit blowups, tabling stratification violations...) become a
    one-line ``error: ...`` message and exit code :data:`EXIT_ERROR`
    (2) — no traceback. Resource exhaustion (``--timeout`` deadline
    expiry, budget caps: the
    :class:`~repro.errors.BudgetExceededError` family) gets its own
    :data:`EXIT_RESOURCE` (3) so callers can tell the two apart.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "faults", None):
        import os

        from .robustness import faults

        seed = getattr(args, "fault_seed", 0)
        # Export the plan so calibration worker processes inherit it.
        os.environ["REPRO_FAULTS"] = args.faults
        os.environ["REPRO_FAULTS_SEED"] = str(seed)
        faults.install_from_spec(args.faults, seed=seed)
    try:
        return args.handler(args)
    except BudgetExceededError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_RESOURCE
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        # A ServerUnavailable from ``client``/``serve`` means "retry or
        # try another replica", not "the program is wrong" — resolved
        # lazily so plain commands never import the serving layer.
        serve_client = sys.modules.get("repro.serve.client")
        if serve_client is not None and isinstance(
            exc, serve_client.ServerUnavailable
        ):
            return EXIT_UNAVAILABLE
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
