"""Command-line interface: ``python -m repro <command> ...``.

The end-to-end tool the paper's §VIII asks for ("we should integrate
our techniques into one system, so that we can provide a program as
input and ... receive a reordered, improved program as output"):

* ``reorder FILE``  — read a Prolog program, print the reordered one;
* ``analyze FILE``  — print what the analyses infer (fixity,
  semifixity, recursion, legal modes, warnings);
* ``run FILE QUERY`` — execute a query, printing answers and the call
  count;
* ``compare FILE QUERY`` — run a query on both the original and the
  reordered program and report the improvement ratio;
* ``tables [N ...]`` — regenerate the paper's tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    CallGraph,
    Declarations,
    FixityAnalysis,
    ModeInference,
    SemifixityAnalysis,
    all_input_modes,
    mode_str,
    recursive_predicates,
)
from .prolog import Database, Engine, indicator_str, term_to_string
from .reorder import ReorderOptions, Reorderer

__all__ = ["main", "build_parser"]


def _load(path: str, indexing: bool = True) -> Database:
    with open(path) as handle:
        return Database.from_source(handle.read(), indexing=indexing)


def _options_from_args(args: argparse.Namespace) -> ReorderOptions:
    return ReorderOptions(
        reorder_goals=not args.no_goals,
        reorder_clauses=not args.no_clauses,
        specialize=not args.no_specialize,
        runtime_tests=args.runtime_tests,
        unfold_rounds=args.unfold,
        exhaustive_limit=args.exhaustive_limit,
    )


def _add_reorder_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-goals", action="store_true",
                        help="do not reorder goals within clauses")
    parser.add_argument("--no-clauses", action="store_true",
                        help="do not reorder clauses within predicates")
    parser.add_argument("--no-specialize", action="store_true",
                        help="reorder in place instead of per-mode versions")
    parser.add_argument("--runtime-tests", action="store_true",
                        help="emit nonvar-guarded if-then-else (paper §V-D)")
    parser.add_argument("--unfold", type=int, default=0, metavar="N",
                        help="apply N unfolding sweeps first (paper §VIII)")
    parser.add_argument("--exhaustive-limit", type=int, default=6,
                        help="max block size for exhaustive search (then A*)")


def command_reorder(args: argparse.Namespace) -> int:
    """``reorder FILE``: print the reordered program."""
    database = _load(args.file)
    program = Reorderer(database, _options_from_args(args)).reorder()
    print(program.source(), end="")
    if args.report:
        print("\n% --- report " + "-" * 40, file=sys.stderr)
        for line in program.report.summary().splitlines():
            print(f"% {line}", file=sys.stderr)
    return 0


def command_analyze(args: argparse.Namespace) -> int:
    """``analyze FILE``: print what the static analyses infer."""
    database = _load(args.file)
    declarations = Declarations.from_database(database)
    graph = CallGraph(database)
    fixity = FixityAnalysis(database, graph, declarations)
    semifixity = SemifixityAnalysis(database, graph, declarations)
    inference = ModeInference(database, declarations, graph)

    print("entry points:")
    for entry in graph.entry_points(declarations.entries):
        print(f"  {indicator_str(entry)}")
    print("recursive:")
    for indicator in sorted(recursive_predicates(graph) | declarations.recursive):
        print(f"  {indicator_str(indicator)}")
    print("fixed (side-effecting):")
    for indicator in sorted(fixity.fixed_predicates):
        print(f"  {indicator_str(indicator)}")
    print("semifixed (culprit positions):")
    for indicator in database.predicates():
        positions = semifixity.positions(indicator)
        if positions:
            print(f"  {indicator_str(indicator)}: {sorted(positions)}")
    print("legal modes:")
    for indicator in database.predicates():
        pairs = []
        for mode in all_input_modes(indicator[1]):
            output = inference.output_mode(indicator, mode)
            if output is not None:
                pairs.append(f"{mode_str(mode)}->{mode_str(output)}")
        print(f"  {indicator_str(indicator)}: {', '.join(pairs) or 'NONE'}")
    for warning in inference.warnings:
        print(f"warning: {warning}")
    return 0


def command_run(args: argparse.Namespace) -> int:
    """``run FILE QUERY``: execute a query, printing answers + calls."""
    database = _load(args.file)
    engine = Engine(database)
    solutions, metrics = engine.run(args.query)
    for solution in solutions:
        bindings = ", ".join(
            f"{name} = {term_to_string(term)}"
            for name, term in solution.bindings.items()
        )
        print(bindings or "true")
    if not solutions:
        print("no")
    print(f"% {len(solutions)} solution(s), {metrics.calls} calls")
    if engine.output_text():
        print(f"% output: {engine.output_text()!r}")
    return 0


def command_compare(args: argparse.Namespace) -> int:
    """``compare FILE QUERY``: original vs reordered call counts."""
    database = _load(args.file)
    if args.method == "warren":
        from .baselines.warren import WarrenReorderer

        reordered_database = WarrenReorderer(database).reorder_program()
        new_engine = Engine(reordered_database)
    else:
        program = Reorderer(database, _options_from_args(args)).reorder()
        new_engine = program.engine()
    original_solutions, original = Engine(database).run(args.query)
    new_solutions, new = new_engine.run(args.query)
    matches = sorted(s.key() for s in original_solutions) == sorted(
        s.key() for s in new_solutions
    )
    print(f"original : {original.calls} calls, {len(original_solutions)} solutions")
    print(f"reordered: {new.calls} calls, {len(new_solutions)} solutions")
    ratio = original.calls / new.calls if new.calls else float("inf")
    print(f"ratio    : {ratio:.2f}")
    print(f"answers  : {'identical set' if matches else 'DIFFER (bug!)'}")
    return 0 if matches else 1


def command_verify(args: argparse.Namespace) -> int:
    """``verify FILE``: sampled set-equivalence check (exit 1 on fail)."""
    from .reorder.verify import verify_reordering

    database = _load(args.file)
    program = Reorderer(database, _options_from_args(args)).reorder()
    report = verify_reordering(
        database, program, max_samples=args.samples
    )
    print(report.format())
    return 0 if report.passed else 1


def command_explain(args: argparse.Namespace) -> int:
    """``explain FILE PRED MODE``: candidate orders with model costs."""
    from .analysis import parse_mode_string
    from .reorder.explain import explain_predicate

    database = _load(args.file)
    name, _, arity_text = args.predicate.partition("/")
    indicator = (name, int(arity_text))
    mode = parse_mode_string(args.mode)
    reorderer = Reorderer(database)
    print(explain_predicate(reorderer, indicator, mode))
    return 0


def command_tables(args: argparse.Namespace) -> int:
    """``tables [N ...]``: regenerate the paper's tables/figures."""
    from .experiments import figure1, figure2, table1, table2, table3, table4

    wanted = set(args.which or ["1", "2", "3", "4", "fig"])
    if "fig" in wanted:
        print(figure1().format())
        print()
        print(figure2().format())
        print()
    generators = {"1": table1, "2": table2, "3": table3, "4": table4}
    for key in ("1", "2", "3", "4"):
        if key in wanted:
            print(generators[key]().format())
            print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prolog program reordering (Gooley & Wah, ICDE 1988)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    reorder = commands.add_parser("reorder", help="reorder a Prolog file")
    reorder.add_argument("file")
    reorder.add_argument("--report", action="store_true",
                         help="print the decision report to stderr")
    _add_reorder_flags(reorder)
    reorder.set_defaults(handler=command_reorder)

    analyze = commands.add_parser("analyze", help="show the static analyses")
    analyze.add_argument("file")
    analyze.set_defaults(handler=command_analyze)

    run = commands.add_parser("run", help="run a query against a file")
    run.add_argument("file")
    run.add_argument("query")
    run.set_defaults(handler=command_run)

    compare = commands.add_parser(
        "compare", help="query the original and the reordered program"
    )
    compare.add_argument("file")
    compare.add_argument("query")
    compare.add_argument("--method", choices=["markov", "warren"],
                         default="markov",
                         help="reordering method (default: the Markov system)")
    _add_reorder_flags(compare)
    compare.set_defaults(handler=command_compare)

    verify = commands.add_parser(
        "verify", help="check the reordered program is set-equivalent"
    )
    verify.add_argument("file")
    verify.add_argument("--samples", type=int, default=6,
                        help="sample calls per predicate and mode")
    _add_reorder_flags(verify)
    verify.set_defaults(handler=command_verify)

    explain = commands.add_parser(
        "explain", help="show candidate goal orders and model costs"
    )
    explain.add_argument("file")
    explain.add_argument("predicate", help="name/arity, e.g. aunt/2")
    explain.add_argument("mode", help="calling mode, e.g. '(-,+)' or 'ui'")
    explain.set_defaults(handler=command_explain)

    tables = commands.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument("which", nargs="*", choices=["1", "2", "3", "4", "fig"],
                        help="which tables (default: all + figures)")
    tables.set_defaults(handler=command_tables)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
