"""Exception hierarchy for the reproduction.

All library-specific errors derive from :class:`ReproError`, so callers
can catch a single base class. Engine-level errors mirror the run-time
errors the paper's target systems (C-Prolog, SB-Prolog) raise: calling a
builtin in an illegal mode gives :class:`InstantiationError`, exceeding
the depth bound gives :class:`DepthLimitExceeded`, and so on.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PrologThrow",
    "PrologSyntaxError",
    "PrologError",
    "InstantiationError",
    "TypeErrorProlog",
    "ExistenceError",
    "ArithmeticErrorProlog",
    "DepthLimitExceeded",
    "BudgetExceededError",
    "CallBudgetExceeded",
    "DeadlineExceeded",
    "QueryCancelled",
    "FaultInjected",
    "TablingError",
    "IncompleteTableError",
    "AnalysisError",
    "DeclarationError",
    "ReorderingError",
    "IllegalModeError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class PrologSyntaxError(ReproError):
    """A syntax error while reading Prolog source.

    Carries the source position for diagnostics.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class PrologError(ReproError):
    """Base class for run-time errors raised by the engine."""


class PrologThrow(ReproError):
    """A ball thrown by ``throw/1``, awaiting a matching ``catch/3``.

    Deliberately *not* a :class:`PrologError`: user balls are control
    flow, not engine faults; an uncaught ball surfaces as this
    exception with the ball term attached.
    """

    def __init__(self, ball):
        from .prolog.writer import term_to_string

        super().__init__(f"uncaught ball: {term_to_string(ball)}")
        self.ball = ball


class InstantiationError(PrologError):
    """A builtin demanded an instantiated argument and got a variable.

    This is exactly the "illegal mode" failure the paper's legal-mode
    system exists to avoid (e.g. ``functor/3`` with only an arity).
    """


class TypeErrorProlog(PrologError):
    """A builtin received an argument of the wrong type."""

    def __init__(self, expected: str, culprit: object):
        super().__init__(f"type error: expected {expected}, got {culprit!r}")
        self.expected = expected
        self.culprit = culprit


class ExistenceError(PrologError):
    """A goal called a predicate with no clauses and no builtin."""

    def __init__(self, indicator):
        name, arity = indicator
        super().__init__(f"undefined predicate: {name}/{arity}")
        self.indicator = indicator


class ArithmeticErrorProlog(PrologError):
    """Arithmetic evaluation failed (unknown function, division by zero)."""


class DepthLimitExceeded(PrologError):
    """The engine's recursion-depth safety bound was exceeded.

    The paper notes that wrong modes send recursive predicates into
    infinite recursion; the engine bounds depth so experiments on illegal
    modes terminate with a detectable error instead of hanging.
    """


class BudgetExceededError(PrologError):
    """A resource budget ran out before the computation finished.

    Base class for every exhaustion kind the robustness layer tracks
    (calls, steps, wall-clock deadline, cooperative cancellation). The
    CLI maps this family to its own exit code (3) so callers can tell
    "the program is wrong" (exit 2) from "the program ran out of
    resources" (exit 3). See docs/ROBUSTNESS.md.
    """


class CallBudgetExceeded(BudgetExceededError):
    """The engine's call budget (max predicate calls per query) ran out."""


class DeadlineExceeded(BudgetExceededError):
    """A wall-clock deadline expired before the computation finished.

    Raised by :class:`repro.robustness.Budget` at its cooperative check
    sites (engine call/step charging, the tabling fixpoint, goal-search
    expansion, pipeline phase boundaries).
    """


class QueryCancelled(BudgetExceededError):
    """A cooperative :class:`repro.robustness.CancelToken` was tripped.

    Semantically a caller decision rather than an exhaustion, but it
    shares the budget machinery (and the CLI's resource exit code): the
    computation was stopped before producing a complete answer set.
    """


class FaultInjected(ReproError):
    """An injected fault fired (see :mod:`repro.robustness.faults`).

    Only ever raised by the deterministic fault-injection harness; the
    robustness test-suite uses it to prove that every degradation path
    (engine abort, pipeline per-predicate isolation, calibration
    quarantine) handles an arbitrary unexpected error.
    """


class TablingError(PrologError):
    """Base class for errors raised by the tabling subsystem."""


class IncompleteTableError(TablingError):
    """Negation as failure consumed a table that is not yet complete.

    Tabled negation is only sound for stratified programs: the negated
    subgoal's table must reach its fixpoint before ``\\+`` can decide
    anything. Crossing a negation boundary into an in-flight evaluation
    would read a partial answer set, so the engine raises instead.
    """

    def __init__(self, indicator):
        name, arity = indicator
        super().__init__(
            f"tabled negation on incomplete table {name}/{arity} "
            f"(program is not stratified through this cycle)"
        )
        self.indicator = indicator


class AnalysisError(ReproError):
    """A static analysis could not complete."""


class DeclarationError(ReproError):
    """A directive (``:- mode(...)`` etc.) is malformed or inconsistent."""


class ReorderingError(ReproError):
    """The reorderer could not produce a safe order."""


class IllegalModeError(ReorderingError):
    """A candidate goal order would call some goal in an illegal mode."""
