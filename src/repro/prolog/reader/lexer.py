"""Tokenizer for DEC-10-style Prolog source.

Handles the full lexical syntax needed by the benchmark programs and the
paper's examples:

* unquoted atoms (``foo_bar``), quoted atoms (``'hello world'`` with
  ``\\`` and ``''`` escapes), symbolic atoms (``:-``, ``\\+``, ``=..``),
  and the solo atoms ``!`` ``;`` ``[]`` ``{}``;
* variables (``X``, ``_foo``, ``_``);
* integers (including ``0'c`` character codes) and floats;
* double-quoted strings (returned as STRING tokens; the parser turns
  them into code lists);
* ``%`` line comments and ``/* ... */`` block comments;
* the clause terminator ``.`` distinguished from ``.`` inside floats and
  from the symbolic-atom ``.`` by the standard "followed by layout"
  rule.
"""

from __future__ import annotations

from typing import Iterator, List

from ...errors import PrologSyntaxError
from .tokens import Token, TokenType

__all__ = ["tokenize", "Lexer", "SYMBOL_CHARS", "SOLO_ATOMS"]

#: Characters that combine into symbolic atoms (``:-``, ``-->``, ``=..``).
SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&$")

#: Atoms that are always a single token, never combining with neighbours.
SOLO_ATOMS = {"!", ";"}

_PUNCT = set("()[]{},|")


class Lexer:
    """A one-pass tokenizer over a source string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level cursor helpers -------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> str:
        taken = self.text[self.pos : self.pos + count]
        for ch in taken:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return taken

    def _error(self, message: str) -> PrologSyntaxError:
        return PrologSyntaxError(message, self.line, self.column)

    # -- layout ---------------------------------------------------------

    def _skip_layout(self) -> None:
        """Skip whitespace and both comment styles."""
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "%":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    # -- token scanners ---------------------------------------------------

    def _scan_quoted(self, quote: str) -> str:
        """Scan a quoted atom or string body; cursor is on the open quote."""
        self._advance()
        chars: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self._error(f"unterminated {quote} quote")
            ch = self._peek()
            if ch == quote:
                if self._peek(1) == quote:  # doubled quote escape
                    chars.append(quote)
                    self._advance(2)
                    continue
                self._advance()
                return "".join(chars)
            if ch == "\\":
                self._advance()
                esc = self._advance()
                mapping = {
                    "n": "\n",
                    "t": "\t",
                    "r": "\r",
                    "a": "\a",
                    "b": "\b",
                    "f": "\f",
                    "v": "\v",
                    "\\": "\\",
                    "'": "'",
                    '"': '"',
                    "`": "`",
                    "\n": "",  # escaped newline: line continuation
                }
                if esc in mapping:
                    chars.append(mapping[esc])
                else:
                    raise self._error(f"unknown escape \\{esc}")
                continue
            chars.append(self._advance())

    def _scan_number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        # 0'c character-code syntax
        if self._peek() == "0" and self._peek(1) == "'":
            self._advance(2)
            if self._peek() == "\\":
                self._advance()
                esc = self._advance()
                mapping = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", "'": "'"}
                if esc not in mapping:
                    raise self._error(f"unknown character escape 0'\\{esc}")
                code = ord(mapping[esc])
            else:
                code = ord(self._advance())
            return Token(TokenType.INTEGER, str(code), line, column)
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.text[start : self.pos]
        kind = TokenType.FLOAT if is_float else TokenType.INTEGER
        return Token(kind, text, line, column)

    def _scan_name(self) -> str:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        return self.text[start : self.pos]

    def _scan_symbol(self) -> str:
        start = self.pos
        while self._peek() in SYMBOL_CHARS:
            self._advance()
        return self.text[start : self.pos]

    # -- main loop ---------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until EOF (inclusive)."""
        while True:
            self._skip_layout()
            line, column = self.line, self.column
            if self.pos >= len(self.text):
                yield Token(TokenType.EOF, "", line, column)
                return
            ch = self._peek()

            if ch.isdigit():
                yield self._scan_number()
                continue

            if ch == "_" or ch.isalpha():
                name = self._scan_name()
                if ch == "_" or ch.isupper():
                    yield Token(TokenType.VARIABLE, name, line, column)
                else:
                    yield Token(
                        TokenType.ATOM, name, line, column,
                        functor=self._peek() == "(",
                    )
                continue

            if ch == "'":
                name = self._scan_quoted("'")
                yield Token(
                    TokenType.ATOM, name, line, column, functor=self._peek() == "(",
                )
                continue

            if ch == '"':
                body = self._scan_quoted('"')
                yield Token(TokenType.STRING, body, line, column)
                continue

            if ch in SOLO_ATOMS:
                self._advance()
                yield Token(TokenType.ATOM, ch, line, column)
                continue

            if ch in _PUNCT:
                self._advance()
                if ch == "[" and self._peek() == "]":
                    self._advance()
                    yield Token(
                        TokenType.ATOM, "[]", line, column,
                        functor=self._peek() == "(",
                    )
                elif ch == "{" and self._peek() == "}":
                    self._advance()
                    yield Token(
                        TokenType.ATOM, "{}", line, column,
                        functor=self._peek() == "(",
                    )
                else:
                    yield Token(TokenType.PUNCT, ch, line, column)
                continue

            if ch in SYMBOL_CHARS:
                symbol = self._scan_symbol()
                # A lone '.' followed by layout or EOF terminates a clause.
                if symbol == "." and (
                    self.pos >= len(self.text) or self._peek() in " \t\r\n%"
                ):
                    yield Token(TokenType.END, ".", line, column)
                    continue
                yield Token(
                    TokenType.ATOM, symbol, line, column,
                    functor=self._peek() == "(",
                )
                continue

            raise self._error(f"unexpected character {ch!r}")


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` fully, returning the token list ending in EOF."""
    return list(Lexer(text).tokens())
