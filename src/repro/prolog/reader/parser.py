"""Operator-precedence parser for DEC-10-style Prolog.

Turns token streams into :mod:`repro.prolog.terms` terms. The entry
points are:

* :func:`parse_term` — one term from a string (no trailing ``.``);
* :func:`parse_program` — a whole program: a list of clause/directive
  terms, each terminated by ``.``;
* :class:`Parser` — the incremental interface.

Variables are scoped per clause: every occurrence of ``X`` within one
clause is the same :class:`~repro.prolog.terms.Var`; a fresh clause gets
fresh variables. ``_`` is always fresh. The per-clause variable map is
available from :meth:`Parser.last_variable_map` so that tools (the
reorderer's pretty-printer, tests) can recover source names.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...errors import PrologSyntaxError
from ..terms import Atom, Struct, Term, Var, make_list
from .lexer import tokenize
from .operators import MAX_PRIORITY, OperatorTable, standard_operators
from .tokens import Token, TokenType

__all__ = ["Parser", "parse_term", "parse_program", "parse_terms"]

#: Priority at which arguments of a compound term / list elements are
#: parsed: just below the priority of ',' so commas separate arguments.
ARG_PRIORITY = 999


class Parser:
    """An operator-precedence (Pratt-style) Prolog parser."""

    def __init__(self, text: str, operators: Optional[OperatorTable] = None):
        self.tokens = tokenize(text)
        self.index = 0
        self.operators = operators or standard_operators()
        self._variables: Dict[str, Var] = {}

    # -- token stream helpers ---------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> PrologSyntaxError:
        token = token or self._peek()
        return PrologSyntaxError(message, token.line, token.column)

    def _expect_punct(self, value: str) -> Token:
        token = self._next()
        if token.type is not TokenType.PUNCT or token.value != value:
            raise self._error(f"expected {value!r}, got {token.value!r}", token)
        return token

    def at_eof(self) -> bool:
        """Has the token stream been consumed?"""
        return self._peek().type is TokenType.EOF

    def last_variable_map(self) -> Dict[str, Var]:
        """Source-name → Var map of the most recently parsed clause."""
        return dict(self._variables)

    # -- primaries -----------------------------------------------------------

    def _variable(self, token: Token) -> Var:
        if token.value == "_":
            return Var("_")
        var = self._variables.get(token.value)
        if var is None:
            var = Var(token.value)
            self._variables[token.value] = var
        return var

    def _arguments(self) -> List[Term]:
        """Parse ``(arg, ..., arg)`` after a functor token."""
        self._expect_punct("(")
        args = [self._parse(ARG_PRIORITY)]
        while self._peek().type is TokenType.PUNCT and self._peek().value == ",":
            self._next()
            args.append(self._parse(ARG_PRIORITY))
        self._expect_punct(")")
        return args

    def _list(self) -> Term:
        """Parse a list after the opening ``[``."""
        if self._peek().type is TokenType.PUNCT and self._peek().value == "]":
            self._next()
            return Atom("[]")
        items = [self._parse(ARG_PRIORITY)]
        while self._peek().type is TokenType.PUNCT and self._peek().value == ",":
            self._next()
            items.append(self._parse(ARG_PRIORITY))
        tail: Term = Atom("[]")
        if self._peek().type is TokenType.PUNCT and self._peek().value == "|":
            self._next()
            tail = self._parse(ARG_PRIORITY)
        self._expect_punct("]")
        return make_list(items, tail)

    def _primary(self, max_priority: int) -> Tuple[Term, int]:
        """Parse one primary term; returns (term, its priority)."""
        token = self._next()

        if token.type is TokenType.EOF:
            raise self._error("unexpected end of input", token)
        if token.type is TokenType.VARIABLE:
            return self._variable(token), 0
        if token.type is TokenType.INTEGER:
            return int(token.value), 0
        if token.type is TokenType.FLOAT:
            return float(token.value), 0
        if token.type is TokenType.STRING:
            return make_list([ord(c) for c in token.value]), 0

        if token.type is TokenType.PUNCT:
            if token.value == "(":
                term = self._parse(MAX_PRIORITY)
                self._expect_punct(")")
                return term, 0
            if token.value == "[":
                return self._list(), 0
            if token.value == "{":
                term = self._parse(MAX_PRIORITY)
                self._expect_punct("}")
                return Struct("{}", (term,)), 0
            raise self._error(f"unexpected {token.value!r}", token)

        if token.type is TokenType.END:
            raise self._error("unexpected clause terminator", token)

        assert token.type is TokenType.ATOM
        name = token.value

        if token.functor:
            return Struct(name, self._arguments()), 0

        prefix_def = self.operators.prefix(name)
        if prefix_def is not None and prefix_def.priority <= max_priority:
            # Negative number literals: '-' immediately before a number.
            if name == "-" and self._peek().type in (
                TokenType.INTEGER,
                TokenType.FLOAT,
            ):
                number = self._next()
                if number.type is TokenType.INTEGER:
                    return -int(number.value), 0
                return -float(number.value), 0
            if self._starts_term():
                try:
                    saved = self.index
                    operand = self._parse(prefix_def.right_max)
                    return Struct(name, (operand,)), prefix_def.priority
                except PrologSyntaxError:
                    self.index = saved  # fall through: treat as plain atom
        return Atom(name), (
            self.operators.infix(name).priority  # an operator used as an atom
            if self.operators.is_operator(name) and self.operators.infix(name)
            else 0
        )

    def _starts_term(self) -> bool:
        """Can the next token begin a term? (Prefix-operator lookahead.)"""
        token = self._peek()
        if token.type in (
            TokenType.VARIABLE,
            TokenType.INTEGER,
            TokenType.FLOAT,
            TokenType.STRING,
        ):
            return True
        if token.type is TokenType.ATOM:
            # An infix operator cannot begin a term unless also prefix.
            infix = self.operators.infix(token.value)
            prefix = self.operators.prefix(token.value)
            if infix is not None and prefix is None and not token.functor:
                return False
            return True
        if token.type is TokenType.PUNCT:
            return token.value in "([{"
        return False

    # -- operator-precedence climbing ---------------------------------------

    def _parse(self, max_priority: int) -> Term:
        left, left_priority = self._primary(max_priority)
        while True:
            token = self._peek()
            if token.type is TokenType.PUNCT and token.value == ",":
                definition = self.operators.infix(",")
                assert definition is not None
                if definition.priority > max_priority:
                    return left
                if left_priority > definition.left_max:
                    return left
                self._next()
                right = self._parse(definition.right_max)
                left = Struct(",", (left, right))
                left_priority = definition.priority
                continue
            if token.type is not TokenType.ATOM:
                return left
            infix_def = self.operators.infix(token.value)
            if infix_def is not None and infix_def.priority <= max_priority:
                if left_priority <= infix_def.left_max and self._infix_viable():
                    self._next()
                    right = self._parse(infix_def.right_max)
                    left = Struct(token.value, (left, right))
                    left_priority = infix_def.priority
                    continue
            postfix_def = self.operators.postfix(token.value)
            if postfix_def is not None and postfix_def.priority <= max_priority:
                if left_priority <= postfix_def.left_max:
                    self._next()
                    left = Struct(token.value, (left,))
                    left_priority = postfix_def.priority
                    continue
            return left

    def _infix_viable(self) -> bool:
        """True when the token after a would-be infix op can start a term."""
        after = self._peek(1)
        if after.type in (
            TokenType.VARIABLE,
            TokenType.INTEGER,
            TokenType.FLOAT,
            TokenType.STRING,
        ):
            return True
        if after.type is TokenType.ATOM:
            return True
        if after.type is TokenType.PUNCT:
            return after.value in "([{"
        return False

    # -- public API ------------------------------------------------------------

    def read_term(self) -> Optional[Term]:
        """Read one ``.``-terminated clause/directive; None at EOF."""
        if self.at_eof():
            return None
        self._variables = {}
        term = self._parse(MAX_PRIORITY)
        token = self._next()
        if token.type is not TokenType.END:
            raise self._error(
                f"expected '.' to end clause, got {token.value!r}", token
            )
        return term

    def _maybe_apply_op_directive(self, term: Term) -> None:
        """Apply a ``:- op(Priority, Type, Name)`` directive so later
        clauses in the same read parse with the new operator (standard
        Prolog behaviour)."""
        if not (isinstance(term, Struct) and term.indicator == (":-", 1)):
            return
        directive = term.args[0]
        if not (
            isinstance(directive, Struct) and directive.indicator == ("op", 3)
        ):
            return
        priority, op_type, name = directive.args
        if (
            isinstance(priority, int)
            and isinstance(op_type, Atom)
            and isinstance(name, Atom)
        ):
            try:
                self.operators.add(priority, op_type.name, name.name)
            except ValueError as error:
                raise PrologSyntaxError(f"bad op/3 directive: {error}")

    def read_program(self, apply_op_directives: bool = True) -> List[Term]:
        """Read clauses until EOF, honouring ``:- op/3`` along the way."""
        clauses = []
        while True:
            term = self.read_term()
            if term is None:
                return clauses
            if apply_op_directives:
                self._maybe_apply_op_directive(term)
            clauses.append(term)


def parse_term(text: str, operators: Optional[OperatorTable] = None) -> Term:
    """Parse a single term from ``text`` (with or without a final ``.``)."""
    stripped = text.rstrip()
    if not stripped.endswith("."):
        stripped += " ."
    parser = Parser(stripped, operators)
    term = parser.read_term()
    if term is None:
        raise PrologSyntaxError("empty input")
    if not parser.at_eof():
        raise PrologSyntaxError("trailing input after term")
    return term


def parse_terms(text: str, operators: Optional[OperatorTable] = None) -> List[Term]:
    """Parse all ``.``-terminated terms in ``text``."""
    return Parser(text, operators).read_program()


def parse_program(text: str, operators: Optional[OperatorTable] = None) -> List[Term]:
    """Alias of :func:`parse_terms`, named for intent."""
    return parse_terms(text, operators)
