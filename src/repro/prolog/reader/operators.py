"""The standard DEC-10 Prolog operator table.

Operator-precedence parsing needs, for each atom, its possible prefix and
infix/postfix definitions: a priority (1..1200, lower binds tighter) and
a type that says whether each argument may have priority equal to the
operator's (``y``) or must be strictly lower (``x``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["OpDef", "OperatorTable", "standard_operators", "MAX_PRIORITY"]

#: The maximum operator priority (the priority of ``:-``).
MAX_PRIORITY = 1200


@dataclass(frozen=True)
class OpDef:
    """One operator definition: priority and type (xfx, xfy, yfx, fy, fx, xf, yf)."""

    priority: int
    type: str

    @property
    def is_prefix(self) -> bool:
        return self.type in ("fy", "fx")

    @property
    def is_infix(self) -> bool:
        return self.type in ("xfx", "xfy", "yfx")

    @property
    def is_postfix(self) -> bool:
        return self.type in ("xf", "yf")

    @property
    def left_max(self) -> int:
        """Maximum priority allowed for the left argument (infix/postfix)."""
        return self.priority if self.type in ("yfx", "yf") else self.priority - 1

    @property
    def right_max(self) -> int:
        """Maximum priority allowed for the right argument (infix/prefix)."""
        return self.priority if self.type in ("xfy", "fy") else self.priority - 1


class OperatorTable:
    """Prefix and infix/postfix operator definitions, keyed by atom name."""

    def __init__(self) -> None:
        self._prefix: Dict[str, OpDef] = {}
        self._infix: Dict[str, OpDef] = {}

    def add(self, priority: int, op_type: str, name: str) -> None:
        """Define an operator, as ``op(Priority, Type, Name)`` would."""
        if not 1 <= priority <= MAX_PRIORITY:
            raise ValueError(f"operator priority out of range: {priority}")
        definition = OpDef(priority, op_type)
        if definition.is_prefix:
            self._prefix[name] = definition
        elif definition.is_infix or definition.is_postfix:
            self._infix[name] = definition
        else:
            raise ValueError(f"unknown operator type: {op_type}")

    def prefix(self, name: str) -> Optional[OpDef]:
        """The prefix definition of an atom, if any."""
        return self._prefix.get(name)

    def infix(self, name: str) -> Optional[OpDef]:
        """The infix definition of an atom, if any."""
        definition = self._infix.get(name)
        return definition if definition is not None and definition.is_infix else None

    def postfix(self, name: str) -> Optional[OpDef]:
        """The postfix definition of an atom, if any."""
        definition = self._infix.get(name)
        return definition if definition is not None and definition.is_postfix else None

    def is_operator(self, name: str) -> bool:
        """Is the atom defined as any kind of operator?"""
        return name in self._prefix or name in self._infix

    def lookup(self, name: str) -> Tuple[Optional[OpDef], Optional[OpDef]]:
        """(prefix definition, infix-or-postfix definition) for ``name``."""
        return self._prefix.get(name), self._infix.get(name)


def standard_operators() -> OperatorTable:
    """The DEC-10 / Edinburgh standard operator table."""
    table = OperatorTable()
    definitions = [
        (1200, "xfx", ":-"),
        (1200, "xfx", "-->"),
        (1200, "fx", ":-"),
        (1200, "fx", "?-"),
        (1150, "fx", "table"),
        (1150, "fx", "dynamic"),
        (1150, "fx", "discontiguous"),
        (1150, "fx", "multifile"),
        (1100, "xfy", ";"),
        (1050, "xfy", "->"),
        (1000, "xfy", ","),
        (900, "fy", "\\+"),
        (700, "xfx", "="),
        (700, "xfx", "\\="),
        (700, "xfx", "=="),
        (700, "xfx", "\\=="),
        (700, "xfx", "@<"),
        (700, "xfx", "@>"),
        (700, "xfx", "@=<"),
        (700, "xfx", "@>="),
        (700, "xfx", "=.."),
        (700, "xfx", "is"),
        (700, "xfx", "=:="),
        (700, "xfx", "=\\="),
        (700, "xfx", "<"),
        (700, "xfx", ">"),
        (700, "xfx", "=<"),
        (700, "xfx", ">="),
        (500, "yfx", "+"),
        (500, "yfx", "-"),
        (500, "yfx", "/\\"),
        (500, "yfx", "\\/"),
        (500, "yfx", "xor"),
        (400, "yfx", "*"),
        (400, "yfx", "/"),
        (400, "yfx", "//"),
        (400, "yfx", "mod"),
        (400, "yfx", "rem"),
        (400, "yfx", "<<"),
        (400, "yfx", ">>"),
        (200, "xfx", "**"),
        (200, "xfy", "^"),
        (200, "fy", "-"),
        (200, "fy", "+"),
        (200, "fy", "\\"),
    ]
    for priority, op_type, name in definitions:
        table.add(priority, op_type, name)
    return table
