"""Token types for the Prolog lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

__all__ = ["TokenType", "Token"]


class TokenType(Enum):
    """Lexical categories of DEC-10-style Prolog."""

    ATOM = auto()          # foo, 'quoted atom', + (symbolic), [] handled separately
    VARIABLE = auto()      # X, _Foo, _
    INTEGER = auto()
    FLOAT = auto()
    STRING = auto()        # "..." — a list of character codes
    PUNCT = auto()         # ( ) [ ] { } , |
    END = auto()           # the clause terminator '.'
    EOF = auto()


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    value: str
    line: int
    column: int
    #: True when an ATOM token is immediately followed by '(' with no
    #: whitespace — required to distinguish ``f(x)`` from ``f (x)``
    #: and to parse negative numbers vs binary minus.
    functor: bool = False

    def __repr__(self) -> str:
        tag = "functor" if self.functor else self.type.name.lower()
        return f"Token({tag} {self.value!r} @{self.line}:{self.column})"
