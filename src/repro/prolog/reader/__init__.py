"""Prolog reader: lexer, operator table, and parser."""

from .lexer import Lexer, tokenize
from .operators import OpDef, OperatorTable, standard_operators
from .parser import Parser, parse_program, parse_term, parse_terms
from .tokens import Token, TokenType

__all__ = [
    "Lexer",
    "OpDef",
    "OperatorTable",
    "Parser",
    "Token",
    "TokenType",
    "parse_program",
    "parse_term",
    "parse_terms",
    "standard_operators",
    "tokenize",
]
