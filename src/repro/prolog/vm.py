"""The bytecode VM: one iterative trampoline for the compiled solve path.

PR 3's compiled clauses still *executed* through a ladder of Python
generators — ``solve_goal`` → ``_solve_user_compiled`` →
``_solve_body`` — paying roughly three generator frames per predicate
call and one resume hop per frame per solution. This module flattens
that ladder into an explicit machine: clause bodies are lowered to the
linear bytecode of :meth:`~repro.prolog.compile.CompiledClause.vm_code`
and executed by :class:`Machine`, a single iterative loop with

* an explicit **choice-point stack** (``Machine.cps``) instead of
  suspended generators — each entry is a plain Python list/tuple
  (picklable data, the prerequisite the ROADMAP names for a
  multi-process or native backend);
* an explicit **continuation chain** — the caller's registers are
  saved as one immutable tuple per in-flight call, so yielding a
  solution is O(1) instead of O(depth) generator hops;
* **native deterministic builtins** (:data:`DET_BUILTINS`) — ``is/2``,
  the arithmetic comparisons, ``=/2``, the identity/order tests, and
  the type tests run as one function call: no generator, no choice
  point, no undo (any later backtrack undoes to an older trail mark,
  which subsumes their bindings).

Counter discipline is byte-identical to ``Engine._solve_user_compiled``
(the differential suite and ``BENCH_engine.json`` pin it): the machine
charges ``record_backtrack``/``record_fast_reject``/
``record_instantiation``/``record_unification`` at exactly the same
points, including the scan-plan bulk charges from PR 8.

Three choice-point kinds:

``CP_CLAUSES``
    ``[kind, cont, goal_args, clauses, program, cursor, mark, frame,
    body_depth, goal_keys, bound_positions]`` — the machine's own
    clause selection (the WAM's RETRY chain). When the last candidate
    unifies, the entry is dropped eagerly (TRUST).
``CP_PLAN``
    Same, with the clause list replaced by a database scan plan
    (``index``/``processed`` cursors) so runs of fingerprint-rejected
    clauses are skipped and charged in bulk.
``CP_ITER``
    ``[kind, cont, iterator, frame, barrier]`` — a delegated goal
    (non-deterministic builtin, tabled call, control construct via
    ``Engine.solve_goal``) held as an iterator. The escape hatch that
    keeps every delegated construct's semantics — cut transparency,
    tabling, exceptions — literally the engine's existing code.

Cut is eager: ``VM_CUT`` prunes the stack down to the call's barrier
(the stack height captured at call entry), closing delegated iterators
in LIFO order; the trail is deliberately *not* undone (bindings made
left of the cut are part of the committed solution).

The machine runs only on the uninstrumented fast path: when a tracer,
event bus, recorder, or bottom-up dispatcher is attached,
``Engine._solve_user_vm`` routes to the generator oracle instead — the
same precedent as the scan plans, which also only run when the bus is
off. Instrumented VM runs are therefore event-for-event identical to
the PR 3 path by construction.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..errors import DepthLimitExceeded, ExistenceError
from .builtins.arith import evaluate
from .compile import (
    ARG_CODE,
    ARG_CONST,
    ARG_SLOT,
    VM_BUILTIN,
    VM_CALL,
    VM_CUT,
    VM_DET,
    VM_FAIL,
    VM_GENERIC,
    _run,
)
from .database import first_arg_key
from .engine import Frame
from .tabling import solve_tabled
from .terms import (
    Atom,
    Struct,
    Var,
    deref,
    is_number,
    is_proper_list,
    structural_eq,
    term_is_ground,
    term_ordering_key,
)
from .unify import unify

__all__ = [
    "Machine",
    "solve_vm",
    "DET_BUILTINS",
    "disassemble_clause",
    "disassemble_predicate",
    "disassemble_database",
]

#: Choice-point kinds (first element of every stack entry).
CP_CLAUSES = 0
CP_PLAN = 1
CP_ITER = 2

#: Sentinel distinguishing "iterator exhausted" from a yielded None.
_EXHAUSTED = object()


# -- native deterministic builtins ------------------------------------------
#
# Each mirrors its generator twin in repro.prolog.builtins line for
# line (same evaluation order, same failure-time undo), minus the
# success-time redo-undo: the machine never resumes a det op, and any
# backtrack that could observe its bindings first undoes to an older
# trail mark, which subsumes them. All are module-level named functions
# so the bytecode tuples that carry them stay picklable.


def _det_is(engine, args):
    value = evaluate(args[1])
    trail = engine.trail
    mark = trail.mark()
    if unify(args[0], value, trail):
        return True
    trail.undo_to(mark)
    return False


def _det_eq_num(engine, args):
    return evaluate(args[0]) == evaluate(args[1])


def _det_ne_num(engine, args):
    return evaluate(args[0]) != evaluate(args[1])


def _det_lt(engine, args):
    return evaluate(args[0]) < evaluate(args[1])


def _det_gt(engine, args):
    return evaluate(args[0]) > evaluate(args[1])


def _det_le(engine, args):
    return evaluate(args[0]) <= evaluate(args[1])


def _det_ge(engine, args):
    return evaluate(args[0]) >= evaluate(args[1])


def _det_unify(engine, args):
    trail = engine.trail
    mark = trail.mark()
    if unify(args[0], args[1], trail, occurs_check=engine.occurs_check):
        return True
    trail.undo_to(mark)
    return False


def _det_not_unify(engine, args):
    trail = engine.trail
    mark = trail.mark()
    unified = unify(args[0], args[1], trail, occurs_check=engine.occurs_check)
    trail.undo_to(mark)
    return not unified


def _det_identical(engine, args):
    return structural_eq(args[0], args[1])


def _det_not_identical(engine, args):
    return not structural_eq(args[0], args[1])


def _order_sign(args):
    left = term_ordering_key(args[0])
    right = term_ordering_key(args[1])
    return (left > right) - (left < right)


def _det_before(engine, args):
    return _order_sign(args) < 0


def _det_after(engine, args):
    return _order_sign(args) > 0


def _det_before_eq(engine, args):
    return _order_sign(args) <= 0


def _det_after_eq(engine, args):
    return _order_sign(args) >= 0


def _det_var(engine, args):
    return isinstance(deref(args[0]), Var)


def _det_nonvar(engine, args):
    return not isinstance(deref(args[0]), Var)


def _det_atom(engine, args):
    return isinstance(deref(args[0]), Atom)


def _det_number(engine, args):
    return is_number(deref(args[0]))


def _det_integer(engine, args):
    term = deref(args[0])
    return isinstance(term, int) and not isinstance(term, bool)


def _det_float(engine, args):
    return isinstance(deref(args[0]), float)


def _det_atomic(engine, args):
    term = deref(args[0])
    return isinstance(term, Atom) or is_number(term)


def _det_compound(engine, args):
    return isinstance(deref(args[0]), Struct)


def _det_callable(engine, args):
    return isinstance(deref(args[0]), (Atom, Struct))


def _det_is_list(engine, args):
    return is_proper_list(deref(args[0]))


def _det_ground(engine, args):
    return term_is_ground(deref(args[0]))


#: Deterministic builtins the machine runs natively: ``fn(engine,
#: args) -> bool``. Anything registered here must succeed at most once
#: and leave bindings only on success (the generator twin's redo-undo
#: is subsumed by outer trail marks — see the module docstring).
DET_BUILTINS = {
    ("is", 2): _det_is,
    ("=:=", 2): _det_eq_num,
    ("=\\=", 2): _det_ne_num,
    ("<", 2): _det_lt,
    (">", 2): _det_gt,
    ("=<", 2): _det_le,
    (">=", 2): _det_ge,
    ("=", 2): _det_unify,
    ("\\=", 2): _det_not_unify,
    ("==", 2): _det_identical,
    ("\\==", 2): _det_not_identical,
    ("@<", 2): _det_before,
    ("@>", 2): _det_after,
    ("@=<", 2): _det_before_eq,
    ("@>=", 2): _det_after_eq,
    ("var", 1): _det_var,
    ("nonvar", 1): _det_nonvar,
    ("atom", 1): _det_atom,
    ("number", 1): _det_number,
    ("integer", 1): _det_integer,
    ("float", 1): _det_float,
    ("atomic", 1): _det_atomic,
    ("compound", 1): _det_compound,
    ("callable", 1): _det_callable,
    ("is_list", 1): _det_is_list,
    ("ground", 1): _det_ground,
}


class Machine:
    """One root user-predicate call, executed by the trampoline.

    ``next_solution()`` runs the machine to its next answer (``True``)
    or to exhaustion (``False``); bindings for an answer live on the
    engine trail while the caller holds them, exactly like the
    generator path. ``close()`` discards the remaining choice points,
    closing delegated iterators in LIFO order — the explicit unwind
    the satellite requires for ``ask(limit=)``/budget aborts.
    """

    __slots__ = ("engine", "goal", "indicator", "depth", "cps", "_started", "_done")

    def __init__(self, engine, goal, indicator, depth: int):
        self.engine = engine
        self.goal = goal
        self.indicator = indicator
        self.depth = depth
        #: The explicit choice-point stack (plain lists — picklable
        #: when no delegated iterator is on the stack).
        self.cps: List[list] = []
        self._started = False
        self._done = False

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Discard all remaining choice points (LIFO iterator close).

        The trail is *not* undone here: abandoned-generator semantics
        leave bindings for the enclosing mark/undo discipline
        (``Engine.solve``'s ``finally`` owns the query-level undo), and
        a committed answer's bindings must survive its own cleanup.
        """
        cps = self.cps
        for position in range(len(cps) - 1, -1, -1):
            cp = cps[position]
            if cp[0] == CP_ITER:
                cp[2].close()
        del cps[:]
        self._done = True

    def _prune(self, barrier: int) -> None:
        """Cut: drop choice points above ``barrier``, closing delegated
        iterators rightmost-first (the order the generator ladder's
        ``finally`` chain unwound in)."""
        cps = self.cps
        for position in range(len(cps) - 1, barrier - 1, -1):
            cp = cps[position]
            if cp[0] == CP_ITER:
                cp[2].close()
        del cps[barrier:]

    # -- call entry -----------------------------------------------------

    def _push_call(self, cont, indicator, args, call_depth: int) -> bool:
        """Clause selection for one call: push its choice point.

        Returns ``False`` when no clause can match (the call fails
        without a choice point). Mirrors the preamble of
        ``Engine._solve_user_compiled`` exactly — including the
        fingerprint setup and the scan-plan condition (always eligible
        here: the machine only runs with the event bus off).
        """
        engine = self.engine
        if call_depth >= engine.max_depth:
            raise DepthLimitExceeded(
                f"depth {engine.max_depth} exceeded at {indicator[0]}/{indicator[1]}"
            )
        database = engine.database
        clauses = database.matching_for(indicator, args)
        if not clauses:
            return False
        program = database.compiled_program(indicator)
        goal_keys = None
        bound_positions = ()
        plan = None
        if args and len(clauses) > 1:
            goal_keys = tuple(first_arg_key(arg) for arg in args)
            bound_positions = tuple(
                position
                for position, key in enumerate(goal_keys)
                if key is not None
            )
            if not bound_positions:
                goal_keys = None
            elif goal_keys[0] is not None:
                plan = database.scan_plan(indicator, clauses, goal_keys[0])
        mark = engine.trail.mark()
        if plan is not None:
            self.cps.append(
                [CP_PLAN, cont, args, plan, program, 0, 0, mark,
                 Frame(), call_depth + 1, goal_keys, bound_positions]
            )
        else:
            self.cps.append(
                [CP_CLAUSES, cont, args, clauses, program, 0, mark,
                 Frame(), call_depth + 1, goal_keys, bound_positions]
            )
        return True

    # -- clause attempt loops -------------------------------------------
    #
    # Shared by call entry (first attempt, no choice point yet) and the
    # backtrack handlers (retry from a stored cursor). The counter
    # charges transcribe Engine._solve_user_compiled verbatim — every
    # record_* call below has a line-for-line twin there.

    def _try_clauses(
        self, goal_args, clauses, program, cursor, mark,
        goal_keys, bound_positions,
    ):
        """Try clauses from ``cursor``; return ``(slots, cursor,
        compiled)`` with ``slots=None`` on exhaustion."""
        engine = self.engine
        metrics = engine.metrics
        trail = engine.trail
        occurs = engine.occurs_check
        undo_to = trail.undo_to
        total = len(clauses)
        compiled = None
        while cursor < total:
            if cursor:
                metrics.record_backtrack()
            compiled = program[clauses[cursor].index]
            cursor += 1
            if goal_keys is not None:
                head_keys = compiled.head_keys
                rejected = False
                for position in bound_positions:
                    head_key = head_keys[position]
                    if head_key is not None and head_key != goal_keys[position]:
                        rejected = True
                        break
                if rejected:
                    metrics.record_fast_reject()
                    continue
            slots = compiled.unify_head(goal_args, trail, occurs)
            metrics.record_instantiation()
            if slots is None:
                metrics.record_unification(False)
                undo_to(mark)
                continue
            metrics.record_unification(True)
            return slots, cursor, compiled
        return None, cursor, compiled

    def _try_plan(
        self, goal_args, plan, program, index, processed, mark,
        goal_keys, bound_positions,
    ):
        """Scan-plan variant of :meth:`_try_clauses`, with the PR 8
        bulk charges; returns ``(slots, index, processed, compiled)``."""
        engine = self.engine
        metrics = engine.metrics
        trail = engine.trail
        occurs = engine.occurs_check
        undo_to = trail.undo_to
        steps = len(plan)
        compiled = None
        while index < steps:
            skipped, clause = plan[index]
            index += 1
            if skipped:
                metrics.unifications += skipped
                metrics.head_fast_rejects += skipped
                metrics.backtracks += skipped if processed else skipped - 1
                processed += skipped
            if clause is None:
                break
            if processed:
                metrics.record_backtrack()
            processed += 1
            compiled = program[clause.index]
            head_keys = compiled.head_keys
            rejected = False
            for position in bound_positions:
                head_key = head_keys[position]
                if head_key is not None and head_key != goal_keys[position]:
                    rejected = True
                    break
            if rejected:
                metrics.record_fast_reject()
                continue
            slots = compiled.unify_head(goal_args, trail, occurs)
            metrics.record_instantiation()
            if slots is None:
                metrics.record_unification(False)
                undo_to(mark)
                continue
            metrics.record_unification(True)
            return slots, index, processed, compiled
        return None, index, processed, compiled

    # -- the trampoline -------------------------------------------------

    def next_solution(self) -> bool:
        """Advance to the next answer; ``False`` when exhausted."""
        if self._done:
            return False
        engine = self.engine
        trail = engine.trail
        undo_to = trail.undo_to
        trail_mark = trail.mark
        database = engine.database
        defines = database.defines
        matching_for = database.matching_for
        compiled_program = database.compiled_program
        scan_plan = database.scan_plan
        tabled = database.tabled
        table_all = engine.table_all
        max_depth = engine.max_depth
        charge_call = engine._charge_call
        budget = engine._active_budget
        call_cache = engine._vm_call_cache
        cps = self.cps
        cps_append = cps.append

        # Activation registers (restored from a choice point or a
        # continuation tuple on every transfer).
        ops: tuple = ()
        pc = 0
        frame_slots = ()
        frame: Optional[Frame] = None
        barrier = 0
        depth = 0
        cont = None

        if self._started:
            failing = True
        else:
            self._started = True
            # Root entry: solve_goal already charged, resolved, and
            # routed this call, so only clause selection happens here —
            # driven through the CP_CLAUSES/CP_PLAN backtrack handler
            # (a fresh cursor charges nothing on its first attempt).
            goal = deref(self.goal)
            args = goal.args if isinstance(goal, Struct) else ()
            if not self._push_call(None, self.indicator, args, self.depth):
                self._done = True
                return False
            failing = True

        while True:
            if budget is not None:
                # One step per machine transition bounds redo storms
                # that never issue a new call (the generator path's
                # per-body-iteration charge, at the machine's cadence)
                # and keeps deadline/cancellation checks live.
                budget.charge_step()
            if failing:
                # ---------------- backtracking ----------------
                if not cps:
                    self._done = True
                    return False
                cp = cps[-1]
                kind = cp[0]
                if kind == CP_ITER:
                    value = next(cp[2], _EXHAUSTED)
                    if value is _EXHAUSTED:
                        cps.pop()
                        if cp[3].cut:
                            # A delegated construct executed a cut that
                            # escapes into its clause: discard the
                            # call's remaining alternatives.
                            self._prune(cp[4])
                        continue
                    (ops, pc, frame_slots, frame, barrier, depth, cont) = cp[1]
                    failing = False
                    continue
                if kind == CP_CLAUSES:
                    undo_to(cp[6])
                    slots, cursor, compiled = self._try_clauses(
                        cp[2], cp[3], cp[4], cp[5], cp[6], cp[9], cp[10]
                    )
                    if slots is None:
                        cps.pop()
                        continue
                    barrier = len(cps) - 1
                    if cursor == len(cp[3]):
                        cps.pop()  # TRUST: no alternative left
                    else:
                        cp[5] = cursor
                    ops = compiled.vm_code()
                    pc = 0
                    frame_slots = slots
                    frame = cp[7]
                    depth = cp[8]
                    cont = cp[1]
                    failing = False
                    continue
                # kind == CP_PLAN
                undo_to(cp[7])
                slots, index, processed, compiled = self._try_plan(
                    cp[2], cp[3], cp[4], cp[5], cp[6], cp[7], cp[10], cp[11]
                )
                if slots is None:
                    cps.pop()
                    continue
                barrier = len(cps) - 1
                plan = cp[3]
                if index == len(plan) - 1 and plan[index][0] == 0:
                    cps.pop()  # only the empty sentinel remains
                else:
                    cp[5] = index
                    cp[6] = processed
                ops = compiled.vm_code()
                pc = 0
                frame_slots = slots
                frame = cp[8]
                depth = cp[9]
                cont = cp[1]
                failing = False
                continue

            # ---------------- forward execution ----------------
            if pc == len(ops):
                # PROCEED: the body is done — pop the continuation.
                if cont is None:
                    return True  # a root answer; resume = backtrack
                (ops, pc, frame_slots, frame, barrier, depth, cont) = cont
                continue
            op = ops[pc]
            tag = op[0]
            if tag == VM_CALL:
                indicator = op[1]
                args = op[2](frame_slots)
                charge_call(indicator)
                if table_all or indicator in tabled:
                    if not defines(indicator):
                        raise ExistenceError(indicator)
                    goal = (
                        Struct(indicator[0], args) if args else Atom(indicator[0])
                    )
                    iterator = solve_tabled(engine, goal, indicator, depth)
                    value = next(iterator, _EXHAUSTED)
                    if value is _EXHAUSTED:
                        failing = True
                        continue
                    cps_append(
                        [CP_ITER,
                         (ops, pc + 1, frame_slots, frame, barrier, depth, cont),
                         iterator, frame, barrier]
                    )
                    pc += 1
                    continue
                # Inline call entry with a *lazy* choice point: the
                # first clause attempt runs right here, and a CP is
                # allocated only when alternatives actually remain —
                # a deterministic call (the common case) never touches
                # the stack. Mirrors _push_call's preamble; the two
                # must stay in sync.
                #
                # Clause selection is memoized per (indicator, arg
                # keys): index probes depend on the arguments only
                # through first_arg_key, so a cell validated against
                # the database generation replays the exact lookup —
                # clause list, compiled program, fingerprint keys and
                # scan plan — without touching the index. The memo is
                # bypassed whenever IndexEvents are being observed.
                if args:
                    goal_keys = tuple([first_arg_key(arg) for arg in args])
                else:
                    goal_keys = ()
                cache_key = (indicator, goal_keys)
                cached = call_cache.get(cache_key)
                if (
                    cached is None
                    or cached[0] != database.generation
                    or database.events is not None
                ):
                    cached = None
                    if not defines(indicator):
                        raise ExistenceError(indicator)
                if depth >= max_depth:
                    raise DepthLimitExceeded(
                        f"depth {max_depth} exceeded at "
                        f"{indicator[0]}/{indicator[1]}"
                    )
                if cached is not None:
                    (_, clauses, program,
                     goal_keys, bound_positions, plan) = cached
                else:
                    clauses = matching_for(indicator, args,
                                           goal_keys or None)
                    program = compiled_program(indicator)
                    bound_positions = ()
                    plan = None
                    if goal_keys and len(clauses) > 1:
                        bound_positions = tuple(
                            [p for p, key in enumerate(goal_keys)
                             if key is not None]
                        )
                        if not bound_positions:
                            goal_keys = None
                        elif goal_keys[0] is not None:
                            plan = scan_plan(indicator, clauses, goal_keys[0])
                    else:
                        goal_keys = None
                    if database.events is None:
                        if len(call_cache) > 4096:
                            call_cache.clear()
                        call_cache[cache_key] = (
                            database.generation, clauses, program,
                            goal_keys, bound_positions, plan,
                        )
                if not clauses:
                    failing = True
                    continue
                mark = trail_mark()
                if plan is None:
                    slots, cursor, compiled = self._try_clauses(
                        args, clauses, program, 0, mark,
                        goal_keys, bound_positions,
                    )
                    if slots is None:
                        failing = True
                        continue
                    saved = (ops, pc + 1, frame_slots, frame, barrier,
                             depth, cont)
                    barrier = len(cps)
                    frame = Frame()
                    if cursor < len(clauses):
                        cps_append(
                            [CP_CLAUSES, saved, args, clauses, program,
                             cursor, mark, frame, depth + 1,
                             goal_keys, bound_positions]
                        )
                else:
                    slots, index, processed, compiled = self._try_plan(
                        args, plan, program, 0, 0, mark,
                        goal_keys, bound_positions,
                    )
                    if slots is None:
                        failing = True
                        continue
                    saved = (ops, pc + 1, frame_slots, frame, barrier,
                             depth, cont)
                    barrier = len(cps)
                    frame = Frame()
                    if not (index == len(plan) - 1 and plan[index][0] == 0):
                        cps_append(
                            [CP_PLAN, saved, args, plan, program,
                             index, processed, mark, frame, depth + 1,
                             goal_keys, bound_positions]
                        )
                ops = compiled.vm_code()
                pc = 0
                frame_slots = slots
                depth = depth + 1
                cont = saved
                continue
            if tag == VM_DET:
                charge_call(op[1])
                if op[2](engine, op[3](frame_slots)):
                    pc += 1
                else:
                    failing = True
                continue
            if tag == VM_BUILTIN:
                charge_call(op[1])
                iterator = op[2](
                    engine, op[3](frame_slots), depth, frame
                )
                value = next(iterator, _EXHAUSTED)
                if value is _EXHAUSTED:
                    if frame.cut:
                        self._prune(barrier)
                    failing = True
                    continue
                cps_append(
                    [CP_ITER,
                     (ops, pc + 1, frame_slots, frame, barrier, depth, cont),
                     iterator, frame, barrier]
                )
                pc += 1
                continue
            if tag == VM_GENERIC:
                code = op[1]
                goal = op[2] if code is None else _run(code, frame_slots)
                # solve_goal charges, dispatches (control constructs,
                # runtime builtins behind variables, nested user calls
                # through _solve_user_vm) and boxes — verbatim reuse.
                iterator = engine.solve_goal(goal, depth, frame)
                value = next(iterator, _EXHAUSTED)
                if value is _EXHAUSTED:
                    if frame.cut:
                        self._prune(barrier)
                    failing = True
                    continue
                cps_append(
                    [CP_ITER,
                     (ops, pc + 1, frame_slots, frame, barrier, depth, cont),
                     iterator, frame, barrier]
                )
                pc += 1
                continue
            if tag == VM_CUT:
                if len(cps) > barrier:
                    self._prune(barrier)
                pc += 1
                continue
            # tag == VM_FAIL (never charged, like the engine's inline
            # handling of ``fail``/``false``).
            failing = True


def _build_args(specs, frame) -> tuple:
    """Materialize a goal's argument tuple from its argspecs."""
    if not specs:
        return ()
    return tuple(
        payload
        if tag == ARG_CONST
        else frame[payload]
        if tag == ARG_SLOT
        else _run(payload, frame)
        for tag, payload in specs
    )


def solve_vm(engine, goal, indicator, depth: int) -> Iterator[None]:
    """Drive one :class:`Machine` as an iterator — the VM's only
    generator, one per root user call rather than three per goal.

    The ``finally`` close is the leak fix the satellite names: an
    abandoned enumeration (``ask(limit=)``, a budget abort, an
    exception) pops the whole choice-point stack deterministically,
    closing delegated iterators in LIFO order.
    """
    machine = Machine(engine, goal, indicator, depth)
    try:
        while machine.next_solution():
            yield
    finally:
        machine.close()


# -- disassembler -----------------------------------------------------------

_OP_NAMES = {
    VM_CALL: "CALL",
    VM_DET: "DET_BUILTIN",
    VM_BUILTIN: "BUILTIN",
    VM_GENERIC: "GENERIC",
    VM_CUT: "CUT",
    VM_FAIL: "FAIL",
}


def _display_frame(compiled) -> list:
    """A frame of named free variables for rendering bytecode operands."""
    return [Var(name) for name in compiled.var_names]


def _render(term) -> str:
    from .writer import term_to_string

    return term_to_string(term)


def _render_args(specs, frame) -> str:
    if not specs:
        return ""
    return "(" + ", ".join(_render(arg) for arg in _build_args(specs, frame)) + ")"


def _head_spec_text(tag: int, payload, frame) -> str:
    from .compile import _ARG_BUILD, _ARG_CONST, _ARG_FRESH, _ARG_SLOT

    if tag == _ARG_FRESH:
        return f"fresh {frame[payload].name}@{payload}"
    if tag == _ARG_SLOT:
        return f"slot {frame[payload].name}@{payload}"
    if tag == _ARG_CONST:
        return f"const {_render(payload)}"
    assert tag == _ARG_BUILD
    return f"build {_render(_run(payload, frame))}"


def disassemble_clause(compiled, position: Optional[int] = None) -> List[str]:
    """Human-readable bytecode listing for one compiled clause."""
    frame = _display_frame(compiled)
    lines = []
    label = "clause" if position is None else f"clause {position}"
    lines.append(f"  {label}: frame={len(frame)} slots")
    if compiled.head_args:
        specs = ", ".join(
            _head_spec_text(tag, payload, frame)
            for tag, payload in compiled.head_args
        )
        lines.append(f"    UNIFY_HEAD   {specs}")
    lines.append("    NECK")
    for op in compiled.vm_code():
        tag = op[0]
        name = _OP_NAMES[tag]
        if tag == VM_CALL:
            indicator = op[1]
            lines.append(
                f"    {name:<12} {indicator[0]}/{indicator[1]}"
                f"{_render_args(op[3], frame)}"
            )
        elif tag in (VM_DET, VM_BUILTIN):
            indicator = op[1]
            lines.append(
                f"    {name:<12} {indicator[0]}/{indicator[1]}"
                f"{_render_args(op[4], frame)}"
            )
        elif tag == VM_GENERIC:
            code, const = op[1], op[2]
            goal = const if code is None else _run(code, frame)
            lines.append(f"    {name:<12} {_render(goal)}")
        else:
            lines.append(f"    {name}")
    lines.append("    PROCEED")
    return lines


def disassemble_predicate(database, indicator) -> List[str]:
    """Bytecode listing for every clause of one predicate."""
    program = database.compiled_program(indicator)
    lines = [f"% {indicator[0]}/{indicator[1]} ({len(program)} clauses)"]
    for position, compiled in enumerate(program):
        lines.extend(disassemble_clause(compiled, position))
    return lines


def disassemble_database(database) -> str:
    """Bytecode listing for every predicate, in definition order."""
    lines: List[str] = []
    for indicator in database.predicates():
        lines.extend(disassemble_predicate(database, indicator))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
