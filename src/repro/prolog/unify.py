"""Unification with a binding trail.

The engine binds variables in place (:class:`~repro.prolog.terms.Var`
``.ref``) and records every binding on a :class:`Trail`. Backtracking
undoes bindings by truncating the trail to a saved mark. This is the
classic WAM-style discipline and is what makes generator-based
backtracking cheap.

The occurs check is off by default, matching DEC-10/C-Prolog behaviour
(and the paper's assumption that programs are free of errors); it can be
switched on per-call for the property-based tests.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .terms import Atom, Struct, Term, Var, deref, is_number

__all__ = ["Trail", "bind", "unify", "occurs_in"]


class Trail:
    """A stack of bound variables, used to undo bindings on backtracking."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: List[Var] = []

    def mark(self) -> int:
        """The current trail position; pass to :meth:`undo_to` later."""
        return len(self._entries)

    def push(self, var: Var) -> None:
        """Record a freshly bound variable."""
        self._entries.append(var)

    def undo_to(self, mark: int) -> None:
        """Unbind every variable bound since ``mark``.

        Bulk truncation: one slice walk plus one ``del`` instead of a
        pop-per-binding loop — the backtracking path runs this once per
        abandoned clause attempt, so the constant factor matters.
        """
        entries = self._entries
        if len(entries) > mark:
            for var in entries[mark:]:
                var.ref = None
            del entries[mark:]

    def __len__(self) -> int:
        return len(self._entries)


def bind(var: Var, value: Term, trail: Trail) -> None:
    """Bind a free variable to ``value``, recording it on the trail."""
    var.ref = value
    trail.push(var)


def occurs_in(var: Var, term: Term) -> bool:
    """True when ``var`` occurs (after dereferencing) inside ``term``."""
    stack = [term]
    while stack:
        current = deref(stack.pop())
        if current is var:
            return True
        if isinstance(current, Struct):
            stack.extend(current.args)
    return False


def unify(left: Term, right: Term, trail: Trail, occurs_check: bool = False) -> bool:
    """Unify two terms, binding variables onto ``trail``.

    Returns True on success. On failure, bindings made *during this call*
    are NOT undone automatically — callers are expected to have taken a
    mark beforehand and to undo to it, which they must do anyway when
    backtracking past a successful unification. (The engine follows this
    discipline everywhere.)
    """
    stack: List[Tuple[Term, Term]] = [(left, right)]
    while stack:
        a, b = stack.pop()
        a, b = deref(a), deref(b)
        if a is b:
            continue
        if isinstance(a, Var):
            if occurs_check and occurs_in(a, b):
                return False
            bind(a, b, trail)
            continue
        if isinstance(b, Var):
            if occurs_check and occurs_in(b, a):
                return False
            bind(b, a, trail)
            continue
        if isinstance(a, Atom) or isinstance(b, Atom):
            return False  # distinct atoms, or atom vs number/struct
        if is_number(a) or is_number(b):
            if not (is_number(a) and is_number(b)):
                return False
            # 1 and 1.0 do not unify in standard Prolog.
            if type(a) is not type(b) or a != b:
                return False
            continue
        assert isinstance(a, Struct) and isinstance(b, Struct)
        if a.name != b.name or a.arity != b.arity:
            return False
        stack.extend(zip(a.args, b.args))
    return True
