"""Indexed ground-fact relations for the bottom-up evaluator.

A :class:`Relation` is a deduplicated set of ground fact tuples with
lazy per-column hash indexes — the storage the semi-naive evaluator
joins over. Terms have identity semantics in this codebase
(:class:`~repro.prolog.terms.Atom` is interned, ``Struct`` has no
structural ``__eq__``), so facts are keyed by :func:`ground_key`, a
canonical hashable encoding of a ground term: set membership, column
probes, and duplicate elimination all become O(1) dict operations on
those keys instead of structural unification.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..terms import Atom, Struct, Term, deref

__all__ = ["ground_key", "Relation"]

#: One stored fact: (per-column key tuple, per-column term tuple).
Fact = Tuple[Tuple, Tuple[Term, ...]]


def ground_key(term: Term):
    """A canonical hashable key for a *ground* term.

    Atoms key as themselves (interned: hash/eq by name), numbers as
    ``(type, value)`` so ``1`` and ``1.0`` stay distinct, compounds as
    ``(name, arg-key tuple)``. The families cannot collide: an ``Atom``
    equals only atoms, a ``(type, value)`` pair never equals a
    ``(str, tuple)`` pair. Mirrors (and extends to full depth) the
    shallow :func:`~repro.prolog.database.first_arg_key` fingerprint.
    """
    term = deref(term)
    if isinstance(term, Atom):
        return term
    if isinstance(term, Struct):
        return (term.name, tuple(ground_key(arg) for arg in term.args))
    return (type(term), term)


class Relation:
    """A set of ground facts of one arity, with per-column indexes.

    Facts are stored in insertion (derivation) order; indexes are built
    lazily the first time a column is probed and maintained
    incrementally on later inserts.
    """

    __slots__ = ("arity", "_facts", "_indexes")

    def __init__(self, arity: int):
        self.arity = arity
        self._facts: Dict[Tuple, Tuple[Term, ...]] = {}
        self._indexes: Dict[int, Dict[object, List[Fact]]] = {}

    def add(self, args: Tuple[Term, ...], key: Optional[Tuple] = None) -> bool:
        """Insert one ground fact; False when it was already present."""
        if key is None:
            key = tuple(ground_key(arg) for arg in args)
        if key in self._facts:
            return False
        self._facts[key] = args
        for column, buckets in self._indexes.items():
            buckets.setdefault(key[column], []).append((key, args))
        return True

    def contains(self, key: Tuple) -> bool:
        """Membership by canonical key (negative-literal checks)."""
        return key in self._facts

    def tuples(self) -> Iterable[Tuple[Term, ...]]:
        """All fact argument tuples, in derivation order."""
        return self._facts.values()

    def items(self) -> Iterable[Fact]:
        """All (key, args) pairs, in derivation order."""
        return self._facts.items()

    def probe(self, column: int, key) -> List[Fact]:
        """Facts whose ``column`` carries ``key`` (hash-join probe)."""
        buckets = self._indexes.get(column)
        if buckets is None:
            buckets = {}
            for fact_key, fact_args in self._facts.items():
                buckets.setdefault(fact_key[column], []).append(
                    (fact_key, fact_args)
                )
            self._indexes[column] = buckets
        return buckets.get(key, [])

    def __len__(self) -> int:
        return len(self._facts)
