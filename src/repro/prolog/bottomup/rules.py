"""Datalog rule compilation for the semi-naive evaluator.

An eligible clause (see :mod:`repro.analysis.stratify`) is compiled
once into a :class:`Rule`: every distinct variable becomes a dense
integer *slot* (the same idea as the top-down compiler's skeleton
slots), and every literal argument becomes either a slot number or a
precomputed :func:`~.relation.ground_key` constant. Join evaluation
then never touches the general unifier — matching a literal against a
fact is key comparison plus slot binding, and a bound slot or constant
column gives the hash-join probe column.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..terms import Struct, Term, Var, deref, functor_indicator
from .relation import ground_key

__all__ = ["Literal", "Rule", "compile_rule"]

Indicator = Tuple[str, int]


class Literal:
    """One body literal as slot/constant column specs.

    ``slots[p]`` is the variable slot read/bound at position ``p`` (or
    ``None`` for a ground argument); ``const_keys[p]`` is the ground
    argument's canonical key (or ``None`` for a variable).
    """

    __slots__ = ("indicator", "positive", "slots", "const_keys")

    def __init__(
        self,
        indicator: Indicator,
        positive: bool,
        slots: Tuple[Optional[int], ...],
        const_keys: Tuple[Optional[object], ...],
    ):
        self.indicator = indicator
        self.positive = positive
        self.slots = slots
        self.const_keys = const_keys


class Rule:
    """One compiled datalog rule: head projection + body literals.

    ``head_slots``/``head_consts`` mirror the literal encoding but keep
    the constant *terms* (not just keys) so derived facts can be stored
    as real term tuples; ``positives``/``negatives`` are the body
    literals, negatives always evaluated last (range restriction
    guarantees their slots are bound by then).
    """

    __slots__ = (
        "head_indicator",
        "head_slots",
        "head_consts",
        "head_const_keys",
        "positives",
        "negatives",
        "slot_count",
    )

    def __init__(self, head_indicator: Indicator):
        self.head_indicator = head_indicator
        self.head_slots: Tuple[Optional[int], ...] = ()
        self.head_consts: Tuple[Optional[Term], ...] = ()
        self.head_const_keys: Tuple[Optional[object], ...] = ()
        self.positives: List[Literal] = []
        self.negatives: List[Literal] = []
        self.slot_count = 0


def _arg_specs(
    term: Term, slots: Dict[int, int]
) -> Tuple[List[Optional[int]], List[Optional[Term]], List[Optional[object]]]:
    """Decompose a literal's arguments into (slot, const, const-key)
    columns, allocating new slots for first-seen variables."""
    slot_columns: List[Optional[int]] = []
    const_columns: List[Optional[Term]] = []
    key_columns: List[Optional[object]] = []
    args = term.args if isinstance(term, Struct) else ()
    for arg in args:
        arg = deref(arg)
        if isinstance(arg, Var):
            slot = slots.get(id(arg))
            if slot is None:
                slot = len(slots)
                slots[id(arg)] = slot
            slot_columns.append(slot)
            const_columns.append(None)
            key_columns.append(None)
        else:
            slot_columns.append(None)
            const_columns.append(arg)
            key_columns.append(ground_key(arg))
    return slot_columns, const_columns, key_columns


def compile_rule(info) -> Rule:
    """Compile one analyzed clause (:class:`~repro.analysis.stratify.ClauseInfo`)."""
    head = deref(info.clause.head)
    rule = Rule(functor_indicator(head))
    slots: Dict[int, int] = {}
    for literal in info.positives:
        literal = deref(literal)
        slot_columns, _consts, key_columns = _arg_specs(literal, slots)
        rule.positives.append(
            Literal(
                functor_indicator(literal),
                True,
                tuple(slot_columns),
                tuple(key_columns),
            )
        )
    for literal in info.negatives:
        literal = deref(literal)
        slot_columns, _consts, key_columns = _arg_specs(literal, slots)
        rule.negatives.append(
            Literal(
                functor_indicator(literal),
                False,
                tuple(slot_columns),
                tuple(key_columns),
            )
        )
    # Range restriction guarantees head variables were all seen above.
    head_slot_columns, head_consts, head_keys = _arg_specs(head, slots)
    rule.head_slots = tuple(head_slot_columns)
    rule.head_consts = tuple(head_consts)
    rule.head_const_keys = tuple(head_keys)
    rule.slot_count = len(slots)
    return rule
