"""Bottom-up (semi-naive) evaluation of datalog-like strata.

The second evaluation strategy beside SLD resolution (Warren's *A
Prolog Program for Bottom-up Evaluation*, PAPERS.md): eligible strata —
range-restricted, side-effect-free, stratified, term-flat recursion
components detected by :mod:`repro.analysis.stratify` — are
materialized to fixpoint with semi-naive iteration over indexed fact
relations (hash joins on bound columns, delta relations per round),
and calls are answered by probing the materialized relation. Engine
integration is ``Engine(eval_strategy="bottomup"|"auto")`` / the CLI's
``--eval`` flag; everything else falls back to the top-down engine
unchanged.
"""

from .dispatch import BottomUpDispatcher, Materializer
from .relation import Relation, ground_key
from .rules import Literal, Rule, compile_rule
from .seminaive import StratumStats, evaluate_component

__all__ = [
    "BottomUpDispatcher",
    "Literal",
    "Materializer",
    "Relation",
    "Rule",
    "StratumStats",
    "compile_rule",
    "evaluate_component",
    "ground_key",
]
