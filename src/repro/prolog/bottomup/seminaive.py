"""Semi-naive fixpoint evaluation of one recursion component.

The classic delta discipline (Warren's bottom-up recipe, PAPERS.md):
facts and non-recursive derivations seed the *delta* relations; each
round re-evaluates only the recursive rules, once per in-component
literal position with that literal restricted to the previous round's
delta and every other literal joined against the full relations; newly
derived facts (deduplicated by canonical key) become the next delta.
The loop reaches fixpoint when a round derives nothing new — finite,
because eligible strata are datalog (no new terms are ever built, so
the Herbrand base is bounded by the stored constants).

Joins are hash joins on bound columns: each literal is matched by
probing its relation's lazy column index on the first constant or
already-bound column (falling back to a scan only for literals with no
bound column), and positive literals are greedily ordered so a literal
with a bound probe column runs as early as possible — the same
bound-argument-first intuition the paper's reorderer applies top-down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .relation import Relation, ground_key
from .rules import Literal, Rule

__all__ = ["StratumStats", "evaluate_component"]

Indicator = Tuple[str, int]


@dataclass
class StratumStats:
    """What one component's materialization did.

    ``rounds`` counts the seeding pass plus every semi-naive iteration
    (the final, empty round included); ``delta_sizes`` is the new-fact
    count per round (index 0 = seeding); ``facts`` the total facts
    materialized across the component's predicates.
    """

    rounds: int = 0
    delta_sizes: List[int] = field(default_factory=list)
    facts: int = 0


def _order_positives(
    positives: Sequence[Literal], first: Optional[int]
) -> List[int]:
    """Greedy join order over positive-literal positions.

    Starts from ``first`` (the delta literal, when given), then
    repeatedly picks the literal whose columns are most constrained by
    constants or already-bound slots — giving the hash join a probe
    column whenever one exists. Ties break toward source order.
    """
    order: List[int] = []
    bound: Set[int] = set()
    remaining = [i for i in range(len(positives)) if i != first]
    if first is not None:
        order.append(first)
        bound.update(s for s in positives[first].slots if s is not None)
    while remaining:
        best = None
        best_score = -1
        for index in remaining:
            literal = positives[index]
            score = 0
            for position, slot in enumerate(literal.slots):
                if slot is None or slot in bound:
                    score += 1
            if score > best_score:
                best, best_score = index, score
        order.append(best)
        remaining.remove(best)
        bound.update(s for s in positives[best].slots if s is not None)
    return order


def _match(
    literal: Literal,
    fact,
    env_terms: List,
    env_keys: List,
    bound: List[int],
) -> bool:
    """Match one fact against a literal under the current bindings.

    Binds first-occurrence slots in place (recording them in ``bound``
    for the caller's undo); the caller must undo ``bound`` past its
    entry mark when this returns False, because a repeated-variable
    mismatch can happen after earlier columns already bound slots.
    """
    key, args = fact
    slots = literal.slots
    const_keys = literal.const_keys
    for position in range(len(slots)):
        slot = slots[position]
        if slot is None:
            if key[position] != const_keys[position]:
                return False
        else:
            existing = env_keys[slot]
            if existing is None:
                env_keys[slot] = key[position]
                env_terms[slot] = args[position]
                bound.append(slot)
            elif existing != key[position]:
                return False
    return True


def _candidates(
    literal: Literal, relation: Relation, env_keys: List, override
):
    """The fact source for one literal: the delta override, a hash
    probe on the first bound column, or a full scan."""
    if override is not None:
        return override
    slots = literal.slots
    for position in range(len(slots)):
        slot = slots[position]
        if slot is None:
            return relation.probe(position, literal.const_keys[position])
        key = env_keys[slot]
        if key is not None:
            return relation.probe(position, key)
    return relation.items()


def _negative_blocked(
    rule: Rule, relations: Dict[Indicator, Relation], env_keys: List
) -> bool:
    """True when some negated literal's (fully bound) key is present."""
    for literal in rule.negatives:
        key = tuple(
            literal.const_keys[position] if slot is None else env_keys[slot]
            for position, slot in enumerate(literal.slots)
        )
        relation = relations.get(literal.indicator)
        if relation is not None and relation.contains(key):
            return True
    return False


def _derivations(
    rule: Rule,
    relations: Dict[Indicator, Relation],
    delta_position: Optional[int],
    delta_facts,
) -> Iterator[Tuple[Tuple, Tuple]]:
    """Yield (key, args) head instances of one rule.

    ``delta_position`` (a positive-literal index) restricts that
    literal to ``delta_facts`` — the semi-naive round discipline; None
    evaluates the rule naively (the seeding pass).
    """
    order = _order_positives(rule.positives, delta_position)
    env_terms: List = [None] * rule.slot_count
    env_keys: List = [None] * rule.slot_count
    count = len(order)

    def solve(step: int) -> Iterator[None]:
        if step == count:
            if not _negative_blocked(rule, relations, env_keys):
                yield
            return
        index = order[step]
        literal = rule.positives[index]
        relation = relations[literal.indicator]
        override = delta_facts if index == delta_position else None
        bound: List[int] = []
        mark = 0
        for fact in _candidates(literal, relation, env_keys, override):
            if _match(literal, fact, env_terms, env_keys, bound):
                yield from solve(step + 1)
            while len(bound) > mark:
                slot = bound.pop()
                env_keys[slot] = None
                env_terms[slot] = None
        return

    head_slots = rule.head_slots
    head_consts = rule.head_consts
    head_const_keys = rule.head_const_keys
    width = len(head_slots)
    for _ in solve(0):
        key = tuple(
            head_const_keys[p] if head_slots[p] is None else env_keys[head_slots[p]]
            for p in range(width)
        )
        args = tuple(
            head_consts[p] if head_slots[p] is None else env_terms[head_slots[p]]
            for p in range(width)
        )
        yield key, args


def evaluate_component(
    component: Sequence[Indicator],
    facts: Sequence[Tuple[Indicator, Tuple]],
    rules: Sequence[Rule],
    relations: Dict[Indicator, Relation],
    charge=None,
) -> StratumStats:
    """Materialize one component's relations to fixpoint, in place.

    ``relations`` must already hold every lower stratum this component
    reads; entries for the component's own predicates are created here.
    ``charge`` (a zero-argument callable, typically the active budget's
    ``charge_step``) is invoked once per round so runaway fixpoints hit
    the same budget discipline as the top-down engine.
    """
    members = set(component)
    for indicator in component:
        relations.setdefault(indicator, Relation(indicator[1]))
    stats = StratumStats()
    delta: Dict[Indicator, List] = {indicator: [] for indicator in component}

    def record(indicator: Indicator, key: Tuple, args: Tuple) -> bool:
        relation = relations[indicator]
        if relation.add(args, key):
            delta[indicator].append((key, args))
            return True
        return False

    seeded = 0
    for indicator, args in facts:
        key = tuple(ground_key(arg) for arg in args)
        if record(indicator, key, args):
            seeded += 1
    recursive_rules: List[Tuple[Rule, List[int]]] = []
    for rule in rules:
        scc_positions = [
            index
            for index, literal in enumerate(rule.positives)
            if literal.indicator in members
        ]
        if scc_positions:
            recursive_rules.append((rule, scc_positions))
        else:
            for key, args in _derivations(rule, relations, None, None):
                if record(rule.head_indicator, key, args):
                    seeded += 1
    stats.rounds = 1
    stats.delta_sizes.append(seeded)
    stats.facts = seeded
    if charge is not None:
        charge()
    while recursive_rules and any(delta.values()):
        previous = delta
        delta = {indicator: [] for indicator in component}
        derived = 0
        for rule, scc_positions in recursive_rules:
            for position in scc_positions:
                source = previous.get(rule.positives[position].indicator)
                if not source:
                    continue
                for key, args in _derivations(rule, relations, position, source):
                    if record(rule.head_indicator, key, args):
                        derived += 1
        stats.rounds += 1
        stats.delta_sizes.append(derived)
        stats.facts += derived
        if charge is not None:
            charge()
    return stats
