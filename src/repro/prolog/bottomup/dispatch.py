"""Engine-facing dispatch: materialization on demand, answers by probe.

:class:`BottomUpDispatcher` sits in the engine's user-predicate
dispatch (before tabling): a call whose stratum is eligible *and*
selected for this strategy is answered by unifying the goal against
the stratum's materialized relation — probing the relation's column
index on the first ground call argument — instead of running SLD
resolution. Everything else returns ``None`` and falls through to the
normal clause-try path, so mixed programs run each stratum on the
backend that suits it.

All derived state (stratification, relations, per-stratum stats) is
guarded by the database's ``generation`` counter: any clause mutation
(a ``serve`` update publishing a new snapshot, a direct
``add_clause``) invalidates it wholesale, exactly like the compiled-
program and clause-index caches.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ...analysis.callgraph import CallGraph
from ...analysis.stratify import Stratification, analyze_clause, stratify
from ..terms import Struct, Term, deref, term_is_ground
from ..unify import unify
from .relation import Relation, ground_key
from .rules import compile_rule
from .seminaive import StratumStats, evaluate_component

__all__ = ["Materializer", "BottomUpDispatcher"]

Indicator = Tuple[str, int]


class Materializer:
    """Materializes eligible strata (dependencies first) on demand."""

    def __init__(self, database, stratification: Stratification, graph: CallGraph):
        self.database = database
        self.stratification = stratification
        self.graph = graph
        #: Materialized fact relations, shared across strata.
        self.relations: Dict[Indicator, Relation] = {}
        #: Evaluation stats per stratum index (observability).
        self.stats: Dict[int, StratumStats] = {}
        self._done: Set[int] = set()

    def ensure(self, indicator: Indicator, engine) -> Relation:
        """The materialized relation for ``indicator`` (computing it,
        and every stratum it depends on, on first use)."""
        index = self.stratification.stratum_index(indicator)
        assert index is not None
        self._materialize(index, engine)
        return self.relations[indicator]

    def _materialize(self, index: int, engine) -> None:
        if index in self._done:
            return
        self._done.add(index)
        stratum = self.stratification.strata[index]
        members = set(stratum.predicates)
        # Dependencies first (the SCC order guarantees lower indexes,
        # but materialize-on-demand may enter anywhere).
        for indicator in stratum.predicates:
            for callee in self.graph.callees.get(indicator, ()):
                if callee in members:
                    continue
                callee_index = self.stratification.stratum_index(callee)
                if callee_index is not None:
                    self._materialize(callee_index, engine)
        facts: List[Tuple[Indicator, Tuple[Term, ...]]] = []
        rules = []
        for indicator in stratum.predicates:
            for clause in self.database.clauses(indicator):
                info = analyze_clause(clause)
                if info.is_fact:
                    head = deref(clause.head)
                    args = head.args if isinstance(head, Struct) else ()
                    facts.append((indicator, tuple(deref(a) for a in args)))
                else:
                    rules.append(compile_rule(info))
        budget = engine._active_budget
        stats = evaluate_component(
            stratum.predicates,
            facts,
            rules,
            self.relations,
            charge=None if budget is None else budget.charge_step,
        )
        self.stats[index] = stats
        bus = engine.events
        if bus is not None:
            from ...observability.events import StratumEvent

            bus.emit(
                StratumEvent(
                    predicates=tuple(
                        f"{name}/{arity}" for name, arity in stratum.predicates
                    ),
                    backend="bottomup",
                    rounds=stats.rounds,
                    delta_sizes=list(stats.delta_sizes),
                    facts=stats.facts,
                )
            )


class BottomUpDispatcher:
    """Routes eligible strata to the semi-naive backend per strategy.

    ``strategy="bottomup"`` selects every eligible stratum;
    ``"auto"`` asks the cost model's structural rule
    (:func:`repro.markov.backend.choose_backend` with no calibrated
    stats): recursive eligible strata go bottom-up, the rest stay with
    SLD resolution.
    """

    def __init__(self, strategy: str):
        self.strategy = strategy
        self._database = None
        self._generation = -1
        self._stratification: Optional[Stratification] = None
        self._materializer: Optional[Materializer] = None
        self._selected: Dict[Indicator, bool] = {}

    def _refresh(self, database) -> None:
        if (
            database is self._database
            and database.generation == self._generation
        ):
            return
        graph = CallGraph(database)
        self._database = database
        self._generation = database.generation
        self._stratification = stratify(database, graph)
        self._materializer = Materializer(database, self._stratification, graph)
        self._selected = {}

    def selects(self, indicator: Indicator) -> bool:
        """Should calls to ``indicator`` run bottom-up?"""
        cached = self._selected.get(indicator)
        if cached is not None:
            return cached
        info = self._stratification.info(indicator)
        if info is None or not info.eligible:
            selected = False
        elif self.strategy == "bottomup":
            selected = True
        else:
            from ...markov.backend import choose_backend

            selected = (
                choose_backend(
                    eligible=True,
                    recursive=info.recursive,
                    fact_count=info.fact_count,
                    rule_count=info.rule_count,
                ).backend
                == "bottomup"
            )
        self._selected[indicator] = selected
        return selected

    def solve(self, engine, goal: Term, indicator: Indicator, depth: int):
        """An answer iterator for ``goal``, or None to fall back to SLD."""
        self._refresh(engine.database)
        if not self.selects(indicator):
            return None
        relation = self._materializer.ensure(indicator, engine)
        return self._iterate(engine, goal, relation)

    @staticmethod
    def _iterate(engine, goal: Term, relation: Relation) -> Iterator[None]:
        """Yield once per stored fact unifying with ``goal``.

        Ground call arguments probe the relation's column index (first
        ground column wins); partially instantiated arguments fall back
        to scanning, with real unification doing the filtering. The
        trail mark/undo discipline matches the clause-try loop, and
        each candidate charges one unification so the counters stay
        meaningful under ``--eval=bottomup``.
        """
        goal = deref(goal)
        args = goal.args if isinstance(goal, Struct) else ()
        if not args:
            if len(relation):
                yield
            return
        candidates = None
        for position, arg in enumerate(args):
            arg = deref(arg)
            if term_is_ground(arg):
                candidates = [
                    fact_args
                    for _key, fact_args in relation.probe(
                        position, ground_key(arg)
                    )
                ]
                break
        if candidates is None:
            candidates = relation.tuples()
        trail = engine.trail
        metrics = engine.metrics
        occurs = engine.occurs_check
        budget = engine._active_budget
        for fact_args in candidates:
            if budget is not None:
                budget.charge_step()
            mark = trail.mark()
            matched = True
            for goal_arg, fact_arg in zip(args, fact_args):
                if not unify(goal_arg, fact_arg, trail, occurs):
                    matched = False
                    break
            metrics.record_unification(matched)
            if matched:
                yield
            trail.undo_to(mark)
