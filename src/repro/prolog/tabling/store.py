"""Answer tables and the per-engine table store.

A :class:`Table` holds the memoized answers of one call variant: the
canonical goal (a fresh-variable copy of the first call seen), the
answer list in first-derivation order, and the producer/consumer
bookkeeping the fixpoint driver (:mod:`.resolve`) uses to decide when a
table needs another production pass and when it is complete.

The :class:`TableStore` maps variant keys to tables for one engine. It
remembers the database *generation* it was filled against, so tables
are invalidated wholesale if clauses are added or replaced between
queries (the engine's database is normally static during a query).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..terms import Term

__all__ = ["Table", "Evaluation", "TableStore"]

Indicator = Tuple[str, int]


class Table:
    """The memoized answers of one tabled call variant."""

    __slots__ = (
        "key",
        "goal",
        "indicator",
        "depth",
        "answers",
        "answers_ground",
        "answer_keys",
        "complete",
        "passes",
        "consumed",
    )

    def __init__(self, key: Tuple, goal: Term, indicator: Indicator, depth: int):
        self.key = key
        #: Canonical goal: a copy of the first call, variables fresh.
        self.goal = goal
        self.indicator = indicator
        #: Depth of the creating call — reused for re-production passes.
        self.depth = depth
        #: Answers as resolved goal copies, in first-derivation order.
        self.answers: List[Term] = []
        #: Parallel to :attr:`answers`: True when the answer is ground,
        #: letting consumers unify against the stored term directly
        #: instead of renaming a copy per read (ground terms cannot be
        #: bound into, so sharing them is safe).
        self.answers_ground: List[bool] = []
        self.answer_keys: Set[Tuple] = set()
        self.complete = False
        #: Production passes run so far (0 = never produced).
        self.passes = 0
        #: Tables consumed while incomplete during the latest pass,
        #: mapped to the fewest answers any read of them saw. A later
        #: growth past that count means this table must re-produce.
        self.consumed: Dict["Table", int] = {}

    def needs_pass(self) -> bool:
        """Does this table require a(nother) production pass?

        True before the first pass, and again whenever a table it read
        while incomplete now has more answers than that read saw.
        """
        if self.complete:
            return False
        if self.passes == 0:
            return True
        return any(
            len(source.answers) > seen for source, seen in self.consumed.items()
        )

    def note_consumption(self, source: "Table", seen: int) -> None:
        """Record that this table's producer read ``seen`` answers from
        a then-incomplete ``source`` table."""
        previous = self.consumed.get(source)
        if previous is None or seen < previous:
            self.consumed[source] = seen


class Evaluation:
    """One in-flight fixpoint computation (leader call plus every
    variant table created while it runs)."""

    __slots__ = ("variants", "negation_floor")

    def __init__(self, negation_floor: int):
        #: Tables created during this evaluation, in creation order.
        self.variants: List[Table] = []
        #: ``engine._negation_depth`` when the evaluation started;
        #: consuming an incomplete table at a greater depth means
        #: negation reached *inside* the fixpoint (non-stratified).
        self.negation_floor = negation_floor


class TableStore:
    """All tables of one engine, keyed by canonical call variant."""

    __slots__ = ("tables", "generation")

    def __init__(self) -> None:
        self.tables: Dict[Tuple, Table] = {}
        #: Database generation the tables were computed against.
        self.generation: Optional[int] = None

    def sync(self, generation: int) -> None:
        """Drop every table if the database changed underneath them."""
        if self.generation != generation:
            self.tables.clear()
            self.generation = generation

    def get(self, key: Tuple) -> Optional[Table]:
        """The table for a variant key, or None."""
        return self.tables.get(key)

    def create(
        self, key: Tuple, goal: Term, indicator: Indicator, depth: int
    ) -> Table:
        """Register a fresh, empty table for a new call variant."""
        table = Table(key, goal, indicator, depth)
        self.tables[key] = table
        return table

    def discard(self, table: Table) -> None:
        """Remove a (failed, incomplete) table from the store."""
        self.tables.pop(table.key, None)

    def completed(self) -> List[Table]:
        """All complete tables, in no particular order."""
        return [table for table in self.tables.values() if table.complete]

    def __len__(self) -> int:
        return len(self.tables)
