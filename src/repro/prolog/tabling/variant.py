"""Canonical call-variant keys for the table store.

Two calls are *variants* when they are identical up to a consistent
renaming of unbound variables — ``path(X, a)`` and ``path(Y, a)`` name
the same table, while ``path(a, X)`` names a different one. The key is
a nested tuple mirroring the term structure with every distinct unbound
variable replaced by its first-occurrence index (left-to-right), so it
is hashable, order-insensitive to variable identity, and stable across
runs.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..terms import Atom, Struct, Term, Var, deref, is_number

__all__ = ["variant_key"]


def variant_key(term: Term) -> Tuple:
    """The canonical, hashable variant key of a (dereferenced) term.

    Unbound variables are numbered by first occurrence, so any two
    variants of the same call map to the same key.
    """
    numbering: Dict[int, int] = {}

    def canonical(item: Term) -> Tuple:
        item = deref(item)
        if isinstance(item, Var):
            return ("v", numbering.setdefault(id(item), len(numbering)))
        if is_number(item):
            # Distinguish 1 from 1.0 the way term ordering does.
            return ("n", float(item), 0 if isinstance(item, float) else 1)
        if isinstance(item, Atom):
            return ("a", item.name)
        assert isinstance(item, Struct)
        return (
            "s",
            item.name,
            item.arity,
            tuple(canonical(argument) for argument in item.args),
        )

    return canonical(term)
