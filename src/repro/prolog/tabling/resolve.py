"""Tabled resolution: the variant-table fixpoint driver.

``solve_tabled`` replaces ``Engine._solve_user`` for tabled predicates.
The first call to a new variant becomes the *leader* of an
:class:`~.store.Evaluation`; its producer pass runs the predicate's
clauses with ``_solve_user`` and snapshots every solution into the
table (deduplicated by variant key, kept in first-derivation order).
Nested tabled calls inside that pass either

* hit a **complete** table — answers stream straight out;
* hit an **incomplete** table (a back edge, e.g. left recursion) —
  the answers found *so far* stream out, and the consuming producer
  records how many it saw so it is re-run once the table grows;
* **miss** — a new table joins the same evaluation and is produced
  eagerly, bottom-up; if it read no incomplete table it completes
  immediately (the common acyclic case, giving one pass per variant).

The leader then iterates: any table whose recorded consumptions grew is
re-produced, until no table needs another pass (the semi-naive style
worklist — answers grow monotonically, so this is a least fixpoint).
Finally every remaining variant is marked complete.

Stratification: negation as failure may not consume an incomplete
table — ``engine._negation_depth`` is compared against the depth at
which the evaluation started, and a violation raises the typed
:class:`~repro.errors.IncompleteTableError` instead of returning an
unsound answer set.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ...errors import IncompleteTableError
from ...observability.events import TableEvent
from ...robustness import faults
from ..terms import Term, rename_term, term_is_ground
from ..unify import unify
from .store import Evaluation, Table
from .variant import variant_key

__all__ = ["solve_tabled"]

Indicator = Tuple[str, int]


def solve_tabled(
    engine, goal: Term, indicator: Indicator, depth: int
) -> Iterator[None]:
    """Yield once per answer of a tabled ``goal``, memoizing by variant.

    Dispatch target of ``Engine.solve_goal`` for predicates named in
    ``:- table`` directives (or all user predicates under
    ``table_all``). Left-recursive definitions terminate; answers come
    back in first-derivation order, deduplicated.
    """
    store = engine.tables
    store.sync(engine.database.generation)
    key = variant_key(goal)
    table = store.get(key)
    bus = engine.events

    if table is not None:
        engine.metrics.record_table_hit()
        if bus is not None:
            bus.emit(TableEvent("hit", indicator, len(table.answers)))
        if table.complete:
            yield from _stream_complete(engine, goal, table)
            return
        # Incomplete: a back edge into the active evaluation.
        evaluation = engine._table_evaluation
        if (
            evaluation is not None
            and engine._negation_depth > evaluation.negation_floor
        ):
            raise IncompleteTableError(indicator)
        yield from _stream_live(engine, goal, table)
        return

    engine.metrics.record_table_miss()
    if bus is not None:
        bus.emit(TableEvent("miss", indicator, 0))

    evaluation = engine._table_evaluation
    if evaluation is not None:
        # A new variant inside a running evaluation: produce it eagerly
        # (bottom-up), complete it at once when it saw nothing
        # incomplete, and let the leader's worklist re-run it otherwise.
        table = store.create(key, rename_term(goal, {}), indicator, depth)
        evaluation.variants.append(table)
        _produce(engine, table)
        if not table.consumed:
            _complete(engine, table)
        if table.complete:
            yield from _stream_complete(engine, goal, table)
        else:
            yield from _stream_live(engine, goal, table)
        return

    # Leader: open an evaluation, run the fixpoint, then stream.
    evaluation = Evaluation(engine._negation_depth)
    engine._table_evaluation = evaluation
    table = store.create(key, rename_term(goal, {}), indicator, depth)
    evaluation.variants.append(table)
    try:
        _fixpoint(engine, evaluation)
    except BaseException:
        # Unwind cleanly: half-built tables are unsound; drop them.
        for variant in evaluation.variants:
            if not variant.complete:
                store.discard(variant)
        raise
    finally:
        engine._table_evaluation = None
    yield from _stream_complete(engine, goal, table)


def _fixpoint(engine, evaluation: Evaluation) -> None:
    """Run production passes until no table needs another one, then
    mark every variant of the evaluation complete.

    Budget/deadline checks run once per worklist round (production
    passes inside the round are already charged call-by-call); an
    exhaustion here unwinds through the leader's discard handler, so no
    half-built table survives the abort.
    """
    budget = engine._active_budget
    while True:
        if budget is not None:
            budget.check("tabling.fixpoint")
        pending = [table for table in evaluation.variants if table.needs_pass()]
        if not pending:
            break
        for table in pending:
            _produce(engine, table)
    if faults.ACTIVE is not None:
        faults.ACTIVE.hit("tabling.complete")
    for table in evaluation.variants:
        if not table.complete:
            _complete(engine, table)


def _produce(engine, table: Table) -> None:
    """One production pass: run the predicate's clauses over a fresh
    copy of the canonical goal, snapshotting each new answer."""
    table.passes += 1
    table.consumed.clear()
    engine._table_producing.append(table)
    mark = engine.trail.mark()
    goal = rename_term(table.goal, {})
    bus = engine.events
    try:
        for _ in engine._solve_user(goal, table.indicator, table.depth):
            answer = rename_term(goal, {})
            answer_key = variant_key(answer)
            if answer_key not in table.answer_keys:
                table.answer_keys.add(answer_key)
                table.answers.append(answer)
                table.answers_ground.append(term_is_ground(answer))
                engine.metrics.record_table_answer()
                if bus is not None:
                    bus.emit(
                        TableEvent(
                            "answer_added", table.indicator, len(table.answers)
                        )
                    )
    finally:
        engine.trail.undo_to(mark)
        engine._table_producing.pop()


def _complete(engine, table: Table) -> None:
    """Seal a table: no further answers can ever be added."""
    table.complete = True
    table.consumed.clear()
    engine.metrics.record_table_complete()
    if engine.events is not None:
        engine.events.emit(
            TableEvent("complete", table.indicator, len(table.answers))
        )


def _stream_complete(engine, goal: Term, table: Table) -> Iterator[None]:
    """Yield each stored answer that unifies with the call.

    Ground answers (the common case — tables memoize resolved calls)
    unify against the stored term directly; only answers that still
    contain variables pay a rename per read.
    """
    trail = engine.trail
    occurs = engine.occurs_check
    ground_flags = table.answers_ground
    for index, answer in enumerate(table.answers):
        mark = trail.mark()
        candidate = answer if ground_flags[index] else rename_term(answer, {})
        if unify(goal, candidate, trail, occurs_check=occurs):
            yield
        trail.undo_to(mark)


def _stream_live(engine, goal: Term, table: Table) -> Iterator[None]:
    """Yield answers from a still-growing table, chasing its tail.

    When the stored answers run out before the table is complete, the
    enclosing producer (if any) records how many answers this read saw,
    so the leader's worklist re-runs it after the table grows.
    """
    trail = engine.trail
    index = 0
    while True:
        if index >= len(table.answers):
            if table.complete:
                return
            producing = engine._table_producing
            if producing:
                producing[-1].note_consumption(table, index)
            return
        answer = table.answers[index]
        candidate = (
            answer if table.answers_ground[index] else rename_term(answer, {})
        )
        index += 1
        mark = trail.mark()
        if unify(goal, candidate, trail, occurs_check=engine.occurs_check):
            yield
        trail.undo_to(mark)
