"""Markov-model statistics for calls to tabled predicates.

The paper's cost model (§VI) assumes every goal is re-solved from
scratch; a tabled predicate breaks that assumption in a predictable
way. The *first* call to a variant pays the untabled derivation cost;
every later variant hit is a cheap deterministic stream — one call plus
one unification per stored answer. Over a workload the expected cost of
a tabled call is the mixture of the two, weighted by how often the call
re-hits an existing table (``recall_weight``).

The reorderer uses :func:`tabled_stats` (via
:class:`~repro.markov.predicate_model.CostModel`) so that goal orders
shift when tabling is on: an expensive recursive subgoal whose table
amortizes becomes attractive to call early, exactly the effect
Ledeniov & Markovitch exploit with cached subgoal statistics.
"""

from __future__ import annotations

from ...markov.goal_stats import GoalStats

__all__ = ["DEFAULT_RECALL_WEIGHT", "TABLED_RECURSIVE_STATS", "tabled_stats"]

#: Default fraction of calls expected to hit an existing table. The
#: paper's motivating workloads (ancestry, graph closure) re-issue the
#: same subgoals heavily, so the default leans toward the re-call cost.
DEFAULT_RECALL_WEIGHT = 0.75

#: Stats used for a *recursive* occurrence of a tabled predicate inside
#: its own cost evaluation: a back edge consumes stored answers instead
#: of re-deriving, so it costs a couple of calls, not a new derivation.
TABLED_RECURSIVE_STATS = GoalStats(cost=2.0, solutions=1.0, prob=0.5)


def tabled_stats(
    first_call: GoalStats, recall_weight: float = DEFAULT_RECALL_WEIGHT
) -> GoalStats:
    """Amortize first-call vs. re-call cost for a tabled predicate.

    ``first_call`` is the model's untabled estimate. A re-call costs
    one call plus one answer-unification per expected solution; the
    returned cost is the ``recall_weight`` mixture of the two. Solution
    count and success probability are unchanged — tabling dedups
    answers but the model has no duplicate estimate to subtract.
    """
    if not 0.0 <= recall_weight <= 1.0:
        raise ValueError(f"recall_weight out of range: {recall_weight}")
    recall_cost = 1.0 + first_call.solutions
    cost = (1.0 - recall_weight) * first_call.cost + recall_weight * recall_cost
    return GoalStats(
        cost=max(cost, 1.0),
        solutions=first_call.solutions,
        prob=first_call.prob,
    )
