"""Variant-based answer tabling for the Prolog engine.

Tabling memoizes the answers of designated predicates per *call
variant* (the call up to renaming of unbound variables), which

* makes left-recursive formulations terminate — ``path(X,Y) :-
  path(X,Z), edge(Z,Y).`` under ``:- table path/2`` computes a least
  fixpoint instead of looping;
* collapses the repeated subgoal derivations that dominate the paper's
  motivating workloads (ancestry, graph closure) — on a chain graph,
  transitive closure drops from Θ(n²) resolution calls to O(n).

Layout:

* :mod:`.variant` — canonical, hashable call-variant keys;
* :mod:`.store`   — :class:`Table` / :class:`TableStore` /
  :class:`Evaluation`: answers plus producer/consumer bookkeeping;
* :mod:`.resolve` — :func:`solve_tabled`, the worklist fixpoint the
  engine dispatches tabled predicates to;
* :mod:`.cost`    — amortized :class:`~repro.markov.goal_stats.GoalStats`
  for the reorderer's cost model.

Predicates are declared tabled with ``:- table name/arity.`` (also the
conjunction and list forms), or wholesale with the engine's
``table_all`` switch (CLI ``--table-all``). Restrictions and semantics
are documented in docs/TABLING.md.
"""

from .resolve import solve_tabled
from .store import Evaluation, Table, TableStore
from .variant import variant_key

#: Names served lazily from :mod:`.cost` (PEP 562): that module sits on
#: the Markov layer, which transitively imports the engine — importing
#: it here eagerly would close a cycle through ``repro.prolog.engine``.
_COST_EXPORTS = ("DEFAULT_RECALL_WEIGHT", "TABLED_RECURSIVE_STATS", "tabled_stats")


def __getattr__(name: str):
    """Resolve the cost-model exports on first access."""
    if name in _COST_EXPORTS:
        from . import cost

        return getattr(cost, name)
    raise AttributeError(name)

__all__ = [
    "DEFAULT_RECALL_WEIGHT",
    "TABLED_RECURSIVE_STATS",
    "Evaluation",
    "Table",
    "TableStore",
    "solve_tabled",
    "tabled_stats",
    "variant_key",
]
