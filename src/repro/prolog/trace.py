"""The classic four-port execution tracer (call / exit / redo / fail).

Byrd's box model: every goal is entered (``call``), may succeed
(``exit``), may be re-entered on backtracking (``redo``), and finally
fails out (``fail``). The engine invokes a tracer callback at each
port; :class:`CollectingTracer` is the standard consumer, rendering
goals *with their bindings at event time* — so an ``exit`` line shows
the answer the goal just produced.

Tracing is how the reproduction was debugged, and it is part of the
substrate a Prolog user expects; it also doubles as an execution-order
oracle in the tests (the reordered program's trace shows the new goal
order directly).

Retention is a ring buffer (most recent ``limit`` events kept,
eviction counted) rather than the historical first-``limit``-then-stop
policy: when something goes wrong deep into a long run, the *end* of
the trace is the part worth keeping. Truncation stays explicit either
way — ``truncated``/``dropped`` and the :meth:`format` overflow footer
make a cut trace impossible to mistake for a complete one.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..observability.streaming.ring import RingBuffer
from .terms import Term
from .writer import term_to_string

__all__ = ["TraceEvent", "CollectingTracer", "Tracer"]

#: Tracer callback signature: (port, depth, goal term).
Tracer = Callable[[str, int, Term], None]

PORTS = ("call", "exit", "redo", "fail")


class TraceEvent:
    """One port crossing, with the goal rendered at event time."""

    __slots__ = ("port", "depth", "goal_text")

    def __init__(self, port: str, depth: int, goal_text: str):
        self.port = port
        self.depth = depth
        self.goal_text = goal_text

    def format(self) -> str:
        """One indented trace line."""
        return f"{'  ' * self.depth}{self.port:<5} {self.goal_text}"

    def __repr__(self) -> str:
        return f"TraceEvent({self.port!r}, {self.depth!r}, {self.goal_text!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceEvent)
            and self.port == other.port
            and self.depth == other.depth
            and self.goal_text == other.goal_text
        )

    def __hash__(self) -> int:
        return hash((self.port, self.depth, self.goal_text))


class CollectingTracer:
    """Keeps the most recent ``limit`` events; *counts* the overflow.

    Backed by
    :class:`~repro.observability.streaming.ring.RingBuffer`, so a
    tracer left attached for hours still holds the latest window
    instead of a stale prefix. Truncation is explicit:
    ``truncated``/``dropped`` expose whether and how much of the trace
    is missing, and :meth:`format` appends an overflow line — so a
    trace-based test oracle can never mistake a truncated trace for a
    complete one.
    """

    def __init__(
        self,
        limit: int = 10_000,
        only_predicates: Optional[set] = None,
    ):
        self.limit = limit
        #: Optional filter: only record goals of these predicate names.
        self.only_predicates = only_predicates
        self._ring: RingBuffer = RingBuffer(limit)

    def __call__(self, port: str, depth: int, goal: Term) -> None:
        """Record one port crossing (the engine's tracer callback)."""
        if self.only_predicates is not None:
            from .terms import functor_indicator

            try:
                name, _ = functor_indicator(goal)
            except TypeError:
                return
            if name not in self.only_predicates:
                return
        self._ring.append(TraceEvent(port, depth, term_to_string(goal)))

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return self._ring.to_list()

    @property
    def dropped(self) -> int:
        """Events that matched the filter but were evicted past ``limit``."""
        return self._ring.dropped

    @property
    def truncated(self) -> bool:
        """Did any event overflow the limit?"""
        return self._ring.truncated

    def format(self) -> str:
        """The whole trace as indented lines (overflow surfaced)."""
        text = "\n".join(event.format() for event in self._ring)
        if self.truncated:
            overflow = f"... {self.dropped} more event(s) dropped (limit {self.limit})"
            text = f"{text}\n{overflow}" if text else overflow
        return text

    def ports(self) -> List[str]:
        """Just the port sequence (handy for assertions)."""
        return [event.port for event in self._ring]

    def lines(self, port: Optional[str] = None) -> List[str]:
        """Goal texts of all events, optionally filtered by port."""
        return [
            event.goal_text
            for event in self._ring
            if port is None or event.port == port
        ]
