"""The classic four-port execution tracer (call / exit / redo / fail).

Byrd's box model: every goal is entered (``call``), may succeed
(``exit``), may be re-entered on backtracking (``redo``), and finally
fails out (``fail``). The engine invokes a tracer callback at each
port; :class:`CollectingTracer` is the standard consumer, rendering
goals *with their bindings at event time* — so an ``exit`` line shows
the answer the goal just produced.

Tracing is how the reproduction was debugged, and it is part of the
substrate a Prolog user expects; it also doubles as an execution-order
oracle in the tests (the reordered program's trace shows the new goal
order directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .terms import Term
from .writer import term_to_string

__all__ = ["TraceEvent", "CollectingTracer", "Tracer"]

#: Tracer callback signature: (port, depth, goal term).
Tracer = Callable[[str, int, Term], None]

PORTS = ("call", "exit", "redo", "fail")


@dataclass(frozen=True)
class TraceEvent:
    """One port crossing, with the goal rendered at event time."""

    port: str
    depth: int
    goal_text: str

    def format(self) -> str:
        """One indented trace line."""
        return f"{'  ' * self.depth}{self.port:<5} {self.goal_text}"


@dataclass
class CollectingTracer:
    """Collects up to ``limit`` events, then *counts* the overflow.

    Truncation is explicit: ``truncated``/``dropped`` expose whether and
    how much of the trace is missing, and :meth:`format` appends an
    overflow line — so a trace-based test oracle can never mistake a
    truncated trace for a complete one.
    """

    limit: int = 10_000
    events: List[TraceEvent] = field(default_factory=list)
    #: Optional filter: only record goals of these predicate names.
    only_predicates: Optional[set] = None
    #: Events that matched the filter but arrived past ``limit``.
    dropped: int = 0

    def __call__(self, port: str, depth: int, goal: Term) -> None:
        if self.only_predicates is not None:
            from .terms import functor_indicator

            try:
                name, _ = functor_indicator(goal)
            except TypeError:
                return
            if name not in self.only_predicates:
                return
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(port, depth, term_to_string(goal)))

    @property
    def truncated(self) -> bool:
        """Did any event overflow the limit?"""
        return self.dropped > 0

    def format(self) -> str:
        """The whole trace as indented lines (overflow surfaced)."""
        text = "\n".join(event.format() for event in self.events)
        if self.truncated:
            overflow = f"... {self.dropped} more event(s) dropped (limit {self.limit})"
            text = f"{text}\n{overflow}" if text else overflow
        return text

    def ports(self) -> List[str]:
        """Just the port sequence (handy for assertions)."""
        return [event.port for event in self.events]

    def lines(self, port: Optional[str] = None) -> List[str]:
        """Goal texts of all events, optionally filtered by port."""
        return [
            event.goal_text
            for event in self.events
            if port is None or event.port == port
        ]
