"""Pretty-printer: terms and clauses back to valid Prolog text.

The reordering system is source-to-source, so its output must re-read
under :mod:`repro.prolog.reader`. The writer round-trips everything the
parser accepts: operators are re-emitted in operator notation with
minimal parenthesisation, lists in ``[a, b | T]`` notation, and atoms are
quoted when their spelling requires it.

Two styles are offered:

* :func:`term_to_string` — one term on one line;
* :func:`clause_to_string` / :func:`program_to_string` — clauses with the
  conventional ``head :-\\n    goal,\\n    goal.`` layout used by the
  paper's Fig. 6/7 listings.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .reader.operators import MAX_PRIORITY, OperatorTable, standard_operators
from .terms import (
    Atom,
    Struct,
    Term,
    Var,
    deref,
    is_list_cell,
    is_number,
)

__all__ = ["term_to_string", "clause_to_string", "program_to_string", "TermWriter"]

_UNQUOTED_SOLO = {"[]", "{}", "!", ";", ",", "|"}
_SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&$")


def _atom_needs_quotes(name: str) -> bool:
    if not name:
        return True
    if name in _UNQUOTED_SOLO:
        return False
    if name[0].islower() and all(c.isalnum() or c == "_" for c in name):
        return False
    if all(c in _SYMBOL_CHARS for c in name):
        return False
    return True


def _quote_atom(name: str) -> str:
    escaped = name.replace("\\", "\\\\").replace("'", "\\'").replace("\n", "\\n")
    return f"'{escaped}'"


class TermWriter:
    """Stateful writer: remembers variable display names per clause."""

    def __init__(self, operators: Optional[OperatorTable] = None):
        self.operators = operators or standard_operators()
        self._var_names: Dict[int, str] = {}
        self._used_names: set = set()

    def reset_variable_names(self) -> None:
        """Forget variable display names (call between clauses)."""
        self._var_names.clear()
        self._used_names.clear()

    def _variable_name(self, var: Var) -> str:
        name = self._var_names.get(id(var))
        if name is not None:
            return name
        candidate = var.name if var.name and var.name != "_" else "_"
        if candidate == "_" or not (candidate[0].isupper() or candidate[0] == "_"):
            candidate = f"_{len(self._var_names)}"
        base = candidate
        suffix = 1
        while candidate in self._used_names:
            candidate = f"{base}{suffix}"
            suffix += 1
        self._var_names[id(var)] = candidate
        self._used_names.add(candidate)
        return candidate

    def atom_text(self, name: str) -> str:
        """The atom's source spelling, quoted when necessary."""
        return _quote_atom(name) if _atom_needs_quotes(name) else name

    # -- term rendering -------------------------------------------------

    def write(self, term: Term, max_priority: int = MAX_PRIORITY) -> str:
        """Render ``term``, parenthesising if its priority exceeds the bound."""
        term = deref(term)
        if isinstance(term, Var):
            return self._variable_name(term)
        if is_number(term):
            if isinstance(term, int) and term < 0:
                text = str(term)
                return f"({text})" if max_priority < 200 else text
            if isinstance(term, float) and term < 0:
                text = repr(term)
                return f"({text})" if max_priority < 200 else text
            return repr(term) if isinstance(term, float) else str(term)
        if isinstance(term, Atom):
            return self.atom_text(term.name)
        assert isinstance(term, Struct)
        if is_list_cell(term):
            return self._write_list(term)
        if term.name == "{}" and term.arity == 1:
            return "{" + self.write(term.args[0], MAX_PRIORITY) + "}"
        rendered = self._write_operator(term, max_priority)
        if rendered is not None:
            return rendered
        args = ", ".join(self.write(a, 999) for a in term.args)
        return f"{self.atom_text(term.name)}({args})"

    def _write_list(self, term: Struct) -> str:
        parts: List[str] = []
        current: Term = term
        while True:
            current = deref(current)
            if is_list_cell(current):
                parts.append(self.write(current.args[0], 999))
                current = current.args[1]
                continue
            if isinstance(current, Atom) and current.name == "[]":
                return "[" + ", ".join(parts) + "]"
            return "[" + ", ".join(parts) + " | " + self.write(current, 999) + "]"

    def _write_operator(self, term: Struct, max_priority: int) -> Optional[str]:
        if term.arity == 2:
            definition = self.operators.infix(term.name)
            if definition is None:
                return None
            left = self.write(term.args[0], definition.left_max)
            right = self.write(term.args[1], definition.right_max)
            if term.name == ",":
                text = f"{left}, {right}"
            else:
                text = f"{left} {term.name} {right}"
            if definition.priority > max_priority:
                return f"({text})"
            return text
        if term.arity == 1:
            definition = self.operators.prefix(term.name)
            if definition is None:
                return None
            operand = self.write(term.args[0], definition.right_max)
            text = f"{term.name} {operand}"
            if definition.priority > max_priority:
                return f"({text})"
            return text
        return None


def term_to_string(term: Term, operators: Optional[OperatorTable] = None) -> str:
    """Render one term on one line."""
    return TermWriter(operators).write(term)


def clause_to_string(
    clause: Term, operators: Optional[OperatorTable] = None, indent: str = "    "
) -> str:
    """Render a clause with the body laid out one goal per line."""
    writer = TermWriter(operators)
    clause = deref(clause)
    if isinstance(clause, Struct) and clause.name == ":-" and clause.arity == 2:
        head, body = clause.args
        head_text = writer.write(head, 1199)
        goals: List[str] = []
        current = deref(body)
        while isinstance(current, Struct) and current.name == "," and current.arity == 2:
            goals.append(writer.write(current.args[0], 999))
            current = deref(current.args[1])
        goals.append(writer.write(current, 999))
        body_text = (",\n" + indent).join(goals)
        return f"{head_text} :-\n{indent}{body_text}."
    if isinstance(clause, Struct) and clause.name == ":-" and clause.arity == 1:
        return f":- {writer.write(clause.args[0], 1199)}."
    return f"{writer.write(clause, 1199)}."


def program_to_string(
    clauses, operators: Optional[OperatorTable] = None
) -> str:
    """Render a sequence of clause terms as a Prolog program."""
    return "\n".join(clause_to_string(c, operators) for c in clauses) + "\n"
