"""Term construction and inspection: ``functor/3``, ``arg/3``, ``=../2``,
``copy_term/2``.

``functor/3`` is the paper's worked example of a builtin that *demands*
modes (§V-B): called with neither a whole term nor a name+arity it raises
an :class:`~repro.errors.InstantiationError`, exactly as SB-Prolog gives
a run-time error.
"""

from __future__ import annotations

from typing import Iterator

from ...errors import InstantiationError, TypeErrorProlog
from ..terms import (
    Atom,
    Struct,
    Term,
    Var,
    copy_term,
    deref,
    is_number,
    list_to_python,
    make_list,
)
from ..unify import unify
from . import builtin


@builtin("functor", 3)
def _functor(engine, args, depth, frame) -> Iterator[None]:
    """``functor(Term, Name, Arity)`` — decompose or construct a term."""
    term = deref(args[0])
    mark = engine.trail.mark()
    if not isinstance(term, Var):
        if isinstance(term, Struct):
            name: Term = Atom(term.name)
            arity = term.arity
        elif isinstance(term, Atom):
            name, arity = term, 0
        else:  # number
            name, arity = term, 0
        if unify(args[1], name, engine.trail) and unify(args[2], arity, engine.trail):
            yield
        engine.trail.undo_to(mark)
        return
    name_term, arity_term = deref(args[1]), deref(args[2])
    if isinstance(name_term, Var) or isinstance(arity_term, Var):
        raise InstantiationError("functor/3: insufficiently instantiated")
    if not isinstance(arity_term, int):
        raise TypeErrorProlog("integer", arity_term)
    if arity_term == 0:
        built: Term = name_term
    else:
        if not isinstance(name_term, Atom):
            raise TypeErrorProlog("atom", name_term)
        built = Struct(name_term.name, tuple(Var() for _ in range(arity_term)))
    if unify(term, built, engine.trail):
        yield
    engine.trail.undo_to(mark)


@builtin("arg", 3)
def _arg(engine, args, depth, frame) -> Iterator[None]:
    """``arg(N, Term, Arg)`` — the Nth argument of a compound term."""
    index = deref(args[0])
    term = deref(args[1])
    if isinstance(term, Var):
        raise InstantiationError("arg/3: second argument unbound")
    if not isinstance(term, Struct):
        raise TypeErrorProlog("compound", term)
    if isinstance(index, Var):
        # Backtrack over all argument positions.
        for position in range(1, term.arity + 1):
            mark = engine.trail.mark()
            if unify(index, position, engine.trail) and unify(
                args[2], term.args[position - 1], engine.trail
            ):
                yield
            engine.trail.undo_to(mark)
        return
    if not isinstance(index, int):
        raise TypeErrorProlog("integer", index)
    if 1 <= index <= term.arity:
        mark = engine.trail.mark()
        if unify(args[2], term.args[index - 1], engine.trail):
            yield
        engine.trail.undo_to(mark)


@builtin("=..", 2)
def _univ(engine, args, depth, frame) -> Iterator[None]:
    """``Term =.. List`` — between a term and [Name | Args]."""
    term = deref(args[0])
    mark = engine.trail.mark()
    if not isinstance(term, Var):
        if isinstance(term, Struct):
            listing = make_list([Atom(term.name), *term.args])
        else:
            listing = make_list([term])
        if unify(args[1], listing, engine.trail):
            yield
        engine.trail.undo_to(mark)
        return
    try:
        items = list_to_python(args[1])
    except ValueError:
        raise InstantiationError("=../2: list insufficiently instantiated")
    if not items:
        raise TypeErrorProlog("non-empty list", args[1])
    functor = deref(items[0])
    if len(items) == 1:
        if isinstance(functor, Var):
            raise InstantiationError("=../2: unbound functor")
        built: Term = functor
    else:
        if not isinstance(functor, Atom):
            raise TypeErrorProlog("atom", functor)
        built = Struct(functor.name, tuple(items[1:]))
    if unify(term, built, engine.trail):
        yield
    engine.trail.undo_to(mark)


@builtin("copy_term", 2)
def _copy_term(engine, args, depth, frame) -> Iterator[None]:
    """``copy_term(Term, Copy)`` — Copy is Term with fresh variables."""
    mark = engine.trail.mark()
    if unify(args[1], copy_term(args[0]), engine.trail):
        yield
    engine.trail.undo_to(mark)
