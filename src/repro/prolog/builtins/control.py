"""Meta-call and negation builtins.

``not/1`` and ``\\+/1`` implement negation as failure; the paper treats
them as *semifixed in all their variables* (§IV-D-5): whether the
negation succeeds depends on how instantiated its argument is, so the
reorderer pins the instantiation state of every variable appearing in a
negated goal.
"""

from __future__ import annotations

from typing import Iterator

from ...errors import InstantiationError, TypeErrorProlog
from ..terms import Struct, Var, deref, is_callable_term
from . import builtin


def _resolve_goal(term):
    goal = deref(term)
    if isinstance(goal, Var):
        raise InstantiationError("meta-call on unbound goal")
    if not is_callable_term(goal):
        raise TypeErrorProlog("callable", goal)
    return goal


@builtin("call", 1)
def _call(engine, args, depth, frame) -> Iterator[None]:
    """``call(Goal)`` — solve Goal; cut inside is local to the call."""
    goal = _resolve_goal(args[0])
    yield from engine.solve_goal(goal, depth, engine.new_frame())


def _register_call_n(extra: int) -> None:
    @builtin("call", 1 + extra)
    def _call_n(engine, args, depth, frame) -> Iterator[None]:
        goal = _resolve_goal(args[0])
        appended = tuple(args[1:])
        if isinstance(goal, Struct):
            goal = Struct(goal.name, goal.args + appended)
        else:
            goal = Struct(goal.name, appended)
        yield from engine.solve_goal(goal, depth, engine.new_frame())

    _call_n.__doc__ = f"``call(Goal, A1..A{extra})`` — call with extra arguments."


for _extra in range(1, 6):
    _register_call_n(_extra)


def _negation(engine, args, depth) -> Iterator[None]:
    goal = _resolve_goal(args[0])
    mark = engine.trail.mark()
    succeeded = False
    # Track negation nesting so the tabling subsystem can reject
    # negation that reaches into an incomplete table (stratification).
    engine._negation_depth += 1
    try:
        for _ in engine.solve_goal(goal, depth, engine.new_frame()):
            succeeded = True
            break
    finally:
        engine._negation_depth -= 1
    engine.trail.undo_to(mark)
    if not succeeded:
        yield


@builtin("\\+", 1, semifixed=True)
def _naf(engine, args, depth, frame) -> Iterator[None]:
    """``\\+ Goal`` — negation as failure."""
    yield from _negation(engine, args, depth)


@builtin("not", 1, semifixed=True)
def _not(engine, args, depth, frame) -> Iterator[None]:
    """``not(Goal)`` — DEC-10 spelling of negation as failure."""
    yield from _negation(engine, args, depth)


@builtin("once", 1, semifixed=True)
def _once(engine, args, depth, frame) -> Iterator[None]:
    """``once(Goal)`` — the first solution of Goal only."""
    goal = _resolve_goal(args[0])
    for _ in engine.solve_goal(goal, depth, engine.new_frame()):
        yield
        return


@builtin("forall", 2, semifixed=True)
def _forall(engine, args, depth, frame) -> Iterator[None]:
    """``forall(Cond, Action)`` — every Cond solution satisfies Action."""
    condition = _resolve_goal(args[0])
    action = _resolve_goal(args[1])
    mark = engine.trail.mark()
    holds = True
    # forall(C, A) is \+ (C, \+ A): a negation context for tabling's
    # stratification check, like _negation above.
    engine._negation_depth += 1
    try:
        for _ in engine.solve_goal(condition, depth, engine.new_frame()):
            satisfied = False
            for _ in engine.solve_goal(action, depth, engine.new_frame()):
                satisfied = True
                break
            if not satisfied:
                holds = False
                break
    finally:
        engine._negation_depth -= 1
    engine.trail.undo_to(mark)
    if holds:
        yield
