"""Builtin predicate registry.

Each builtin is a Python generator function ``fn(engine, args, depth,
frame)`` yielding once per solution. Registration carries the two flags
the static analyses need (paper §IV):

* ``side_effect`` — the builtin is *fixed*: it cannot be undone by
  backtracking (I/O predicates), so it is immobile and contaminates its
  ancestors;
* ``semifixed`` — the builtin's success depends on the instantiation
  state of its arguments (``var/1``, ``nonvar/1``, negation), so the
  modes of its *culprit* arguments must be preserved by reordering.

The control constructs ``','``, ``';'``, ``'->'`` and ``!`` are handled
directly by the engine (they need the cut frame) and are not in this
registry, but :func:`is_control` knows about them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

__all__ = [
    "Builtin",
    "BUILTINS",
    "builtin",
    "lookup",
    "is_builtin",
    "is_control",
    "CONTROL_INDICATORS",
]

Indicator = Tuple[str, int]

#: Constructs the engine interprets structurally rather than via the registry.
CONTROL_INDICATORS = {
    (",", 2),
    (";", 2),
    ("->", 2),
    ("!", 0),
    ("true", 0),
    ("fail", 0),
    ("false", 0),
}


@dataclass(frozen=True)
class Builtin:
    """A registered builtin predicate."""

    name: str
    arity: int
    fn: Callable
    side_effect: bool = False
    semifixed: bool = False

    @property
    def indicator(self) -> Indicator:
        return (self.name, self.arity)


BUILTINS: Dict[Indicator, Builtin] = {}


def builtin(
    name: str, arity: int, side_effect: bool = False, semifixed: bool = False
) -> Callable:
    """Decorator registering a builtin implementation."""

    def decorate(fn: Callable) -> Callable:
        key = (name, arity)
        BUILTINS[key] = Builtin(name, arity, fn, side_effect, semifixed)
        return fn

    return decorate


def lookup(indicator: Indicator) -> Optional[Builtin]:
    """The registered builtin for an indicator, if any."""
    return BUILTINS.get(indicator)


def is_builtin(indicator: Indicator) -> bool:
    """Is the indicator a builtin or engine-level control construct?"""
    return indicator in BUILTINS or indicator in CONTROL_INDICATORS


def is_control(indicator: Indicator) -> bool:
    """Is the indicator handled structurally by the engine?"""
    return indicator in CONTROL_INDICATORS


# Importing the implementation modules populates the registry.
from . import arith  # noqa: E402,F401
from . import atoms  # noqa: E402,F401
from . import compare  # noqa: E402,F401
from . import control  # noqa: E402,F401
from . import exceptions  # noqa: E402,F401
from . import io  # noqa: E402,F401
from . import lists  # noqa: E402,F401
from . import solutions  # noqa: E402,F401
from . import terms_bi  # noqa: E402,F401
from . import typetests  # noqa: E402,F401
