"""Type-testing builtins (``var/1``, ``atom/1``, ...).

These are the canonical *semifixed* predicates of paper §IV-C: their
success depends entirely on the instantiation state of their argument,
so the reorderer must not move goals that (de)instantiate a tested
variable across them.
"""

from __future__ import annotations

from typing import Iterator

from ..terms import Atom, Struct, Var, deref, is_number, is_proper_list, term_is_ground
from . import builtin


def _type_test(name: str, accept, semifixed: bool = True) -> None:
    @builtin(name, 1, semifixed=semifixed)
    def _test(engine, args, depth, frame, _accept=accept) -> Iterator[None]:
        if _accept(deref(args[0])):
            yield

    _test.__doc__ = f"``{name}(X)`` type test."


_type_test("var", lambda t: isinstance(t, Var))
_type_test("nonvar", lambda t: not isinstance(t, Var))
_type_test("atom", lambda t: isinstance(t, Atom))
_type_test("number", is_number)
_type_test("integer", lambda t: isinstance(t, int) and not isinstance(t, bool))
_type_test("float", lambda t: isinstance(t, float))
_type_test("atomic", lambda t: isinstance(t, Atom) or is_number(t))
_type_test("compound", lambda t: isinstance(t, Struct))
_type_test("callable", lambda t: isinstance(t, (Atom, Struct)))
_type_test("is_list", is_proper_list)
_type_test("ground", term_is_ground)
