"""Arithmetic: ``is/2`` and the numeric comparison predicates.

Evaluation follows DEC-10 conventions: ``/`` on two integers with an
exact quotient yields an integer in C-Prolog, but we follow the stricter
modern rule (``/`` is float unless both are ints and divide evenly is
NOT special-cased — integer division is ``//``). All benchmark programs
use only ``+``, ``-``, ``*``, ``//``, ``mod`` on integers, so the choice
does not affect any reproduced number.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, Union

from ...errors import ArithmeticErrorProlog, InstantiationError, TypeErrorProlog
from ..terms import Atom, Struct, Term, Var, deref, is_number
from ..unify import unify
from . import builtin

__all__ = ["evaluate"]

Number = Union[int, float]


def _int_args(name: str, left: Number, right: Number) -> tuple:
    if not isinstance(left, int) or not isinstance(right, int):
        raise ArithmeticErrorProlog(f"{name} requires integers")
    return left, right


def _div(left: Number, right: Number) -> Number:
    if right == 0:
        raise ArithmeticErrorProlog("division by zero")
    result = left / right
    return result


def _intdiv(left: Number, right: Number) -> int:
    left, right = _int_args("//", left, right)
    if right == 0:
        raise ArithmeticErrorProlog("division by zero")
    # DEC-10 // truncates toward zero.
    return int(left / right) if right != 0 and (left < 0) != (right < 0) else left // right


def _mod(left: Number, right: Number) -> int:
    left, right = _int_args("mod", left, right)
    if right == 0:
        raise ArithmeticErrorProlog("division by zero")
    return left % right


_BINARY: Dict[str, Callable[[Number, Number], Number]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _div,
    "//": _intdiv,
    "mod": _mod,
    "rem": lambda a, b: math.fmod(*_int_args("rem", a, b))
    if b != 0
    else (_ for _ in ()).throw(ArithmeticErrorProlog("division by zero")),
    "min": min,
    "max": max,
    "**": lambda a, b: float(a) ** float(b),
    "^": lambda a, b: a ** b,
    ">>": lambda a, b: _int_args(">>", a, b)[0] >> b,
    "<<": lambda a, b: _int_args("<<", a, b)[0] << b,
    "/\\": lambda a, b: _int_args("/\\", a, b)[0] & b,
    "\\/": lambda a, b: _int_args("\\/", a, b)[0] | b,
    "xor": lambda a, b: _int_args("xor", a, b)[0] ^ b,
    "gcd": lambda a, b: math.gcd(*_int_args("gcd", a, b)),
}

_UNARY: Dict[str, Callable[[Number], Number]] = {
    "-": lambda a: -a,
    "+": lambda a: a,
    "abs": abs,
    "sign": lambda a: (a > 0) - (a < 0),
    "sqrt": math.sqrt,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "atan": math.atan,
    "exp": math.exp,
    "log": math.log,
    "float": float,
    "integer": lambda a: int(a),
    "truncate": lambda a: int(a),
    "round": lambda a: int(round(a)),
    "floor": lambda a: math.floor(a),
    "ceiling": lambda a: math.ceil(a),
    "float_integer_part": lambda a: float(int(a)),
    "float_fractional_part": lambda a: a - int(a),
    "\\": lambda a: ~_int_args("\\", a, 0)[0],
    "msb": lambda a: _int_args("msb", a, 0)[0].bit_length() - 1,
}

_CONSTANTS: Dict[str, Number] = {
    "pi": math.pi,
    "e": math.e,
    "inf": math.inf,
    "epsilon": 2.220446049250313e-16,
    "max_tagged_integer": (1 << 60) - 1,
}


def evaluate(term: Term) -> Number:
    """Evaluate an arithmetic expression term to a Python number."""
    term = deref(term)
    if isinstance(term, Var):
        raise InstantiationError("arithmetic: unbound variable")
    if is_number(term):
        return term
    if isinstance(term, Atom):
        value = _CONSTANTS.get(term.name)
        if value is None:
            raise ArithmeticErrorProlog(f"unknown constant: {term.name}")
        return value
    if isinstance(term, Struct):
        if term.arity == 2:
            fn2 = _BINARY.get(term.name)
            if fn2 is not None:
                return fn2(evaluate(term.args[0]), evaluate(term.args[1]))
        if term.arity == 1:
            fn1 = _UNARY.get(term.name)
            if fn1 is not None:
                return fn1(evaluate(term.args[0]))
        raise ArithmeticErrorProlog(
            f"unknown arithmetic function: {term.name}/{term.arity}"
        )
    raise TypeErrorProlog("evaluable", term)


@builtin("is", 2)
def _is(engine, args, depth, frame) -> Iterator[None]:
    """``Result is Expression`` — evaluate and unify."""
    value = evaluate(args[1])
    mark = engine.trail.mark()
    if unify(args[0], value, engine.trail):
        yield
    engine.trail.undo_to(mark)


def _comparison(name: str, test: Callable[[Number, Number], bool]) -> None:
    @builtin(name, 2)
    def _compare(engine, args, depth, frame, _test=test) -> Iterator[None]:
        if _test(evaluate(args[0]), evaluate(args[1])):
            yield

    _compare.__doc__ = f"Arithmetic comparison ``X {name} Y``."


_comparison("=:=", lambda a, b: a == b)
_comparison("=\\=", lambda a, b: a != b)
_comparison("<", lambda a, b: a < b)
_comparison(">", lambda a, b: a > b)
_comparison("=<", lambda a, b: a <= b)
_comparison(">=", lambda a, b: a >= b)


@builtin("succ", 2)
def _succ(engine, args, depth, frame) -> Iterator[None]:
    """``succ(X, Y)``: Y = X + 1; works in both directions."""
    first, second = deref(args[0]), deref(args[1])
    mark = engine.trail.mark()
    if isinstance(first, int):
        if first < 0:
            raise TypeErrorProlog("non-negative integer", first)
        if unify(second, first + 1, engine.trail):
            yield
    elif isinstance(second, int):
        if second > 0 and unify(first, second - 1, engine.trail):
            yield
    else:
        raise InstantiationError("succ/2: both arguments unbound")
    engine.trail.undo_to(mark)
