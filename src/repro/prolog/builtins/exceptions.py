"""ISO-style exception handling: ``throw/1`` and ``catch/3``.

``throw(Ball)`` raises a copy of Ball; ``catch(Goal, Catcher,
Recovery)`` runs Goal and, when a ball (or a catchable engine error,
rendered as ``error(Kind, Message)``) unifies with Catcher, undoes
Goal's bindings and runs Recovery. Safety-bound overruns
(:class:`~repro.errors.DepthLimitExceeded`,
:class:`~repro.errors.CallBudgetExceeded`) are deliberately *not*
catchable: they exist to stop runaway executions, and a program
catching them could loop forever.
"""

from __future__ import annotations

from typing import Iterator

from ...errors import (
    CallBudgetExceeded,
    DepthLimitExceeded,
    InstantiationError,
    PrologError,
    PrologThrow,
    TypeErrorProlog,
)
from ..terms import Atom, Struct, Term, Var, copy_term, deref, is_callable_term
from ..unify import unify
from . import builtin


@builtin("throw", 1)
def _throw(engine, args, depth, frame) -> Iterator[None]:
    """``throw(Ball)`` — raise a copy of Ball toward the nearest catch."""
    ball = deref(args[0])
    if isinstance(ball, Var):
        raise InstantiationError("throw/1: ball unbound")
    raise PrologThrow(copy_term(ball))
    yield  # pragma: no cover - makes this a generator


def _error_ball(error: PrologError) -> Term:
    """Render a catchable engine error as ``error(Kind, Message)``."""
    kind = {
        "InstantiationError": "instantiation_error",
        "TypeErrorProlog": "type_error",
        "ExistenceError": "existence_error",
        "ArithmeticErrorProlog": "evaluation_error",
    }.get(type(error).__name__, "system_error")
    return Struct("error", (Atom(kind), Atom(str(error))))


@builtin("catch", 3)
def _catch(engine, args, depth, frame) -> Iterator[None]:
    """``catch(Goal, Catcher, Recovery)``."""
    goal = deref(args[0])
    if isinstance(goal, Var):
        raise InstantiationError("catch/3: goal unbound")
    if not is_callable_term(goal):
        raise TypeErrorProlog("callable", goal)
    mark = engine.trail.mark()
    try:
        yield from engine.solve_goal(goal, depth, engine.new_frame())
        return
    except (DepthLimitExceeded, CallBudgetExceeded):
        raise  # safety bounds stay uncatchable
    except PrologThrow as thrown:
        ball = thrown.ball
    except PrologError as error:
        ball = _error_ball(error)
    engine.trail.undo_to(mark)
    if not unify(args[1], ball, engine.trail):
        engine.trail.undo_to(mark)
        raise PrologThrow(ball)
    yield from engine.solve_goal(args[2], depth, engine.new_frame())
    engine.trail.undo_to(mark)
