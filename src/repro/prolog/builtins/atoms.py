"""Atom/term text builtins and sorting.

``name/2`` is the DEC-10 original; ``atom_codes/2``/``number_codes/2``
are its modern split. ``sort/2``, ``msort/2``, ``keysort/2`` order by
the standard order of terms.
"""

from __future__ import annotations

from typing import Iterator, List

from ...errors import InstantiationError, TypeErrorProlog
from ..terms import (
    Atom,
    Struct,
    Term,
    Var,
    deref,
    is_number,
    list_to_python,
    make_list,
    term_ordering_key,
)
from ..unify import unify
from . import builtin


def _codes_to_text(term: Term, what: str) -> str:
    try:
        items = list_to_python(term)
    except ValueError:
        raise InstantiationError(f"{what}: code list insufficiently instantiated")
    chars = []
    for item in items:
        item = deref(item)
        if not isinstance(item, int):
            raise TypeErrorProlog("character code", item)
        chars.append(chr(item))
    return "".join(chars)


def _text_to_codes(text: str) -> Term:
    return make_list([ord(c) for c in text])


@builtin("atom_codes", 2)
def _atom_codes(engine, args, depth, frame) -> Iterator[None]:
    """``atom_codes(Atom, Codes)`` — both directions."""
    first = deref(args[0])
    mark = engine.trail.mark()
    if isinstance(first, Atom):
        if unify(args[1], _text_to_codes(first.name), engine.trail):
            yield
    elif is_number(first):
        if unify(args[1], _text_to_codes(str(first)), engine.trail):
            yield
    elif isinstance(first, Var):
        text = _codes_to_text(args[1], "atom_codes/2")
        if unify(first, Atom(text), engine.trail):
            yield
    else:
        raise TypeErrorProlog("atom", first)
    engine.trail.undo_to(mark)


@builtin("number_codes", 2)
def _number_codes(engine, args, depth, frame) -> Iterator[None]:
    """``number_codes(Number, Codes)`` — both directions."""
    first = deref(args[0])
    mark = engine.trail.mark()
    if is_number(first):
        text = repr(first) if isinstance(first, float) else str(first)
        if unify(args[1], _text_to_codes(text), engine.trail):
            yield
    elif isinstance(first, Var):
        text = _codes_to_text(args[1], "number_codes/2")
        try:
            value: Term = int(text)
        except ValueError:
            try:
                value = float(text)
            except ValueError:
                raise TypeErrorProlog("number text", text)
        if unify(first, value, engine.trail):
            yield
    else:
        raise TypeErrorProlog("number", first)
    engine.trail.undo_to(mark)


@builtin("name", 2)
def _name(engine, args, depth, frame) -> Iterator[None]:
    """``name(AtomOrNumber, Codes)`` — DEC-10: numbers parse as numbers."""
    first = deref(args[0])
    mark = engine.trail.mark()
    if isinstance(first, Var):
        text = _codes_to_text(args[1], "name/2")
        value: Term
        try:
            value = int(text)
        except ValueError:
            try:
                value = float(text)
            except ValueError:
                value = Atom(text)
        if unify(first, value, engine.trail):
            yield
    else:
        if isinstance(first, Atom):
            text = first.name
        elif is_number(first):
            text = repr(first) if isinstance(first, float) else str(first)
        else:
            raise TypeErrorProlog("atomic", first)
        if unify(args[1], _text_to_codes(text), engine.trail):
            yield
    engine.trail.undo_to(mark)


@builtin("atom_length", 2)
def _atom_length(engine, args, depth, frame) -> Iterator[None]:
    """``atom_length(Atom, Length)``."""
    first = deref(args[0])
    if isinstance(first, Var):
        raise InstantiationError("atom_length/2: first argument unbound")
    if not isinstance(first, Atom):
        raise TypeErrorProlog("atom", first)
    mark = engine.trail.mark()
    if unify(args[1], len(first.name), engine.trail):
        yield
    engine.trail.undo_to(mark)


def _sorted_items(term: Term, what: str) -> List[Term]:
    try:
        return list_to_python(term)
    except ValueError:
        raise InstantiationError(f"{what}: list insufficiently instantiated")


@builtin("msort", 2)
def _msort(engine, args, depth, frame) -> Iterator[None]:
    """``msort(List, Sorted)`` — standard order, duplicates kept."""
    items = _sorted_items(args[0], "msort/2")
    ordered = sorted(items, key=term_ordering_key)
    mark = engine.trail.mark()
    if unify(args[1], make_list(ordered), engine.trail):
        yield
    engine.trail.undo_to(mark)


@builtin("sort", 2)
def _sort(engine, args, depth, frame) -> Iterator[None]:
    """``sort(List, Sorted)`` — standard order, duplicates removed."""
    items = _sorted_items(args[0], "sort/2")
    unique: List[Term] = []
    seen = set()
    for item in sorted(items, key=term_ordering_key):
        key = term_ordering_key(item)
        if key not in seen:
            seen.add(key)
            unique.append(item)
    mark = engine.trail.mark()
    if unify(args[1], make_list(unique), engine.trail):
        yield
    engine.trail.undo_to(mark)


@builtin("keysort", 2)
def _keysort(engine, args, depth, frame) -> Iterator[None]:
    """``keysort(Pairs, Sorted)`` — stable sort of Key-Value pairs."""
    items = _sorted_items(args[0], "keysort/2")
    for item in items:
        pair = deref(item)
        if not (isinstance(pair, Struct) and pair.indicator == ("-", 2)):
            raise TypeErrorProlog("Key-Value pair", pair)
    ordered = sorted(items, key=lambda p: term_ordering_key(deref(p).args[0]))
    mark = engine.trail.mark()
    if unify(args[1], make_list(ordered), engine.trail):
        yield
    engine.trail.undo_to(mark)
