"""List-related builtins: ``length/2`` and ``between/3``.

Most list predicates (``append/3``, ``member/2``, ...) are deliberately
*not* builtins: the benchmark programs define them in Prolog, as the
paper's examples do, so that the reorderer can analyse and reorder them.
A ready-made Prolog library source is available as :data:`LIST_LIBRARY`
for programs that want the standard definitions.
"""

from __future__ import annotations

from typing import Iterator

from ...errors import InstantiationError, TypeErrorProlog
from ..terms import Var, deref, is_list_cell, make_list
from ..unify import unify
from . import builtin

#: Standard list predicates in Prolog, ready to consult.
LIST_LIBRARY = """
append([], Xs, Xs).
append([X | Xs], Ys, [X | Zs]) :- append(Xs, Ys, Zs).

member(X, [X | _]).
member(X, [_ | Xs]) :- member(X, Xs).

memberchk(X, [Y | Ys]) :- ( X = Y -> true ; memberchk(X, Ys) ).

reverse(Xs, Ys) :- reverse_(Xs, [], Ys).
reverse_([], Acc, Acc).
reverse_([X | Xs], Acc, Ys) :- reverse_(Xs, [X | Acc], Ys).

select(X, [X | Xs], Xs).
select(X, [Y | Xs], [Y | Ys]) :- select(X, Xs, Ys).

permutation(Xs, [X | Ys]) :- select(X, Xs, Zs), permutation(Zs, Ys).
permutation([], []).

last([X], X).
last([_ | Xs], X) :- last(Xs, X).

nth1(1, [X | _], X).
nth1(N, [_ | Xs], X) :- N > 1, N1 is N - 1, nth1(N1, Xs, X).

delete(X, [X | Ys], Ys).
delete(U, [X | Ys], [X | Vs]) :- delete(U, Ys, Vs).
"""


@builtin("length", 2)
def _length(engine, args, depth, frame) -> Iterator[None]:
    """``length(List, N)`` — in any mode; enumerates lists when both free."""
    lst = deref(args[0])
    length_term = deref(args[1])

    # Walk the list spine as far as it is instantiated.
    count = 0
    while is_list_cell(lst):
        count += 1
        lst = deref(lst.args[1])

    if not isinstance(lst, Var):  # proper list (or type error)
        if not (hasattr(lst, "name") and lst.name == "[]"):
            raise TypeErrorProlog("list", lst)
        mark = engine.trail.mark()
        if unify(length_term, count, engine.trail):
            yield
        engine.trail.undo_to(mark)
        return

    # Partial list with variable tail.
    if isinstance(length_term, int):
        if length_term < count:
            return
        extension = make_list([Var() for _ in range(length_term - count)])
        mark = engine.trail.mark()
        if unify(lst, extension, engine.trail):
            yield
        engine.trail.undo_to(mark)
        return
    if not isinstance(length_term, Var):
        raise TypeErrorProlog("integer", length_term)

    # Both open: enumerate lengths count, count+1, ... (bounded by the
    # engine's call budget / depth limit through normal backtracking).
    total = count
    while True:
        extension = make_list([Var() for _ in range(total - count)])
        mark = engine.trail.mark()
        if unify(lst, extension, engine.trail) and unify(
            length_term, total, engine.trail
        ):
            yield
        engine.trail.undo_to(mark)
        total += 1
        if total - count > engine.max_list_length:
            raise InstantiationError(
                "length/2: unbounded enumeration exceeded engine.max_list_length"
            )


@builtin("between", 3)
def _between(engine, args, depth, frame) -> Iterator[None]:
    """``between(Low, High, X)`` — X ranges over Low..High inclusive."""
    low = deref(args[0])
    high = deref(args[1])
    if not isinstance(low, int) or not isinstance(high, int):
        raise InstantiationError("between/3: bounds must be integers")
    value = deref(args[2])
    if isinstance(value, int):
        if low <= value <= high:
            yield
        return
    if not isinstance(value, Var):
        raise TypeErrorProlog("integer", value)
    for candidate in range(low, high + 1):
        mark = engine.trail.mark()
        if unify(value, candidate, engine.trail):
            yield
        engine.trail.undo_to(mark)
