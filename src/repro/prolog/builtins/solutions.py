"""All-solutions builtins: ``findall/3``, ``bagof/3``, ``setof/3``.

The paper reorders the goals *inside* these predicates' arguments but
treats calls to them as semifixed (§IV-D-6); here we implement their full
run-time semantics, including ``^/2`` existential qualification and
grouping over free variables for ``bagof``/``setof``.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ...errors import InstantiationError, TypeErrorProlog
from ..terms import (
    Struct,
    Term,
    Var,
    deref,
    is_callable_term,
    make_list,
    rename_term,
    term_ordering_key,
    term_variables,
)
from ..unify import unify
from . import builtin


def _strip_carets(goal: Term) -> Tuple[List[Var], Term]:
    """Split ``V1 ^ V2 ^ Goal`` into (qualified vars, inner goal)."""
    qualified: List[Var] = []
    current = deref(goal)
    while isinstance(current, Struct) and current.name == "^" and current.arity == 2:
        qualified.extend(term_variables(current.args[0]))
        current = deref(current.args[1])
    return qualified, current


def _check_goal(goal: Term) -> Term:
    goal = deref(goal)
    if isinstance(goal, Var):
        raise InstantiationError("all-solutions goal unbound")
    if not is_callable_term(goal):
        raise TypeErrorProlog("callable", goal)
    return goal


@builtin("findall", 3, semifixed=True)
def _findall(engine, args, depth, frame) -> Iterator[None]:
    """``findall(Template, Goal, List)`` — List of all Template instances."""
    template, goal_arg, result = args
    _, goal = _strip_carets(goal_arg)  # findall ignores ^ but tolerates it
    goal = _check_goal(goal)
    collected: List[Term] = []
    mark = engine.trail.mark()
    for _ in engine.solve_goal(goal, depth, engine.new_frame()):
        collected.append(rename_term(template, {}))
    engine.trail.undo_to(mark)
    if unify(result, make_list(collected), engine.trail):
        yield
    engine.trail.undo_to(mark)


def _collect_grouped(engine, template, goal_arg, depth):
    """Solutions grouped by the witness (free variables of the goal).

    Returns a list of ``(witness_terms, [template_copies])`` groups in
    order of first appearance. The witness is the tuple of variables free
    in the goal but neither in the template nor ^-qualified.
    """
    qualified, goal = _strip_carets(goal_arg)
    goal = _check_goal(goal)
    excluded = {id(v) for v in term_variables(template)}
    excluded.update(id(v) for v in qualified)
    witness = [v for v in term_variables(goal) if id(v) not in excluded]

    groups: List[Tuple[List[Term], List[Term]]] = []
    keys = {}
    mark = engine.trail.mark()
    for _ in engine.solve_goal(goal, depth, engine.new_frame()):
        mapping: dict = {}
        witness_copy = [rename_term(v, mapping) for v in witness]
        template_copy = rename_term(template, mapping)
        key = tuple(term_ordering_key(w) for w in witness_copy)
        slot = keys.get(key)
        if slot is None:
            keys[key] = len(groups)
            groups.append((witness_copy, [template_copy]))
        else:
            groups[slot][1].append(template_copy)
    engine.trail.undo_to(mark)
    return witness, groups


@builtin("bagof", 3, semifixed=True)
def _bagof(engine, args, depth, frame) -> Iterator[None]:
    """``bagof(Template, Goal, Bag)`` — fails if there are no solutions;
    backtracks over bindings of the goal's free variables."""
    template, goal_arg, result = args
    witness, groups = _collect_grouped(engine, template, goal_arg, depth)
    for witness_values, members in groups:
        mark = engine.trail.mark()
        bound = all(
            unify(var, value, engine.trail)
            for var, value in zip(witness, witness_values)
        )
        if bound and unify(result, make_list(members), engine.trail):
            yield
        engine.trail.undo_to(mark)


@builtin("setof", 3, semifixed=True)
def _setof(engine, args, depth, frame) -> Iterator[None]:
    """``setof(Template, Goal, Set)`` — like bagof but sorted, duplicates
    removed."""
    template, goal_arg, result = args
    witness, groups = _collect_grouped(engine, template, goal_arg, depth)
    for witness_values, members in groups:
        unique: List[Term] = []
        seen = set()
        for member in sorted(members, key=term_ordering_key):
            key = term_ordering_key(member)
            if key not in seen:
                seen.add(key)
                unique.append(member)
        mark = engine.trail.mark()
        bound = all(
            unify(var, value, engine.trail)
            for var, value in zip(witness, witness_values)
        )
        if bound and unify(result, make_list(unique), engine.trail):
            yield
        engine.trail.undo_to(mark)
