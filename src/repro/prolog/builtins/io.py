"""I/O builtins — the paper's archetypal *fixed* (side-effecting)
predicates (§IV-B).

Output goes to the engine's capture buffer (``engine.output``) so tests
and the experiment harness can assert on it; ``engine.echo`` additionally
mirrors to stdout for interactive use. ``read/1`` pops terms from
``engine.input_terms`` (a deque the caller fills), simulating a user at
the terminal; reading from an empty queue returns ``end_of_file``.
"""

from __future__ import annotations

from typing import Iterator

from ...errors import TypeErrorProlog
from ..terms import Atom, deref
from ..unify import unify
from ..writer import term_to_string
from . import builtin


def _emit(engine, text: str) -> None:
    engine.output.append(text)
    if engine.echo:
        print(text, end="")


@builtin("write", 1, side_effect=True)
def _write(engine, args, depth, frame) -> Iterator[None]:
    """``write(Term)`` — print Term in operator notation."""
    _emit(engine, term_to_string(args[0]))
    yield


@builtin("print", 1, side_effect=True)
def _print(engine, args, depth, frame) -> Iterator[None]:
    """``print(Term)`` — identical to ``write/1`` here (no portray hook)."""
    _emit(engine, term_to_string(args[0]))
    yield


@builtin("writeln", 1, side_effect=True)
def _writeln(engine, args, depth, frame) -> Iterator[None]:
    """``writeln(Term)`` — write then newline."""
    _emit(engine, term_to_string(args[0]) + "\n")
    yield


@builtin("nl", 0, side_effect=True)
def _nl(engine, args, depth, frame) -> Iterator[None]:
    """``nl`` — write a newline."""
    _emit(engine, "\n")
    yield


@builtin("tab", 1, side_effect=True)
def _tab(engine, args, depth, frame) -> Iterator[None]:
    """``tab(N)`` — write N spaces."""
    from .arith import evaluate

    count = evaluate(args[0])
    if not isinstance(count, int) or count < 0:
        raise TypeErrorProlog("non-negative integer", count)
    _emit(engine, " " * count)
    yield


@builtin("put", 1, side_effect=True)
def _put(engine, args, depth, frame) -> Iterator[None]:
    """``put(Code)`` — write the character with the given code."""
    from .arith import evaluate

    code = evaluate(args[0])
    if not isinstance(code, int):
        raise TypeErrorProlog("character code", code)
    _emit(engine, chr(code))
    yield


@builtin("read", 1, side_effect=True)
def _read(engine, args, depth, frame) -> Iterator[None]:
    """``read(Term)`` — pop the next term from the engine's input queue."""
    if engine.input_terms:
        term = engine.input_terms.popleft()
    else:
        term = Atom("end_of_file")
    mark = engine.trail.mark()
    if unify(args[0], term, engine.trail):
        yield
    engine.trail.undo_to(mark)


@builtin("get0", 1, side_effect=True)
def _get0(engine, args, depth, frame) -> Iterator[None]:
    """``get0(Code)`` — pop one character code from the input queue."""
    if engine.input_terms:
        term = engine.input_terms.popleft()
    else:
        term = -1
    mark = engine.trail.mark()
    if unify(args[0], term, engine.trail):
        yield
    engine.trail.undo_to(mark)
