"""Term identity and standard-order comparison builtins."""

from __future__ import annotations

from typing import Iterator

from ..terms import Atom, deref, structural_eq, term_ordering_key
from ..unify import unify
from . import builtin


@builtin("=", 2)
def _unify(engine, args, depth, frame) -> Iterator[None]:
    """``X = Y`` — unification."""
    mark = engine.trail.mark()
    if unify(args[0], args[1], engine.trail, occurs_check=engine.occurs_check):
        yield
    engine.trail.undo_to(mark)


@builtin("\\=", 2)
def _not_unify(engine, args, depth, frame) -> Iterator[None]:
    """``X \\= Y`` — succeeds when X and Y do not unify (leaves no bindings)."""
    mark = engine.trail.mark()
    unified = unify(args[0], args[1], engine.trail, occurs_check=engine.occurs_check)
    engine.trail.undo_to(mark)
    if not unified:
        yield


@builtin("==", 2, semifixed=True)
def _identical(engine, args, depth, frame) -> Iterator[None]:
    """``X == Y`` — structural identity, no binding."""
    if structural_eq(args[0], args[1]):
        yield


@builtin("\\==", 2, semifixed=True)
def _not_identical(engine, args, depth, frame) -> Iterator[None]:
    """``X \\== Y`` — structural difference, no binding."""
    if not structural_eq(args[0], args[1]):
        yield


def _order_test(name: str, accept) -> None:
    @builtin(name, 2, semifixed=True)
    def _test(engine, args, depth, frame, _accept=accept) -> Iterator[None]:
        left = term_ordering_key(args[0])
        right = term_ordering_key(args[1])
        sign = (left > right) - (left < right)
        if _accept(sign):
            yield

    _test.__doc__ = f"Standard-order comparison ``X {name} Y``."


_order_test("@<", lambda sign: sign < 0)
_order_test("@>", lambda sign: sign > 0)
_order_test("@=<", lambda sign: sign <= 0)
_order_test("@>=", lambda sign: sign >= 0)


@builtin("compare", 3, semifixed=True)
def _compare(engine, args, depth, frame) -> Iterator[None]:
    """``compare(Order, X, Y)`` — Order is one of ``<``, ``=``, ``>``."""
    left = term_ordering_key(args[1])
    right = term_ordering_key(args[2])
    sign = (left > right) - (left < right)
    symbol = Atom("<") if sign < 0 else Atom(">") if sign > 0 else Atom("=")
    mark = engine.trail.mark()
    if unify(args[0], symbol, engine.trail):
        yield
    engine.trail.undo_to(mark)
