"""The Prolog inference engine.

Depth-first SLD resolution with backtracking, exactly the execution
model the paper assumes: clauses tried in stored order, goals solved
left to right, backtracking on failure. Implementation is generator
based — ``solve_goal`` yields once per solution — with a WAM-style
binding trail undone between alternatives.

Clause attempts run on compiled skeletons by default (see
:mod:`repro.prolog.compile`): heads are instantiated from slot-numbered
build programs and bodies are materialized lazily, only after the head
unifies, so a failed attempt never copies the body. Conjunctions run as
a flat goal-list loop (:meth:`Engine._solve_body`) instead of a nested
generator ladder. ``Engine(compiled=False)`` restores the interpreted
rename-per-attempt path, which the differential tests hold the compiled
path against, solution for solution and counter for counter.

Cut is implemented with per-call *frames*: executing ``!`` succeeds
immediately; when it is asked for another solution it sets the frame's
``cut`` flag, which (a) stops retrying goals to its left in the body and
(b) stops the clause loop from trying further clauses. ``;``, ``->``
and ``\\+`` introduce the standard local barriers.

Safety bounds (``max_depth``, ``call_budget``) turn the infinite
recursions that illegal modes cause (§V-B) into catchable exceptions,
which both the tests and the legality experiments rely on.
"""

from __future__ import annotations

import sys
from collections import deque
from time import perf_counter
from typing import Deque, Dict, Iterator, List, Optional, Tuple, Union

from ..observability.events import (
    ChoicePointEvent,
    EventBus,
    PortEvent,
    PredicateTimeEvent,
    UnifyEvent,
)
from ..errors import (
    CallBudgetExceeded,
    DepthLimitExceeded,
    ExistenceError,
    InstantiationError,
    TypeErrorProlog,
)
from ..robustness import faults
from ..robustness.budget import Budget
from .builtins import BUILTINS, lookup
from .compile import flatten_conjunction
from .database import Database, first_arg_key
from .metrics import Metrics
from .tabling import TableStore, solve_tabled
from .reader.parser import parse_term
from .terms import (
    Atom,
    Struct,
    Term,
    Var,
    deref,
    functor_indicator,
    is_callable_term,
    rename_term,
    term_variables,
)
from .unify import Trail, unify

__all__ = ["Engine", "Frame", "Solution"]

Indicator = Tuple[str, int]


class Frame:
    """A cut barrier: one per predicate call (and per local-cut context)."""

    __slots__ = ("cut",)

    def __init__(self) -> None:
        self.cut = False


class Solution:
    """One query answer: variable name → fully-resolved term copy."""

    def __init__(self, bindings: Dict[str, Term]):
        self.bindings = bindings

    def __getitem__(self, name: str) -> Term:
        return self.bindings[name]

    def __contains__(self, name: str) -> bool:
        return name in self.bindings

    def __eq__(self, other: object) -> bool:
        from .terms import structural_eq

        if not isinstance(other, Solution):
            return NotImplemented
        if set(self.bindings) != set(other.bindings):
            return False
        return all(
            structural_eq(self.bindings[k], other.bindings[k]) for k in self.bindings
        )

    def __repr__(self) -> str:
        from .writer import term_to_string

        inner = ", ".join(
            f"{name} = {term_to_string(term)}" for name, term in self.bindings.items()
        )
        return "{" + inner + "}"

    def key(self) -> tuple:
        """A hashable key for set-equivalence checks.

        Stable across runs: unbound variables are numbered by first
        occurrence (scanning bindings in name order), so two solutions
        that differ only in variable identity get equal keys.
        """
        from .terms import Atom, Struct, Var, deref, is_number

        numbering: Dict[int, int] = {}

        def canonical(term):
            term = deref(term)
            if isinstance(term, Var):
                index = numbering.setdefault(id(term), len(numbering))
                return (0, index)
            if is_number(term):
                return (1, float(term), 0 if isinstance(term, float) else 1)
            if isinstance(term, Atom):
                return (2, term.name)
            assert isinstance(term, Struct)
            return (3, term.arity, term.name, tuple(canonical(a) for a in term.args))

        return tuple(
            (name, canonical(self.bindings[name])) for name in sorted(self.bindings)
        )


#: Highest recursion limit any engine has requested so far; lets
#: :meth:`Engine.ensure_recursion_capacity` skip the ``sys`` calls when
#: an equal or deeper engine already raised the limit.
_recursion_highwater = 0


class Engine:
    """Executes queries against a :class:`~repro.prolog.database.Database`."""

    #: Python stack frames consumed per Prolog call level (with margin).
    _FRAMES_PER_LEVEL = 12

    #: Upper bound on the interpreter recursion limit this library will
    #: ever set. Beyond this the C stack overflows before Python's
    #: bookkeeping helps; deeper programs should raise ``max_depth``
    #: expectations instead (the engine reports DepthLimitExceeded).
    RECURSION_LIMIT_CAP = 30_000

    @classmethod
    def ensure_recursion_capacity(cls, max_depth: int) -> None:
        """Raise the interpreter recursion limit once for ``max_depth``.

        The generator chain nests Python frames proportionally to the
        Prolog depth. The computed need is clamped to
        :data:`RECURSION_LIMIT_CAP`, the limit is never lowered, and a
        module-level high-water mark makes repeat calls (one engine per
        calibration sample, say) free.
        """
        global _recursion_highwater
        needed = min(
            2_000 + cls._FRAMES_PER_LEVEL * max_depth, cls.RECURSION_LIMIT_CAP
        )
        if needed <= _recursion_highwater:
            return
        _recursion_highwater = needed
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)

    def __init__(
        self,
        database: Database,
        max_depth: int = 1_000,
        call_budget: Optional[int] = None,
        occurs_check: bool = False,
        echo: bool = False,
        table_all: bool = False,
        adjust_recursion_limit: bool = True,
        compiled: bool = True,
        vm: bool = False,
        budget: Optional[Budget] = None,
        eval_strategy: str = "topdown",
    ):
        self.database = database
        self.trail = Trail()
        self.metrics = Metrics()
        self.max_depth = max_depth
        self.call_budget = call_budget
        #: Default :class:`~repro.robustness.Budget` applied to every
        #: query this engine runs (a per-call budget passed to
        #: :meth:`solve`/:meth:`ask` takes precedence).
        self.budget = budget
        #: The budget charged by the query currently executing; set and
        #: restored by :meth:`solve` so nested machinery (``_solve_body``,
        #: the tabling fixpoint) can reach it without plumbing.
        self._active_budget: Optional[Budget] = None
        self.occurs_check = occurs_check
        #: Captured output of write/nl/etc.
        self.output: List[str] = []
        #: Mirror output to stdout as well.
        self.echo = echo
        #: Input queue for read/1 and get0/1.
        self.input_terms: Deque[Term] = deque()
        #: Optional four-port tracer callback (port, depth, goal).
        self.tracer = None
        #: Optional event bus (see :mod:`repro.observability.events`);
        #: None keeps the uninstrumented fast path.
        self.events: Optional[EventBus] = None
        #: Optional streaming recorder (see
        #: :mod:`repro.observability.streaming.recorder`): the sampled,
        #: bounded, always-on channel. Consulted only when tracer and
        #: event bus are both off; None keeps the fast path.
        self.recorder = None
        #: Bound for length/2 open enumeration.
        self.max_list_length = 10_000
        #: Table every user predicate, not just ``:- table`` ones.
        self.table_all = table_all
        #: Variant tables memoized by this engine (see tabling docs).
        self.tables = TableStore()
        #: The in-flight tabling fixpoint, if any.
        self._table_evaluation = None
        #: Stack of tables currently running a production pass.
        self._table_producing: List = []
        #: Nesting depth of negation-as-failure (stratification check).
        self._negation_depth = 0
        #: Solve user predicates on compiled skeletons (the default) or
        #: on the interpreted rename-per-attempt path. Bound once here
        #: so the hot dispatch in ``solve_goal`` (and the tabling
        #: producer, which calls ``engine._solve_user`` directly) pays
        #: no per-call branching.
        self.compiled = compiled
        #: Run user-predicate calls on the bytecode trampoline (see
        #: :mod:`repro.prolog.vm`) instead of the generator clause
        #: loop. Implies ``compiled``: the VM executes the same slot
        #: skeletons, lowered one step further to linear bytecode.
        if vm and not compiled:
            raise ValueError("vm=True requires compiled=True")
        self.vm = vm
        #: Clause-selection memo for the VM call path, keyed by
        #: ``(indicator, arg_keys)`` with the database generation
        #: stored in each cell — index probes are a pure function of
        #: the argument keys, so a generation-validated hit skips the
        #: defines/matching/compiled-program lookups entirely.
        self._vm_call_cache: dict = {}
        if vm:
            self._solve_user = self._solve_user_vm
        else:
            self._solve_user = (
                self._solve_user_compiled
                if compiled
                else self._solve_user_interpreted
            )
        #: Evaluation strategy: ``"topdown"`` (the default — pure SLD,
        #: counters byte-identical to every earlier release),
        #: ``"bottomup"`` (route every eligible datalog-like stratum to
        #: the semi-naive evaluator in :mod:`repro.prolog.bottomup`),
        #: or ``"auto"`` (the cost model routes recursive eligible
        #: strata bottom-up and leaves the rest to SLD resolution).
        if eval_strategy not in ("topdown", "bottomup", "auto"):
            raise ValueError(f"bad eval_strategy: {eval_strategy!r}")
        self.eval_strategy = eval_strategy
        if eval_strategy == "topdown":
            self._bottomup = None
        else:
            from .bottomup import BottomUpDispatcher

            self._bottomup = BottomUpDispatcher(eval_strategy)
        if adjust_recursion_limit:
            # Short-lived engines (calibration samples) pass False and
            # rely on one up-front ensure_recursion_capacity call.
            self.ensure_recursion_capacity(max_depth)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_source(cls, source: str, **kwargs) -> "Engine":
        """Build an engine over a database consulted from ``source``."""
        return cls(Database.from_source(source), **kwargs)

    def new_frame(self) -> Frame:
        """A fresh cut barrier (one per call / local-cut context)."""
        return Frame()

    def output_text(self) -> str:
        """All captured output as one string."""
        return "".join(self.output)

    # -- the solver ----------------------------------------------------------

    def solve_goal(self, goal: Term, depth: int, frame: Frame) -> Iterator[None]:
        """Yield once per solution of ``goal``. Bindings live on the trail
        while the caller holds the yield; they are undone when the caller
        asks for the next solution (or by an enclosing choice point)."""
        goal = deref(goal)
        if isinstance(goal, Var):
            raise InstantiationError("variable goal")
        if not is_callable_term(goal):
            raise TypeErrorProlog("callable", goal)

        if isinstance(goal, Struct):
            name, arity = goal.name, goal.arity
            # Control constructs: handled inline for cut transparency.
            if name == "," and arity == 2:
                # Flatten the whole chain once and run the flat loop
                # instead of recursing one generator per ',' node.
                yield from self._solve_body(
                    flatten_conjunction(goal), depth, frame
                )
                return
            if name == ";" and arity == 2:
                yield from self._solve_disjunction(goal.args[0], goal.args[1], depth, frame)
                return
            if name == "->" and arity == 2:
                # A bare if-then (no else): fail if the condition fails.
                yield from self._solve_if_then_else(
                    goal.args[0], goal.args[1], Atom("fail"), depth, frame
                )
                return
            args: Tuple[Term, ...] = goal.args
        else:
            assert isinstance(goal, Atom)
            name, arity = goal.name, 0
            if name == "true":
                yield
                return
            if name in ("fail", "false"):
                return
            if name == "!":
                yield
                frame.cut = True
                return
            args = ()

        indicator = (name, arity)
        self._charge_call(indicator)

        registered = lookup(indicator)
        if registered is not None:
            iterator = registered.fn(self, args, depth, frame)
        else:
            if not self.database.defines(indicator):
                raise ExistenceError(indicator)
            bottomup = self._bottomup
            iterator = (
                bottomup.solve(self, goal, indicator, depth)
                if bottomup is not None
                else None
            )
            if iterator is None:
                if self.table_all or indicator in self.database.tabled:
                    iterator = solve_tabled(self, goal, indicator, depth)
                else:
                    iterator = self._solve_user(goal, indicator, depth)
        tracer = self.tracer
        bus = self.events
        if tracer is None and bus is None:
            recorder = self.recorder
            if recorder is None:
                # Disabled-instrumentation fast path: delegate directly.
                # Nothing below this line (mode strings, events,
                # timestamps) is constructed when everything is off.
                yield from iterator
                return
            # Sampled streaming path, decided inline so an unsampled
            # call costs one set test plus a stride check on the call
            # counter ``_charge_call`` already maintains — only sampled
            # boxes pay for a token object and timestamps, and only
            # rare-phase predicates reach recorder code at all.
            if indicator in recorder.hot:
                sampled = not self.metrics.calls % recorder.sample_every
            else:
                sampled = recorder.admit_cold(indicator, self.metrics)
            if sampled:
                yield from self._record_boxed(iterator, args, indicator, depth)
            else:
                yield from iterator
            return
        yield from self._solve_boxed(iterator, goal, args, indicator, depth)

    def _record_boxed(
        self,
        iterator: Iterator[None],
        args: Tuple[Term, ...],
        indicator: Indicator,
        depth: int,
    ) -> Iterator[None]:
        """Byrd box for the sampled streaming path (no event objects).

        The recorder's pause/resume calls track the exit/redo windows so
        the closed box's cost — 1 + calls while active — matches the
        drift reporter's replay semantics without any event stream.
        """
        recorder = self.recorder
        box = recorder.open_box(
            indicator, _runtime_mode(args), depth, self.metrics
        )
        try:
            for _ in iterator:
                recorder.pause_box(box)
                yield
                recorder.resume_box(box)
        finally:
            recorder.close_box(box)

    def _solve_boxed(
        self,
        iterator: Iterator[None],
        goal: Term,
        args: Tuple[Term, ...],
        indicator: Indicator,
        depth: int,
    ) -> Iterator[None]:
        """Byrd's four-port box around one goal activation.

        Split out of :meth:`solve_goal` so the instrumented path — the
        only place mode strings, port events, and timestamps are built —
        is entered solely when a tracer or event bus is attached.
        """
        tracer = self.tracer
        bus = self.events
        started = 0.0
        if bus is not None:
            bus.emit(PortEvent("call", indicator, depth, _runtime_mode(args)))
            started = perf_counter()
        if tracer is not None:
            tracer("call", depth, goal)
        for _ in iterator:
            if bus is not None:
                bus.emit(PortEvent("exit", indicator, depth))
            if tracer is not None:
                tracer("exit", depth, goal)
            yield
            if bus is not None:
                bus.emit(PortEvent("redo", indicator, depth))
            if tracer is not None:
                tracer("redo", depth, goal)
        if bus is not None:
            bus.emit(PortEvent("fail", indicator, depth))
            bus.emit(PredicateTimeEvent(indicator, perf_counter() - started))
        if tracer is not None:
            tracer("fail", depth, goal)

    def _charge_call(self, indicator: Indicator) -> None:
        self.metrics.record_call(indicator)
        if self.call_budget is not None and self.metrics.calls > self.call_budget:
            raise CallBudgetExceeded(
                f"exceeded {self.call_budget} calls (at {indicator[0]}/{indicator[1]})"
            )
        if self._active_budget is not None:
            self._active_budget.charge_call()
        if faults.ACTIVE is not None:
            faults.ACTIVE.hit("engine.call")

    def _solve_body(
        self, goals: List[Term], depth: int, frame: Frame
    ) -> Iterator[None]:
        """Solve a flat goal list left to right with backtracking.

        The goal-list equivalent of the classic nested-conjunction
        recursion, in one Python frame: goal ``i`` advancing opens a
        fresh sub-iterator for goal ``i+1``; goal ``i`` exhausting
        resumes goal ``i-1`` — unless the clause frame's cut flag is
        set, which (exactly like the recursive version) stops retrying
        goals to the left. Each solution costs one ``yield`` instead of
        one hop per conjunction level.
        """
        n = len(goals)
        if n == 1:
            yield from self.solve_goal(goals[0], depth, frame)
            return
        if n == 0:
            yield
            return
        solve = self.solve_goal
        iterators: List[Optional[Iterator[None]]] = [None] * n
        iterators[0] = solve(goals[0], depth, frame)
        last = n - 1
        i = 0
        budget = self._active_budget
        try:
            while i >= 0:
                if budget is not None:
                    # A step per body-loop iteration catches redo storms
                    # (e.g. ``between/3, fail``) that never make a new
                    # call and so would dodge ``_charge_call``.
                    budget.charge_step()
                advanced = False
                for _ in iterators[i]:
                    advanced = True
                    break
                if advanced:
                    if i == last:
                        yield
                    else:
                        i += 1
                        iterators[i] = solve(goals[i], depth, frame)
                else:
                    iterators[i] = None
                    if frame.cut:
                        return
                    i -= 1
        finally:
            # Close abandoned sub-iterators rightmost-first — the same
            # order the nested yield-from chain unwound in, so paired
            # try/finally state (negation depth, producer stacks) pops
            # in LIFO order.
            while i >= 0:
                iterator = iterators[i]
                if iterator is not None:
                    iterator.close()
                i -= 1

    def _solve_disjunction(
        self, left: Term, right: Term, depth: int, frame: Frame
    ) -> Iterator[None]:
        left_deref = deref(left)
        if (
            isinstance(left_deref, Struct)
            and left_deref.name == "->"
            and left_deref.arity == 2
        ):
            yield from self._solve_if_then_else(
                left_deref.args[0], left_deref.args[1], right, depth, frame
            )
            return
        mark = self.trail.mark()
        yield from self.solve_goal(left, depth, frame)
        if frame.cut:
            return
        self.trail.undo_to(mark)
        yield from self.solve_goal(right, depth, frame)

    def _solve_if_then_else(
        self, condition: Term, then_part: Term, else_part: Term, depth: int, frame: Frame
    ) -> Iterator[None]:
        mark = self.trail.mark()
        condition_frame = self.new_frame()  # '->' cuts locally to the condition
        satisfied = False
        for _ in self.solve_goal(condition, depth, condition_frame):
            satisfied = True
            yield from self.solve_goal(then_part, depth, frame)
            break  # commit to the first condition solution
        if not satisfied:
            self.trail.undo_to(mark)
            yield from self.solve_goal(else_part, depth, frame)

    def _solve_user_vm(
        self, goal: Term, indicator: Indicator, depth: int
    ) -> Iterator[None]:
        """Bytecode-VM dispatch for one user-predicate call.

        The trampoline (:mod:`repro.prolog.vm`) runs only on the
        uninstrumented fast path; when a tracer, event bus, recorder,
        or bottom-up dispatcher is attached the call routes to the
        generator oracle instead, so instrumented runs are
        event-for-event identical to the PR 3 path by construction —
        the same contract the scan plans already follow (bus off only).
        The check is per call, so attaching a recorder mid-session
        flips the very next call.
        """
        if (
            self.tracer is not None
            or self.events is not None
            or self.recorder is not None
            or self._bottomup is not None
        ):
            return self._solve_user_compiled(goal, indicator, depth)
        from .vm import solve_vm

        return solve_vm(self, goal, indicator, depth)

    def _solve_user_compiled(
        self, goal: Term, indicator: Indicator, depth: int
    ) -> Iterator[None]:
        """The default clause-try loop, on compiled skeletons.

        Per attempt: the cached head fingerprints reject calls where
        *any* bound argument's key cannot match (no allocation at all),
        the head alone is instantiated from its slot program, and the
        body is materialized only after the head unifies — so failed
        attempts never copy the body. Counter discipline is identical
        to :meth:`_solve_user_interpreted`: fast rejections still
        charge a failed unification and emit a ``UnifyEvent``.

        On unnarrowed scans (``indexing=False`` or an unindexable call)
        with a bound first argument, the database's cached
        :meth:`~repro.prolog.database.Database.scan_plan` replaces the
        per-clause rejection loop: runs of rejectable clauses are
        skipped in one step and their counters charged in bulk, with
        totals byte-identical to the plain loop under every consumption
        pattern (early close, cut, full exhaustion).
        """
        if depth >= self.max_depth:
            raise DepthLimitExceeded(
                f"depth {self.max_depth} exceeded at {indicator[0]}/{indicator[1]}"
            )
        database = self.database
        clauses = database.matching_clauses(goal)
        bus = self.events
        if bus is not None and len(clauses) > 1:
            bus.emit(ChoicePointEvent(indicator, len(clauses), depth))
        if not clauses:
            return
        program = database.compiled_program(indicator)
        metrics = self.metrics
        trail = self.trail
        occurs = self.occurs_check
        frame = Frame()
        goal_args: Tuple[Term, ...] = ()
        goal_keys = None
        bound_positions: Tuple[int, ...] = ()
        plan = None
        if indicator[1]:
            goal_args = deref(goal).args
            if len(clauses) > 1:
                # The fingerprints only pay for themselves when there
                # is more than one candidate to reject.
                goal_keys = tuple(first_arg_key(arg) for arg in goal_args)
                bound_positions = tuple(
                    position
                    for position, key in enumerate(goal_keys)
                    if key is not None
                )
                if not bound_positions:
                    goal_keys = None
                elif bus is None and goal_keys[0] is not None:
                    # The bulk plan skips UnifyEvent emission, so it is
                    # only taken on the uninstrumented path.
                    plan = database.scan_plan(indicator, clauses, goal_keys[0])
        body_depth = depth + 1
        if plan is not None:
            processed = 0
            for skipped, clause in plan:
                if skipped:
                    # Bulk-charge the skipped clauses exactly as if each
                    # had been fingerprint-rejected in turn: one failed
                    # unification + fast reject apiece, and a backtrack
                    # for every processed clause after the first.
                    metrics.unifications += skipped
                    metrics.head_fast_rejects += skipped
                    metrics.backtracks += skipped if processed else skipped - 1
                    processed += skipped
                if clause is None:
                    return
                if processed:
                    metrics.record_backtrack()
                processed += 1
                compiled = program[clause.index]
                head_keys = compiled.head_keys
                rejected = False
                for position in bound_positions:
                    head_key = head_keys[position]
                    if head_key is not None and head_key != goal_keys[position]:
                        rejected = True
                        break
                if rejected:
                    metrics.record_fast_reject()
                    continue
                mark = trail.mark()
                slots = compiled.unify_head(goal_args, trail, occurs)
                metrics.record_instantiation()
                if slots is not None:
                    metrics.record_unification(True)
                    goals = compiled.materialize_body(slots)
                    count = len(goals)
                    if count == 0:
                        yield
                    elif count == 1:
                        yield from self.solve_goal(goals[0], body_depth, frame)
                    else:
                        yield from self._solve_body(goals, body_depth, frame)
                else:
                    metrics.record_unification(False)
                trail.undo_to(mark)
                if frame.cut:
                    return
            return
        first_attempt = True
        for clause in clauses:
            if not first_attempt:
                metrics.record_backtrack()
            first_attempt = False
            compiled = program[clause.index]
            if goal_keys is not None:
                head_keys = compiled.head_keys
                rejected = False
                for position in bound_positions:
                    head_key = head_keys[position]
                    if head_key is not None and head_key != goal_keys[position]:
                        rejected = True
                        break
                if rejected:
                    metrics.record_fast_reject()
                    if bus is not None:
                        bus.emit(UnifyEvent(indicator, False))
                    continue
            mark = trail.mark()
            slots = compiled.unify_head(goal_args, trail, occurs)
            metrics.record_instantiation()
            if slots is not None:
                metrics.record_unification(True)
                if bus is not None:
                    bus.emit(UnifyEvent(indicator, True))
                goals = compiled.materialize_body(slots)
                count = len(goals)
                if count == 0:
                    yield
                elif count == 1:
                    yield from self.solve_goal(goals[0], body_depth, frame)
                else:
                    yield from self._solve_body(goals, body_depth, frame)
            else:
                metrics.record_unification(False)
                if bus is not None:
                    bus.emit(UnifyEvent(indicator, False))
            trail.undo_to(mark)
            if frame.cut:
                return

    def _solve_user_interpreted(
        self, goal: Term, indicator: Indicator, depth: int
    ) -> Iterator[None]:
        """The pre-compilation clause-try loop (full rename per attempt).

        Kept as the ``Engine(compiled=False)`` reference semantics: the
        differential tests assert the compiled path matches it solution
        for solution and counter for counter.
        """
        if depth >= self.max_depth:
            raise DepthLimitExceeded(
                f"depth {self.max_depth} exceeded at {indicator[0]}/{indicator[1]}"
            )
        clauses = self.database.matching_clauses(goal)
        bus = self.events
        if bus is not None and len(clauses) > 1:
            bus.emit(ChoicePointEvent(indicator, len(clauses), depth))
        frame = self.new_frame()
        first_attempt = True
        for clause in clauses:
            if not first_attempt:
                self.metrics.record_backtrack()
            first_attempt = False
            mark = self.trail.mark()
            head, body = clause.rename()
            if unify(goal, head, self.trail, occurs_check=self.occurs_check):
                self.metrics.record_unification(True)
                if bus is not None:
                    bus.emit(UnifyEvent(indicator, True))
                yield from self.solve_goal(body, depth + 1, frame)
            else:
                self.metrics.record_unification(False)
                if bus is not None:
                    bus.emit(UnifyEvent(indicator, False))
            self.trail.undo_to(mark)
            if frame.cut:
                return

    # -- public query API --------------------------------------------------------

    def solve(
        self, query: Union[str, Term], budget: Optional[Budget] = None
    ) -> Iterator[Solution]:
        """Yield a :class:`Solution` snapshot per answer to ``query``.

        The snapshot's terms are copies: safe to keep after backtracking.
        ``budget`` (or the engine-level default) bounds the enumeration:
        deadline expiry / budget exhaustion raise the
        :class:`~repro.errors.BudgetExceededError` family, and a
        solution cap stops the iteration cleanly once reached.
        """
        goal = (
            parse_term(query, self.database.operators)
            if isinstance(query, str)
            else query
        )
        variables = [
            v for v in term_variables(goal) if not v.name.startswith("_")
        ]
        active = budget if budget is not None else self.budget
        if active is not None:
            active.start()
        previous = self._active_budget
        self._active_budget = active
        mark = self.trail.mark()
        try:
            for _ in self.solve_goal(goal, 0, self.new_frame()):
                # One shared mapping per snapshot: two query variables
                # bound to the same unbound variable must keep sharing
                # it in the Solution (a fresh mapping per variable
                # would tear them apart).
                mapping: Dict[int, Var] = {}
                yield Solution(
                    {var.name: rename_term(var, mapping) for var in variables}
                )
                if active is not None and active.note_solution():
                    return
        except RecursionError:
            raise DepthLimitExceeded(
                "Python recursion limit reached before max_depth; "
                "the query recurses too deeply"
            ) from None
        finally:
            self._active_budget = previous
            self.trail.undo_to(mark)

    def ask(
        self,
        query: Union[str, Term],
        limit: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> List[Solution]:
        """All (or the first ``limit``) solutions as a list.

        The solve generator is closed explicitly once the limit is hit,
        so trail/choice-point state unwinds deterministically here — not
        whenever garbage collection happens to finalize the generator.
        """
        results: List[Solution] = []
        generator = self.solve(query, budget=budget)
        try:
            for solution in generator:
                results.append(solution)
                if limit is not None and len(results) >= limit:
                    break
        finally:
            generator.close()
        return results

    def succeeds(self, query: Union[str, Term]) -> bool:
        """True when ``query`` has at least one solution."""
        for _ in self.solve(query):
            return True
        return False

    def count_solutions(self, query: Union[str, Term]) -> int:
        """The number of solutions (forces full backtracking)."""
        return sum(1 for _ in self.solve(query))

    def run(self, query: Union[str, Term]) -> Tuple[List[Solution], Metrics]:
        """All solutions plus the metrics charged by this query alone."""
        before = self.metrics.snapshot()
        solutions = self.ask(query)
        return solutions, self.metrics.snapshot() - before


#: Rendered mode strings keyed by the per-argument var-ness pattern;
#: bounded by the distinct patterns a program exhibits (≤ 2**arity).
_MODE_CACHE: Dict[Tuple[bool, ...], str] = {}


def _runtime_mode(args: Tuple[Term, ...]) -> str:
    """The runtime calling mode, rendered like ``(+, -)``.

    ``+`` per nonvar argument, ``-`` per unbound one — the nonvar/var
    approximation of the model's ground/free abstraction (a partially
    instantiated structure counts as ``+``).
    """
    if not args:
        return "()"
    pattern = tuple(isinstance(deref(arg), Var) for arg in args)
    text = _MODE_CACHE.get(pattern)
    if text is None:
        text = "(" + ", ".join("-" if free else "+" for free in pattern) + ")"
        _MODE_CACHE[pattern] = text
    return text
