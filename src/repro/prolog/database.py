"""Clause database with optional multi-argument indexing.

The paper (§III-A) notes that clause indexing "can have the same effect"
as clause reordering for head-match filtering, but "unless the engine
always indexes on the proper arguments, reordering can still be useful".
To study that interaction (the indexing ablation benchmark), indexing is
a per-database flag.

A database holds :class:`Clause` objects grouped by predicate indicator
``(name, arity)``, preserving source order; directives are collected
separately for the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..errors import PrologSyntaxError
from ..observability.events import IndexEvent
from .reader.parser import parse_terms
from .terms import (
    Atom,
    Struct,
    Term,
    Var,
    deref,
    functor_indicator,
    is_number,
    rename_term,
)

__all__ = [
    "Clause",
    "Database",
    "KNOWN_DIRECTIVES",
    "split_clause",
    "body_goals",
    "goals_to_body",
    "first_arg_key",
]

Indicator = Tuple[str, int]

#: Directive functors the toolchain understands (database- or
#: analysis-level). Anything else is routed through ``warnings`` with a
#: did-you-mean hint instead of being collected silently.
KNOWN_DIRECTIVES = frozenset(
    [
        "entry",
        "legal_mode",
        "mode",
        "recursive",
        "fixed",
        "cost",
        "match_prob",
        "domain_size",
        "table",
        "op",
        "dynamic",
        "discontiguous",
        "multifile",
    ]
)


@dataclass
class Clause:
    """One stored clause: ``head :- body`` (body is ``true`` for facts)."""

    head: Term
    body: Term
    #: Position within its predicate, in source order.
    index: int = 0

    @property
    def indicator(self) -> Indicator:
        return functor_indicator(self.head)

    @property
    def is_fact(self) -> bool:
        body = deref(self.body)
        return isinstance(body, Atom) and body.name == "true"

    def rename(self) -> Tuple[Term, Term]:
        """A fresh variant (head, body) with variables renamed apart."""
        mapping: Dict[int, Var] = {}
        return rename_term(self.head, mapping), rename_term(self.body, mapping)

    def to_term(self) -> Term:
        """The clause as a ``:-``/2 term (or bare head for facts)."""
        if self.is_fact:
            return self.head
        return Struct(":-", (self.head, self.body))


def split_clause(term: Term) -> Tuple[Term, Term]:
    """Split a clause term into (head, body); facts get body ``true``."""
    term = deref(term)
    if isinstance(term, Struct) and term.name == ":-" and term.arity == 2:
        return term.args[0], term.args[1]
    return term, Atom("true")


def body_goals(body: Term) -> List[Term]:
    """Flatten a conjunction into its top-level goals.

    Only ``','/2`` is flattened; disjunctions and if-then-elses remain
    single (compound) goals, which is what the block partitioner wants.
    """
    goals: List[Term] = []
    stack = [body]
    while stack:
        current = deref(stack.pop())
        if isinstance(current, Struct) and current.name == "," and current.arity == 2:
            stack.append(current.args[1])
            stack.append(current.args[0])
        else:
            goals.append(current)
    return goals


def goals_to_body(goals: Iterable[Term]) -> Term:
    """Rebuild a conjunction term from a goal list (``true`` if empty)."""
    items = list(goals)
    if not items:
        return Atom("true")
    body = items[-1]
    for goal in reversed(items[:-1]):
        body = Struct(",", (goal, body))
    return body


def _unknown_directive_warning(name: str) -> str:
    """One warning line for an unrecognized directive functor, with a
    did-you-mean hint when a known directive is a close misspelling."""
    import difflib

    message = f"unknown directive: {name}"
    close = difflib.get_close_matches(name, KNOWN_DIRECTIVES, n=1, cutoff=0.6)
    if close:
        message += f" (did you mean '{close[0]}'?)"
    return message


def first_arg_key(term: Term):
    """Index key of a call/head argument; None when unindexable (var).

    Shared between the clause index buckets and the compiled-clause
    head fingerprints (:mod:`repro.prolog.compile`): two concrete keys
    that differ can never unify, so either consumer may skip the
    attempt outright. Representation (internal, chosen for cheap
    construction on the per-call hot path): atoms key as the interned
    :class:`Atom` itself, numbers as ``(type, value)`` (so ``1`` and
    ``1.0`` stay distinct), compounds as ``(name, arity)``. The three
    families cannot collide: a ``(type, value)`` pair never equals a
    ``(str, int)`` pair, and an ``Atom`` equals only itself.
    """
    term = deref(term)
    if isinstance(term, Atom):
        return term
    if isinstance(term, Var):
        return None
    if is_number(term):
        return (type(term), term)
    assert isinstance(term, Struct)
    return (term.name, term.arity)


#: Backwards-compatible private alias (pre-compile-layer name).
_first_arg_key = first_arg_key


class Database:
    """All clauses of a program, grouped by predicate.

    ``indexing=True`` enables argument indexing: for a call whose
    indexed argument is bound, only clauses whose head could unify on
    that argument are attempted (a variable head argument matches any
    key). ``index_argument`` selects the position:

    * ``"multi"`` (default) — multi-argument discrimination indexing:
      the database keeps one bucket index per argument position (built
      lazily, only for positions a call actually binds) and each call
      is answered from the most *selective* bucket among its bound
      arguments — the generalization of the paper's §III-A "proper
      arguments" engine to per-call instantiation modes;
    * ``1`` (or any 1-based position) — classic first-argument
      indexing, what the paper's engines (C-Prolog, SB-Prolog-style)
      do;
    * ``"auto"`` — per predicate, one fixed most-selective argument
      (most distinct keys among the heads), used by the indexing
      ablation.

    ``scan_plans=True`` additionally lets the compiled engine bulk-skip
    fingerprint-rejected clauses on *unnarrowed* scans (``indexing=False``
    or an unindexable call) without a per-clause Python loop; the
    skipped clauses' counters are still charged exactly as if each had
    been attempted (see :meth:`scan_plan`).
    """

    def __init__(
        self,
        indexing: bool = True,
        index_argument: Union[int, str] = "multi",
        scan_plans: bool = True,
    ):
        self.indexing = indexing
        if index_argument not in ("auto", "multi") and (
            not isinstance(index_argument, int) or index_argument < 1
        ):
            raise ValueError(f"bad index_argument: {index_argument!r}")
        self.index_argument = index_argument
        #: Bulk fast-reject plans enabled (an ablation knob, like
        #: :attr:`indexing`: ``benchmarks/engine_bench.py`` measures the
        #: unindexed-scan speedup by toggling it).
        self.scan_plans = scan_plans
        self._predicates: Dict[Indicator, List[Clause]] = {}
        self._index: Dict[Indicator, Dict[Optional[Tuple], List[Clause]]] = {}
        self._index_position: Dict[Indicator, int] = {}
        #: Multi-argument mode: per predicate, per argument position,
        #: key -> clauses buckets; positions are indexed lazily.
        self._multi_index: Dict[Indicator, Dict[int, Dict[Optional[Tuple], List[Clause]]]] = {}
        #: Cached bulk fast-reject plans per predicate (see scan_plan).
        self._scan_plans: Dict[Indicator, Dict] = {}
        #: Compiled skeletons per predicate (see
        #: :mod:`repro.prolog.compile`), invalidated wholesale whenever
        #: :attr:`generation` moves past :attr:`_compiled_generation`.
        self._compiled: Dict[Indicator, List] = {}
        self._compiled_generation = 0
        self.directives: List[Term] = []
        #: Predicates declared ``:- table name/arity`` (see
        #: :mod:`repro.prolog.tabling`).
        self.tabled: set = set()
        #: Human-readable notes about directives we could not interpret.
        self.warnings: List[str] = []
        #: Bumped on every clause mutation; lets caches (e.g. the
        #: engine's table store) notice the program changed.
        self.generation = 0
        #: Per-predicate generation watermark: the :attr:`generation`
        #: value of each predicate's most recent mutation. Lets
        #: generation-scoped caches (the reorderer's AnalysisContext)
        #: identify *which* predicates changed instead of invalidating
        #: wholesale.
        self._predicate_marks: Dict[Indicator, int] = {}
        #: Optional event bus (index hit/miss telemetry); None = fast path.
        self.events = None
        # Per-database operator table: ':- op/3' directives extend it,
        # so queries and re-emitted source parse/print consistently.
        from .reader.operators import standard_operators

        self.operators = standard_operators()

    # -- construction ---------------------------------------------------

    @classmethod
    def from_source(
        cls, source: str, indexing: bool = True, **kwargs
    ) -> "Database":
        """Build a database from Prolog source text.

        ``kwargs`` forward to the constructor (``index_argument``,
        ``scan_plans``).
        """
        database = cls(indexing=indexing, **kwargs)
        database.consult(source)
        return database

    def consult(self, source: str) -> None:
        """Add all clauses/directives from ``source`` (op/3 honoured)."""
        from .reader.parser import Parser

        for term in Parser(source, self.operators).read_program():
            self.add_term(term)

    def add_term(self, term: Term) -> None:
        """Add one parsed clause or directive term.

        Directives are collected for the analysis layer; ``table``
        directives additionally populate :attr:`tabled`, and directives
        whose functor is not in :data:`KNOWN_DIRECTIVES` produce a
        warning (with a did-you-mean hint for close misspellings).
        """
        term = deref(term)
        if isinstance(term, Struct) and term.name == ":-" and term.arity == 1:
            directive = deref(term.args[0])
            self.directives.append(directive)
            name = (
                directive.name
                if isinstance(directive, (Atom, Struct))
                else None
            )
            if name == "table":
                self._register_table_directive(directive)
            elif name is not None and name not in KNOWN_DIRECTIVES:
                self.warnings.append(_unknown_directive_warning(name))
            return
        head, body = split_clause(term)
        head = deref(head)
        if not isinstance(head, (Atom, Struct)):
            raise PrologSyntaxError(f"invalid clause head: {head!r}")
        self.add_clause(Clause(head, body))

    def _register_table_directive(self, directive: Term) -> None:
        """Record the predicates named by one ``table`` directive.

        Accepts ``name/arity``, comma-conjunctions, and list syntax;
        malformed specifications warn instead of failing the consult.
        """
        if not isinstance(directive, Struct) or directive.arity != 1:
            self.warnings.append(
                "table directive expects a name/arity argument"
            )
            return
        stack = [directive.args[0]]
        while stack:
            spec = deref(stack.pop())
            if isinstance(spec, Struct) and spec.name in (",", ".") and spec.arity == 2:
                stack.append(spec.args[1])
                stack.append(spec.args[0])
                continue
            if isinstance(spec, Atom) and spec.name == "[]":
                continue
            if isinstance(spec, Struct) and spec.name == "/" and spec.arity == 2:
                name = deref(spec.args[0])
                arity = deref(spec.args[1])
                if isinstance(name, Atom) and isinstance(arity, int) and arity >= 0:
                    self.tabled.add((name.name, arity))
                    continue
            self.warnings.append(
                f"table directive: expected name/arity, got {spec!r}"
            )

    def add_clause(self, clause: Clause) -> None:
        """Append a clause to its predicate (source order preserved)."""
        clauses = self._predicates.setdefault(clause.indicator, [])
        clause.index = len(clauses)
        clauses.append(clause)
        self.generation += 1
        self._predicate_marks[clause.indicator] = self.generation
        self._index.pop(clause.indicator, None)  # invalidate
        self._index_position.pop(clause.indicator, None)
        self._multi_index.pop(clause.indicator, None)
        self._scan_plans.pop(clause.indicator, None)

    def replace_predicate(self, indicator: Indicator, clauses: List[Clause]) -> None:
        """Replace all clauses of a predicate (used by the reorderer)."""
        renumbered = []
        for position, clause in enumerate(clauses):
            renumbered.append(Clause(clause.head, clause.body, position))
        self._predicates[indicator] = renumbered
        self.generation += 1
        self._predicate_marks[indicator] = self.generation
        self._index.pop(indicator, None)
        self._index_position.pop(indicator, None)
        self._multi_index.pop(indicator, None)
        self._scan_plans.pop(indicator, None)

    def remove_predicate(self, indicator: Indicator) -> None:
        """Delete a predicate and its index entries."""
        self._predicates.pop(indicator, None)
        self.generation += 1
        self._predicate_marks.pop(indicator, None)
        self._index.pop(indicator, None)
        self._index_position.pop(indicator, None)
        self._multi_index.pop(indicator, None)
        self._scan_plans.pop(indicator, None)

    # -- queries ---------------------------------------------------------

    def predicates(self) -> List[Indicator]:
        """All predicate indicators, in first-definition order."""
        return list(self._predicates)

    def clauses(self, indicator: Indicator) -> List[Clause]:
        """All clauses of a predicate, in order (empty if undefined)."""
        return list(self._predicates.get(indicator, ()))

    def defines(self, indicator: Indicator) -> bool:
        """Is the predicate defined by at least one clause?"""
        return indicator in self._predicates

    def predicate_marks(self) -> Dict[Indicator, int]:
        """Generation watermark per defined predicate.

        Comparing two snapshots of this map tells an incremental
        consumer exactly which predicates were added, edited, or removed
        between two :attr:`generation` values."""
        return {
            indicator: self._predicate_marks.get(indicator, 0)
            for indicator in self._predicates
        }

    def compiled_program(self, indicator: Indicator) -> List:
        """Compiled skeletons for *every* clause of ``indicator``.

        The list is parallel to the predicate's full clause list, so a
        clause selected by :meth:`matching_clauses` finds its skeleton
        at ``program[clause.index]``. The cache is invalidated
        wholesale via the existing :attr:`generation` counter: any
        mutation (:meth:`add_clause`, :meth:`replace_predicate`,
        :meth:`remove_predicate`) bumps it, and the next lookup
        recompiles lazily — the same discipline the tabling store uses.
        """
        if self._compiled_generation != self.generation:
            self._compiled.clear()
            self._compiled_generation = self.generation
        program = self._compiled.get(indicator)
        if program is None:
            from .compile import compile_clause

            program = [
                compile_clause(clause)
                for clause in self._predicates.get(indicator, ())
            ]
            self._compiled[indicator] = program
        return program

    def matching_clauses(self, goal: Term) -> List[Clause]:
        """Clauses worth trying for ``goal``, respecting indexing."""
        indicator = functor_indicator(goal)
        if indicator[1]:
            goal = deref(goal)
            assert isinstance(goal, Struct)
            args: Tuple[Term, ...] = goal.args
        else:
            args = ()
        return self.matching_for(indicator, args)

    def matching_for(
        self,
        indicator: Indicator,
        args: Tuple[Term, ...],
        keys: Optional[Tuple[object, ...]] = None,
    ) -> List[Clause]:
        """Clause lookup from an indicator and argument tuple.

        The goal-term-free entry point the bytecode VM calls: the VM
        holds call arguments as a tuple and never builds a ``Struct``
        just to look up clauses. ``matching_clauses`` delegates here,
        so both engines share one indexing implementation. ``keys``,
        when given, is the caller's precomputed ``first_arg_key`` per
        argument (the VM already has them for head fingerprinting) and
        skips recomputing them here.
        """
        clauses = self._predicates.get(indicator)
        if clauses is None:
            return []
        if not self.indexing or indicator[1] == 0:
            if self.events is not None:
                self.events.emit(
                    IndexEvent(indicator, False, len(clauses), len(clauses))
                )
            return clauses
        if self.index_argument == "multi":
            return self._matching_multi(indicator, args, clauses, keys)
        buckets = self._index.get(indicator)
        if buckets is None:
            buckets = self._build_index(indicator, clauses)
        position = self._index_position[indicator]
        key = (
            keys[position] if keys is not None
            else _first_arg_key(args[position])
        )
        if key is None:  # unbound call argument: every clause may match
            if self.events is not None:
                self.events.emit(
                    IndexEvent(indicator, False, len(clauses), len(clauses))
                )
            return clauses
        matched = buckets.get(key)
        unindexed = buckets.get(None)
        if matched is None:
            result: List[Clause] = unindexed or []
        elif not unindexed:
            result = matched
        else:
            # Merge variable-headed clauses back in source order.
            result = sorted(matched + unindexed, key=lambda c: c.index)
        if self.events is not None:
            self.events.emit(
                IndexEvent(indicator, True, len(result), len(clauses))
            )
        return result

    def _matching_multi(
        self,
        indicator: Indicator,
        args: Tuple[Term, ...],
        clauses: List[Clause],
        keys: Optional[Tuple[object, ...]] = None,
    ) -> List[Clause]:
        """Multi-argument lookup: the most selective bound position wins.

        Every bound call argument probes that position's bucket index
        (built lazily on first probe); the smallest candidate set is
        returned, with variable-headed clauses merged back in source
        order. A call with no bound argument reports an index miss and
        scans every clause, exactly like the single-position modes.
        """
        positions = self._multi_index.get(indicator)
        if positions is None:
            positions = {}
            self._multi_index[indicator] = positions
        total = len(clauses)
        best = None
        best_size = total + 1
        best_position = -1
        for position, arg in enumerate(args):
            key = keys[position] if keys is not None else _first_arg_key(arg)
            if key is None:
                continue
            buckets = positions.get(position)
            if buckets is None:
                buckets = self._build_position_index(clauses, position)
                positions[position] = buckets
            matched = buckets.get(key)
            unindexed = buckets.get(None)
            size = (len(matched) if matched else 0) + (
                len(unindexed) if unindexed else 0
            )
            if size < best_size:
                best = (matched, unindexed)
                best_size = size
                best_position = position
                if size == 0:
                    break
        if best is None:  # no bound argument: every clause may match
            if self.events is not None:
                self.events.emit(IndexEvent(indicator, False, total, total))
            return clauses
        matched, unindexed = best
        if matched is None:
            result: List[Clause] = unindexed or []
        elif not unindexed:
            result = matched
        else:
            # Merge variable-headed clauses back in source order.
            result = sorted(matched + unindexed, key=lambda c: c.index)
        if self.events is not None:
            self.events.emit(
                IndexEvent(
                    indicator,
                    True,
                    len(result),
                    total,
                    position=best_position,
                    selectivity=(len(result) / total) if total else 0.0,
                )
            )
        return result

    @staticmethod
    def _build_position_index(
        clauses: List[Clause], position: int
    ) -> Dict[Optional[Tuple], List[Clause]]:
        buckets: Dict[Optional[Tuple], List[Clause]] = {}
        for clause in clauses:
            head = deref(clause.head)
            assert isinstance(head, Struct)
            buckets.setdefault(
                _first_arg_key(head.args[position]), []
            ).append(clause)
        return buckets

    def scan_plan(self, indicator: Indicator, clauses: List[Clause], key):
        """Bulk fast-reject plan for a full-predicate scan, or ``None``.

        Applies only when ``clauses`` is the *unnarrowed* stored list
        (``indexing=False``, or an index mode that could not narrow this
        call) and the call's first argument is bound to ``key``. The
        plan is a tuple of ``(skipped, clause)`` steps — ``skipped``
        clauses whose head first-argument fingerprint can never unify
        with ``key``, followed by one survivor — ending with a
        ``(trailing_skipped, None)`` sentinel. The compiled engine
        charges each skipped clause's counters in one bulk update
        (identical totals to attempting it) instead of iterating
        per clause; ``None`` means no clause can be skipped (or plans
        are disabled) and the plain loop should run.
        """
        if not self.scan_plans:
            return None
        if clauses is not self._predicates.get(indicator):
            return None  # already narrowed by the index
        plans = self._scan_plans.get(indicator)
        if plans is None:
            plans = {}
            self._scan_plans[indicator] = plans
        if key in plans:
            return plans[key]
        steps: List[Tuple[int, Optional[Clause]]] = []
        skipped = 0
        for clause in clauses:
            head = deref(clause.head)
            assert isinstance(head, Struct)
            head_key = _first_arg_key(head.args[0])
            if head_key is None or head_key == key:
                steps.append((skipped, clause))
                skipped = 0
            else:
                skipped += 1
        if len(steps) == len(clauses):
            plan = None  # nothing rejectable: the plan buys nothing
        else:
            steps.append((skipped, None))
            plan = tuple(steps)
        plans[key] = plan
        return plan

    def _choose_index_position(
        self, indicator: Indicator, clauses: List[Clause]
    ) -> int:
        """0-based argument position to index this predicate on."""
        if self.index_argument != "auto":
            return min(int(self.index_argument), indicator[1]) - 1
        best_position, best_selectivity = 0, -1
        for position in range(indicator[1]):
            keys = set()
            for clause in clauses:
                head = deref(clause.head)
                assert isinstance(head, Struct)
                keys.add(_first_arg_key(head.args[position]))
            # A None key (variable argument) matches everything: it
            # hurts selectivity, so count distinct concrete keys only.
            selectivity = len(keys - {None}) - (10 * (None in keys))
            if selectivity > best_selectivity:
                best_position, best_selectivity = position, selectivity
        return best_position

    def _build_index(
        self, indicator: Indicator, clauses: List[Clause]
    ) -> Dict[Optional[Tuple], List[Clause]]:
        position = self._choose_index_position(indicator, clauses)
        self._index_position[indicator] = position
        buckets: Dict[Optional[Tuple], List[Clause]] = {}
        for clause in clauses:
            head = deref(clause.head)
            assert isinstance(head, Struct)
            key = _first_arg_key(head.args[position])
            buckets.setdefault(key, []).append(clause)
        self._index[indicator] = buckets
        return buckets

    # -- whole-program views ----------------------------------------------

    def all_clauses(self) -> Iterator[Clause]:
        """Every stored clause, predicate by predicate."""
        for clauses in self._predicates.values():
            yield from clauses

    def to_terms(self) -> List[Term]:
        """Every clause as a term, predicate by predicate, in order."""
        return [clause.to_term() for clause in self.all_clauses()]

    def copy(self) -> "Database":
        """A shallow copy sharing Clause objects (they are immutable in use)."""
        other = Database(
            indexing=self.indexing,
            index_argument=self.index_argument,
            scan_plans=self.scan_plans,
        )
        for indicator, clauses in self._predicates.items():
            other._predicates[indicator] = list(clauses)
        other.directives = list(self.directives)
        other.tabled = set(self.tabled)
        other.warnings = list(self.warnings)
        other.operators = self.operators
        # The copy starts at generation 0 with every predicate unmarked,
        # matching a database consulted from scratch.
        other._predicate_marks = dict.fromkeys(other._predicates, 0)
        return other

    def snapshot(self) -> "Database":
        """A generation-preserving copy for snapshot-isolated readers.

        Unlike :meth:`copy` (which models "consulted from scratch" and
        resets every watermark), a snapshot keeps :attr:`generation`
        and the per-predicate marks intact, so generation-scoped
        consumers (the serving layer's :class:`repro.serve.Snapshot`
        handles, the incremental pipeline) can compare two snapshots'
        :meth:`predicate_marks` directly. Clause objects are shared —
        they are immutable in use (execution always renames or
        instantiates from skeletons) — so the copy is O(predicates),
        cheap enough to take per update.
        """
        other = self.copy()
        other.generation = self.generation
        other._predicate_marks = dict(self._predicate_marks)
        return other

    def __contains__(self, indicator: Indicator) -> bool:
        return indicator in self._predicates

    def __len__(self) -> int:
        return sum(len(c) for c in self._predicates.values())
