"""A complete Prolog substrate: reader, terms, unification, database,
and an instrumented depth-first engine.

This package is the execution substrate the paper's experiments run on
(their instrumented C-Prolog 1.5 / SB-Prolog 2.3). The public surface:

>>> from repro.prolog import Engine
>>> engine = Engine.from_source("parent(tom, bob). parent(bob, ann).")
>>> [s["X"].name for s in engine.ask("parent(tom, X)")]
['bob']
"""

from .compile import CompiledClause, compile_clause, flatten_conjunction
from .database import (
    Clause,
    Database,
    body_goals,
    first_arg_key,
    goals_to_body,
    split_clause,
)
from .engine import Engine, Frame, Solution
from .metrics import Metrics
from .reader.operators import OperatorTable, standard_operators
from .reader.parser import Parser, parse_program, parse_term, parse_terms
from .terms import (
    Atom,
    Struct,
    Term,
    Var,
    copy_term,
    deref,
    functor_indicator,
    indicator_str,
    is_number,
    list_to_python,
    make_list,
    structural_eq,
    term_is_ground,
    term_ordering_key,
    term_variables,
)
from .unify import Trail, unify
from .vm import Machine, disassemble_database, disassemble_predicate, solve_vm
from .writer import clause_to_string, program_to_string, term_to_string

__all__ = [
    "Atom",
    "Clause",
    "CompiledClause",
    "Database",
    "Engine",
    "Frame",
    "Machine",
    "Metrics",
    "OperatorTable",
    "Parser",
    "Solution",
    "Struct",
    "Term",
    "Trail",
    "Var",
    "body_goals",
    "clause_to_string",
    "compile_clause",
    "copy_term",
    "deref",
    "disassemble_database",
    "disassemble_predicate",
    "first_arg_key",
    "flatten_conjunction",
    "functor_indicator",
    "goals_to_body",
    "indicator_str",
    "is_number",
    "list_to_python",
    "make_list",
    "parse_program",
    "parse_term",
    "parse_terms",
    "program_to_string",
    "solve_vm",
    "split_clause",
    "standard_operators",
    "structural_eq",
    "term_is_ground",
    "term_ordering_key",
    "term_to_string",
    "term_variables",
    "unify",
]
