"""Prolog term representation.

Terms are the universal data structure of Prolog. This module defines the
four term classes used throughout the reproduction:

* :class:`Atom` — interned symbolic constants (``foo``, ``[]``, ``','``).
* :class:`Var` — logic variables with an in-place binding slot (``ref``)
  that the engine binds and un-binds via a trail (see
  :mod:`repro.prolog.unify`).
* :class:`Struct` — compound terms ``name(arg1, ..., argN)``.
* Python ``int`` and ``float`` — Prolog numbers are represented directly
  by native numbers; no wrapper class is needed.

Lists are ordinary structures built from ``'.'/2`` cells terminated by the
atom ``[]``, exactly as in DEC-10 Prolog. Helper constructors and
destructors (:func:`make_list`, :func:`list_to_python`) are provided.

Design notes
------------
Variables are *mutable*: binding writes the bound term into ``Var.ref``.
This mirrors the structure-sharing representation of real Prolog engines
and makes backtracking cheap (pop the trail, reset ``ref`` to ``None``)
at the price of requiring :func:`deref` before inspecting any term.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Term",
    "Atom",
    "Var",
    "Struct",
    "deref",
    "is_number",
    "is_callable_term",
    "is_list_cell",
    "make_list",
    "list_to_python",
    "iter_list",
    "is_proper_list",
    "term_variables",
    "term_is_ground",
    "rename_term",
    "copy_term",
    "structural_eq",
    "term_ordering_key",
    "functor_indicator",
    "EMPTY_LIST",
    "TRUE",
    "FAIL",
    "CUT",
    "indicator_str",
]


class Atom:
    """An interned Prolog atom.

    Atoms are interned: ``Atom('foo') is Atom('foo')`` always holds, so
    identity comparison is sufficient (and fast) everywhere in the engine.
    """

    __slots__ = ("name",)
    _interned: Dict[str, "Atom"] = {}

    def __new__(cls, name: str) -> "Atom":
        atom = cls._interned.get(name)
        if atom is None:
            atom = object.__new__(cls)
            atom.name = name
            cls._interned[name] = atom
        return atom

    def __repr__(self) -> str:
        return f"Atom({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __getnewargs__(self) -> tuple:
        # Unpickling routes through __new__, so a pickled atom re-interns
        # (and preserves identity equality) in the receiving process.
        return (self.name,)

    def __getstate__(self) -> dict:
        return {}

    def __setstate__(self, state) -> None:
        pass

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return self is other

    # Interning makes copies unnecessary; deepcopy must preserve identity.
    def __copy__(self) -> "Atom":
        return self

    def __deepcopy__(self, memo: dict) -> "Atom":
        return self


class Var:
    """A logic variable.

    ``ref`` is ``None`` while the variable is free, and holds the bound
    term (possibly another variable) once unified. ``name`` is only for
    display; two distinct variables may share a name after renaming.
    """

    __slots__ = ("name", "ref")
    _counter = itertools.count()

    def __init__(self, name: Optional[str] = None):
        if name is None:
            name = f"_G{next(Var._counter)}"
        self.name = name
        self.ref: Optional[Term] = None

    def __repr__(self) -> str:
        if self.ref is None:
            return f"Var({self.name})"
        return f"Var({self.name}={self.ref!r})"

    def __str__(self) -> str:
        target = deref(self)
        if isinstance(target, Var):
            return target.name
        return str(target)


class Struct:
    """A compound term ``name(args...)``.

    ``name`` is a plain string (not an Atom) for cheap comparison and
    hashing of the functor; ``args`` is a tuple of terms.
    """

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence["Term"]):
        if not args:
            raise ValueError(
                f"Struct {name!r} must have at least one argument; use Atom for arity 0"
            )
        self.name = name
        self.args = tuple(args)

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def indicator(self) -> Tuple[str, int]:
        """The predicate indicator ``(name, arity)`` of this term."""
        return (self.name, len(self.args))

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"Struct({self.name!r}, [{inner}])"

    def __str__(self) -> str:
        # Render via the writer so lists and operators look like source
        # Prolog (imported lazily to avoid a module cycle).
        from .writer import term_to_string

        return term_to_string(self)


Term = Union[Atom, Var, Struct, int, float]

#: The empty list atom ``[]``.
EMPTY_LIST = Atom("[]")
#: The atom ``true``.
TRUE = Atom("true")
#: The atom ``fail``.
FAIL = Atom("fail")
#: The cut atom ``!``.
CUT = Atom("!")

#: Functor name of list cells.
LIST_FUNCTOR = "."


def deref(term: Term) -> Term:
    """Follow variable bindings until reaching a free var or non-var term."""
    while isinstance(term, Var) and term.ref is not None:
        term = term.ref
    return term


def is_number(term: Term) -> bool:
    """True when ``term`` is a Prolog number (int or float, not bool)."""
    return isinstance(term, (int, float)) and not isinstance(term, bool)


def is_callable_term(term: Term) -> bool:
    """True when ``term`` can appear as a goal (atom or compound)."""
    return isinstance(term, (Atom, Struct))


def is_list_cell(term: Term) -> bool:
    """True when ``term`` is a ``'.'/2`` list cell."""
    return isinstance(term, Struct) and term.name == LIST_FUNCTOR and term.arity == 2


def make_list(items: Iterable[Term], tail: Term = EMPTY_LIST) -> Term:
    """Build a Prolog list term from ``items``, ending in ``tail``."""
    result = tail
    for item in reversed(list(items)):
        result = Struct(LIST_FUNCTOR, (item, result))
    return result


def iter_list(term: Term) -> Iterator[Term]:
    """Yield the elements of a proper Prolog list.

    Raises ``ValueError`` on improper (open- or non-list-terminated)
    lists, after yielding the proper prefix.
    """
    term = deref(term)
    while is_list_cell(term):
        yield term.args[0]
        term = deref(term.args[1])
    if term is not EMPTY_LIST:
        raise ValueError(f"improper list tail: {term!r}")


def list_to_python(term: Term) -> List[Term]:
    """Convert a proper Prolog list to a Python list of its elements."""
    return list(iter_list(term))


def is_proper_list(term: Term) -> bool:
    """True when ``term`` is a nil-terminated list with no free tail."""
    term = deref(term)
    while is_list_cell(term):
        term = deref(term.args[1])
    return term is EMPTY_LIST


def term_variables(term: Term) -> List[Var]:
    """All distinct free variables in ``term``, in first-occurrence order."""
    seen: Dict[int, Var] = {}
    order: List[Var] = []
    stack = [term]
    while stack:
        current = deref(stack.pop())
        if isinstance(current, Var):
            if id(current) not in seen:
                seen[id(current)] = current
                order.append(current)
        elif isinstance(current, Struct):
            stack.extend(reversed(current.args))
    return order


def term_is_ground(term: Term) -> bool:
    """True when ``term`` contains no free variables."""
    stack = [term]
    while stack:
        current = deref(stack.pop())
        if isinstance(current, Var):
            return False
        if isinstance(current, Struct):
            stack.extend(current.args)
    return True


def rename_term(term: Term, mapping: Dict[int, Var]) -> Term:
    """Copy ``term``, consistently replacing free variables with fresh ones.

    ``mapping`` maps ``id(old_var)`` to the fresh variable, so a sequence
    of calls sharing the same mapping renames consistently across terms
    (e.g. across the head and body of one clause).
    """
    term = deref(term)
    if isinstance(term, Var):
        fresh = mapping.get(id(term))
        if fresh is None:
            fresh = Var(term.name)
            mapping[id(term)] = fresh
        return fresh
    if isinstance(term, Struct):
        return Struct(term.name, tuple(rename_term(a, mapping) for a in term.args))
    return term


def copy_term(term: Term) -> Term:
    """A fresh copy of ``term`` with all free variables renamed apart."""
    return rename_term(term, {})


def structural_eq(left: Term, right: Term) -> bool:
    """Structural equality after dereferencing (Prolog's ``==``)."""
    left, right = deref(left), deref(right)
    if isinstance(left, Var) or isinstance(right, Var):
        return left is right
    if isinstance(left, Atom) or isinstance(right, Atom):
        return left is right
    if is_number(left) or is_number(right):
        return (
            is_number(left)
            and is_number(right)
            and type(left) is type(right)
            and left == right
        )
    if isinstance(left, Struct) and isinstance(right, Struct):
        if left.name != right.name or left.arity != right.arity:
            return False
        return all(structural_eq(a, b) for a, b in zip(left.args, right.args))
    return False


def term_ordering_key(term: Term) -> tuple:
    """A sort key implementing the standard order of terms.

    Standard order: Var < Number < Atom < Struct; variables by identity,
    numbers by value, atoms alphabetically, structs by arity then name
    then arguments left to right.
    """
    term = deref(term)
    if isinstance(term, Var):
        return (0, id(term))
    if is_number(term):
        return (1, float(term), 0 if isinstance(term, float) else 1)
    if isinstance(term, Atom):
        return (2, term.name)
    assert isinstance(term, Struct)
    return (3, term.arity, term.name, tuple(term_ordering_key(a) for a in term.args))


def functor_indicator(term: Term) -> Tuple[str, int]:
    """The ``(name, arity)`` indicator of a callable term."""
    term = deref(term)
    if isinstance(term, Atom):
        return (term.name, 0)
    if isinstance(term, Struct):
        return term.indicator
    raise TypeError(f"not a callable term: {term!r}")


def indicator_str(indicator: Tuple[str, int]) -> str:
    """Render ``(name, arity)`` as the conventional ``name/arity`` string."""
    name, arity = indicator
    return f"{name}/{arity}"
