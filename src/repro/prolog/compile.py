"""Clause compilation: slot-based skeletons with lazy body materialization.

The paper's execution model charges one clause *try* per head attempted
(the ``c_i`` costs its Markov model consumes), so the engine's clause-try
loop is the hot path that every calibration, ablation, and benchmark
ultimately measures. The interpreted loop paid a full recursive
:func:`~repro.prolog.terms.rename_term` copy of head *and* body for every
attempt — even when head unification failed immediately.

This module applies the WAM's core insight (Warren 1983) at the Python
level: each :class:`~repro.prolog.database.Clause` is compiled **once**
into a :class:`CompiledClause` skeleton where

* every distinct clause variable becomes a dense integer **slot**;
* the head becomes per-argument **get specs** (the WAM's get
  instructions): fresh-variable arguments bind directly without
  entering the general unifier, and the head term itself is never
  rebuilt — ``matching_clauses`` already guarantees the functor;
* body goals become flat **build programs** — postorder instruction
  tuples executed iteratively over one argument stack, so
  instantiation never recurses;
* **ground subterms are shared**, not copied (they are immutable in
  use), so a ground fact head costs *zero* allocation per attempt;
* the **body is materialized lazily** — only after the head unifies —
  so failed attempts never copy the body at all;
* conjunction chains are flattened at compile time into a goal list,
  letting the engine run one flat loop instead of a nested
  ``_solve_conjunction`` generator ladder;
* the head's per-argument **fingerprints** (the index keys shared with
  the database's bucket indexes) are cached so calls whose bound
  arguments cannot match skip unification entirely.

Compiled skeletons are cached per predicate on the
:class:`~repro.prolog.database.Database` and invalidated wholesale via
its ``generation`` counter (see ``Database.compiled_program``).

Instruction encoding
--------------------
Each build program is a tuple of uniform 3-tuples ``(op, a, b)``:

=====  ==========  ====================================================
op     operands    effect
=====  ==========  ====================================================
``0``  term, --    push a shared ground (sub)term
``1``  slot, --    push the frame's variable for ``slot``
``2``  name, n     pop ``n`` args, push ``Struct(name, args)``
=====  ==========  ====================================================

A skeleton whose term is entirely ground compiles to *no* program at
all: the stored term itself is reused on every instantiation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .terms import Atom, Struct, Term, Var, deref, term_is_ground
from .unify import unify

__all__ = ["CompiledClause", "compile_clause", "flatten_conjunction"]

#: Instruction opcodes (module-private names kept short for the hot loop).
_OP_CONST = 0
_OP_SLOT = 1
_OP_BUILD = 2

#: Shared empty slot frame for clauses with no variables (facts).
_NO_SLOTS: Tuple = ()

#: Raw allocator bypassing ``Struct.__init__`` validation in the hot loop.
_new_struct = Struct.__new__

#: A build program: tuple of ``(op, a, b)`` instructions, or ``None``
#: when the term is ground and ``const`` is shared instead.
_Code = Optional[Tuple[Tuple[int, object, int], ...]]


def flatten_conjunction(body: Term) -> List[Term]:
    """Flatten a (possibly nested) ``','``/2 chain into its goal list.

    Mirrors :func:`repro.prolog.database.body_goals` (duplicated here to
    keep this module importable by the database without a cycle): only
    conjunctions are flattened; disjunctions, if-then-elses, and
    variable goals stay single, and are dereferenced exactly as the
    recursive solver would have dereferenced them on entry.
    """
    goals: List[Term] = []
    stack = [body]
    while stack:
        current = deref(stack.pop())
        if (
            isinstance(current, Struct)
            and current.name == ","
            and len(current.args) == 2
        ):
            stack.append(current.args[1])
            stack.append(current.args[0])
        else:
            goals.append(current)
    return goals


def _compile_term(
    term: Term, slots: Dict[int, int], names: List[str]
) -> Tuple[_Code, Optional[Term]]:
    """Compile one term into ``(code, const)``.

    Ground terms return ``(None, term)`` — shared, never copied.
    Non-ground terms return a postorder build program; ``slots`` maps
    ``id(var)`` to its slot index and grows as new variables appear (so
    head and body compiled with the same maps share slots).
    """
    term = deref(term)
    if term_is_ground(term):
        return None, term
    code: List[Tuple[int, object, int]] = []

    def emit(node: Term) -> None:
        node = deref(node)
        if isinstance(node, Var):
            index = slots.get(id(node))
            if index is None:
                index = len(names)
                slots[id(node)] = index
                names.append(node.name)
            code.append((_OP_SLOT, index, 0))
            return
        if isinstance(node, Struct) and not term_is_ground(node):
            for arg in node.args:
                emit(arg)
            code.append((_OP_BUILD, node.name, len(node.args)))
            return
        code.append((_OP_CONST, node, 0))

    emit(term)
    return tuple(code), None


def _run(code: Tuple[Tuple[int, object, int], ...], frame) -> Term:
    """Execute a build program over ``frame`` (the flat ``Var`` list)."""
    stack: List[Term] = []
    push = stack.append
    for op, a, b in code:
        if op == _OP_SLOT:
            push(frame[a])
        elif op == _OP_CONST:
            push(a)
        else:
            struct = _new_struct(Struct)
            struct.name = a
            struct.args = tuple(stack[-b:])
            del stack[-b:]
            push(struct)
    return stack[-1]


#: Head-argument spec tags (see :meth:`CompiledClause.unify_head`).
_ARG_FRESH = 0
_ARG_CONST = 1
_ARG_SLOT = 2
_ARG_BUILD = 3


class CompiledClause:
    """One clause compiled to a slot-numbered skeleton.

    Attributes:

    * ``var_names`` — display name per slot; ``len(var_names)`` is the
      frame size allocated per attempt.
    * ``head_args`` — per-argument head unification specs (WAM "get"
      instructions): ``(0, slot)`` first occurrence of a variable (a
      direct bind, no general unification), ``(1, term)`` a shared
      ground argument, ``(2, slot)`` a repeated variable, ``(3, code)``
      a compound containing variables, built then unified.
    * ``head_keys`` — per-argument index keys (the same fingerprints
      ``Database``'s bucket indexes use), ``None`` per variable
      argument; the engine rejects an attempt when *any* bound call
      argument's key conflicts with the head's concrete key at that
      position.
    * ``head_key`` — ``head_keys[0]`` (the classic first-argument
      fingerprint), kept as a convenience alias; ``None`` when the head
      has no arguments or its first argument is a variable.
    * ``goals`` — the flattened body as ``(code, const)`` pairs, in
      execution order; empty for facts. Compile-time ``true`` atoms are
      dropped (the solver never charged or traced them anyway).

    The head is never rebuilt as a term: ``matching_clauses`` already
    guarantees the functor and arity match, so head unification runs
    argument by argument against the caller's argument tuple.
    """

    __slots__ = ("var_names", "head_args", "head_key", "head_keys", "goals")

    def __init__(self, head: Term, body: Term):
        slots: Dict[int, int] = {}
        names: List[str] = []
        head = deref(head)
        head_args: List[Tuple[int, object]] = []
        if isinstance(head, Struct):
            for arg in head.args:
                arg = deref(arg)
                if isinstance(arg, Var) and id(arg) not in slots:
                    slots[id(arg)] = len(names)
                    names.append(arg.name)
                    head_args.append((_ARG_FRESH, slots[id(arg)]))
                elif isinstance(arg, Var):
                    head_args.append((_ARG_SLOT, slots[id(arg)]))
                else:
                    code, const = _compile_term(arg, slots, names)
                    if code is None:
                        head_args.append((_ARG_CONST, const))
                    else:
                        head_args.append((_ARG_BUILD, code))
        self.head_args = tuple(head_args)
        goals: List[Tuple[_Code, Optional[Term]]] = []
        for goal in flatten_conjunction(body):
            if isinstance(goal, Atom) and goal.name == "true":
                continue
            goals.append(_compile_term(goal, slots, names))
        self.goals = tuple(goals)
        self.var_names = tuple(names)
        if isinstance(head, Struct):
            # Late import: database imports this module's compiler, so
            # the fingerprint helper is fetched lazily to avoid a cycle.
            from .database import first_arg_key

            self.head_keys = tuple(first_arg_key(arg) for arg in head.args)
            self.head_key = self.head_keys[0]
        else:
            self.head_keys = ()
            self.head_key = None

    def unify_head(self, goal_args, trail, occurs_check: bool = False):
        """Unify the skeleton head against ``goal_args``; one attempt.

        Allocates the flat frame of fresh variables (head *and* body
        slots, once), then runs the per-argument specs: fresh-variable
        arguments bind directly without entering the general unifier,
        ground arguments and compounds go through :func:`~.unify.unify`.
        Returns the frame on success and ``None`` on failure; in both
        cases bindings stay on the trail for the caller's mark/undo
        discipline, exactly like a plain ``unify`` call.
        """
        names = self.var_names
        frame = [Var(name) for name in names] if names else _NO_SLOTS
        index = 0
        for tag, payload in self.head_args:
            goal_arg = goal_args[index]
            index += 1
            if tag == _ARG_FRESH:
                while isinstance(goal_arg, Var):
                    ref = goal_arg.ref
                    if ref is None:
                        break
                    goal_arg = ref
                if isinstance(goal_arg, Var):
                    # Bind the caller's variable to the fresh slot —
                    # the same direction the general unifier picks.
                    goal_arg.ref = frame[payload]
                    trail.push(goal_arg)
                else:
                    var = frame[payload]
                    var.ref = goal_arg
                    trail.push(var)
            elif tag == _ARG_CONST:
                if not unify(goal_arg, payload, trail, occurs_check):
                    return None
            elif tag == _ARG_SLOT:
                if not unify(goal_arg, frame[payload], trail, occurs_check):
                    return None
            else:
                if not unify(
                    goal_arg, _run(payload, frame), trail, occurs_check
                ):
                    return None
        return frame

    def materialize_body(self, frame) -> List[Term]:
        """The body goals instantiated against ``frame``, in order.

        Ground goals are shared; the rest are rebuilt iteratively from
        their build programs. Empty for facts.
        """
        return [
            const if code is None else _run(code, frame)
            for code, const in self.goals
        ]


def compile_clause(clause) -> CompiledClause:
    """Compile one :class:`~repro.prolog.database.Clause` to a skeleton."""
    return CompiledClause(clause.head, clause.body)
