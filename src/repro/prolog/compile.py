"""Clause compilation: slot-based skeletons with lazy body materialization.

The paper's execution model charges one clause *try* per head attempted
(the ``c_i`` costs its Markov model consumes), so the engine's clause-try
loop is the hot path that every calibration, ablation, and benchmark
ultimately measures. The interpreted loop paid a full recursive
:func:`~repro.prolog.terms.rename_term` copy of head *and* body for every
attempt — even when head unification failed immediately.

This module applies the WAM's core insight (Warren 1983) at the Python
level: each :class:`~repro.prolog.database.Clause` is compiled **once**
into a :class:`CompiledClause` skeleton where

* every distinct clause variable becomes a dense integer **slot**;
* the head becomes per-argument **get specs** (the WAM's get
  instructions): fresh-variable arguments bind directly without
  entering the general unifier, and the head term itself is never
  rebuilt — ``matching_clauses`` already guarantees the functor;
* body goals become flat **build programs** — postorder instruction
  tuples executed iteratively over one argument stack, so
  instantiation never recurses;
* **ground subterms are shared**, not copied (they are immutable in
  use), so a ground fact head costs *zero* allocation per attempt;
* the **body is materialized lazily** — only after the head unifies —
  so failed attempts never copy the body at all;
* conjunction chains are flattened at compile time into a goal list,
  letting the engine run one flat loop instead of a nested
  ``_solve_conjunction`` generator ladder;
* the head's per-argument **fingerprints** (the index keys shared with
  the database's bucket indexes) are cached so calls whose bound
  arguments cannot match skip unification entirely.

Compiled skeletons are cached per predicate on the
:class:`~repro.prolog.database.Database` and invalidated wholesale via
its ``generation`` counter (see ``Database.compiled_program``).

Instruction encoding
--------------------
Each build program is a tuple of uniform 3-tuples ``(op, a, b)``:

=====  ==========  ====================================================
op     operands    effect
=====  ==========  ====================================================
``0``  term, --    push a shared ground (sub)term
``1``  slot, --    push the frame's variable for ``slot``
``2``  name, n     pop ``n`` args, push ``Struct(name, args)``
=====  ==========  ====================================================

A skeleton whose term is entirely ground compiles to *no* program at
all: the stored term itself is reused on every instantiation.

VM bytecode
-----------
On top of the build programs, each clause body can be lowered to the
linear **VM bytecode** executed by :mod:`repro.prolog.vm` (the
trampoline that replaces the generator ladder). Lowering is lazy —
:meth:`CompiledClause.vm_code` compiles on first use and caches — so
engines that never select the VM pay nothing. Each op is a tuple whose
first element is one of:

=============  =========================================================
op             meaning
=============  =========================================================
``VM_CALL``    ``(op, indicator, build, argspecs)`` — a user-predicate
               call, resolved inline by the machine's clause-selection
               loop
``VM_DET``     ``(op, indicator, fn, build, argspecs)`` — a
               deterministic builtin (``is/2``, comparisons,
               ``=/2``...) run as one native function call: no
               generator, no choice point
``VM_BUILTIN`` ``(op, indicator, fn, build, argspecs)`` — any other
               registered builtin, run as an iterator choice point
``VM_GENERIC`` ``(op, code, const)`` — control constructs (``;``,
               ``->``), variable goals, and anything else the machine
               delegates verbatim to ``Engine.solve_goal``
``VM_CUT``     ``(op,)`` — prune choice points to the call's barrier
``VM_FAIL``    ``(op,)`` — unconditional failure (``fail``/``false``)
=============  =========================================================

``build`` is a specialized callable — ``build(frame) -> args`` — that
materializes the goal's argument tuple without building the goal term
itself (an instance of one of the ``_*Args`` classes below, picked per
goal shape, all plain picklable data). ``argspecs`` is its declarative
source, kept on the op for the disassembler: each spec is ``(0, term)``
(shared ground argument), ``(1, slot)`` (one frame variable), or
``(2, code)`` (a build program).
The classification is sound to do at compile time because the builtin
registry is populated at import and never mutated afterwards, and
``Engine.solve_goal`` resolves builtins before user clauses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .terms import Atom, Struct, Term, Var, deref, term_is_ground
from .unify import unify

__all__ = [
    "CompiledClause",
    "compile_clause",
    "flatten_conjunction",
    "VM_CALL",
    "VM_DET",
    "VM_BUILTIN",
    "VM_GENERIC",
    "VM_CUT",
    "VM_FAIL",
    "ARG_CONST",
    "ARG_SLOT",
    "ARG_CODE",
]

#: Instruction opcodes (module-private names kept short for the hot loop).
_OP_CONST = 0
_OP_SLOT = 1
_OP_BUILD = 2

#: VM bytecode opcodes (see module docstring and :mod:`repro.prolog.vm`).
VM_CALL = 0
VM_DET = 1
VM_BUILTIN = 2
VM_GENERIC = 3
VM_CUT = 4
VM_FAIL = 5

#: Argument-spec tags for VM_CALL/VM_DET/VM_BUILTIN ops.
ARG_CONST = 0
ARG_SLOT = 1
ARG_CODE = 2

#: Shared empty slot frame for clauses with no variables (facts).
_NO_SLOTS: Tuple = ()

#: Raw allocator bypassing ``Struct.__init__`` validation in the hot loop.
_new_struct = Struct.__new__

#: A build program: tuple of ``(op, a, b)`` instructions, or ``None``
#: when the term is ground and ``const`` is shared instead.
_Code = Optional[Tuple[Tuple[int, object, int], ...]]


def flatten_conjunction(body: Term) -> List[Term]:
    """Flatten a (possibly nested) ``','``/2 chain into its goal list.

    Mirrors :func:`repro.prolog.database.body_goals` (duplicated here to
    keep this module importable by the database without a cycle): only
    conjunctions are flattened; disjunctions, if-then-elses, and
    variable goals stay single, and are dereferenced exactly as the
    recursive solver would have dereferenced them on entry.
    """
    goals: List[Term] = []
    stack = [body]
    while stack:
        current = deref(stack.pop())
        if (
            isinstance(current, Struct)
            and current.name == ","
            and len(current.args) == 2
        ):
            stack.append(current.args[1])
            stack.append(current.args[0])
        else:
            goals.append(current)
    return goals


def _compile_term(
    term: Term, slots: Dict[int, int], names: List[str]
) -> Tuple[_Code, Optional[Term]]:
    """Compile one term into ``(code, const)``.

    Ground terms return ``(None, term)`` — shared, never copied.
    Non-ground terms return a postorder build program; ``slots`` maps
    ``id(var)`` to its slot index and grows as new variables appear (so
    head and body compiled with the same maps share slots).
    """
    term = deref(term)
    if term_is_ground(term):
        return None, term
    code: List[Tuple[int, object, int]] = []

    def emit(node: Term) -> None:
        node = deref(node)
        if isinstance(node, Var):
            index = slots.get(id(node))
            if index is None:
                index = len(names)
                slots[id(node)] = index
                names.append(node.name)
            code.append((_OP_SLOT, index, 0))
            return
        if isinstance(node, Struct) and not term_is_ground(node):
            for arg in node.args:
                emit(arg)
            code.append((_OP_BUILD, node.name, len(node.args)))
            return
        code.append((_OP_CONST, node, 0))

    emit(term)
    return tuple(code), None


def _run(code: Tuple[Tuple[int, object, int], ...], frame) -> Term:
    """Execute a build program over ``frame`` (the flat ``Var`` list)."""
    stack: List[Term] = []
    push = stack.append
    for op, a, b in code:
        if op == _OP_SLOT:
            push(frame[a])
        elif op == _OP_CONST:
            push(a)
        else:
            struct = _new_struct(Struct)
            struct.name = a
            struct.args = tuple(stack[-b:])
            del stack[-b:]
            push(struct)
    return stack[-1]


#: Head-argument spec tags (see :meth:`CompiledClause.unify_head`).
_ARG_FRESH = 0
_ARG_CONST = 1
_ARG_SLOT = 2
_ARG_BUILD = 3


class CompiledClause:
    """One clause compiled to a slot-numbered skeleton.

    Attributes:

    * ``var_names`` — display name per slot; ``len(var_names)`` is the
      frame size allocated per attempt.
    * ``head_args`` — per-argument head unification specs (WAM "get"
      instructions): ``(0, slot)`` first occurrence of a variable (a
      direct bind, no general unification), ``(1, term)`` a shared
      ground argument, ``(2, slot)`` a repeated variable, ``(3, code)``
      a compound containing variables, built then unified.
    * ``head_keys`` — per-argument index keys (the same fingerprints
      ``Database``'s bucket indexes use), ``None`` per variable
      argument; the engine rejects an attempt when *any* bound call
      argument's key conflicts with the head's concrete key at that
      position.
    * ``head_key`` — ``head_keys[0]`` (the classic first-argument
      fingerprint), kept as a convenience alias; ``None`` when the head
      has no arguments or its first argument is a variable.
    * ``goals`` — the flattened body as ``(code, const)`` pairs, in
      execution order; empty for facts. Compile-time ``true`` atoms are
      dropped (the solver never charged or traced them anyway).

    The head is never rebuilt as a term: ``matching_clauses`` already
    guarantees the functor and arity match, so head unification runs
    argument by argument against the caller's argument tuple.
    """

    __slots__ = (
        "var_names",
        "head_args",
        "head_key",
        "head_keys",
        "goals",
        "_vm",
    )

    def __init__(self, head: Term, body: Term):
        slots: Dict[int, int] = {}
        names: List[str] = []
        head = deref(head)
        head_args: List[Tuple[int, object]] = []
        if isinstance(head, Struct):
            for arg in head.args:
                arg = deref(arg)
                if isinstance(arg, Var) and id(arg) not in slots:
                    slots[id(arg)] = len(names)
                    names.append(arg.name)
                    head_args.append((_ARG_FRESH, slots[id(arg)]))
                elif isinstance(arg, Var):
                    head_args.append((_ARG_SLOT, slots[id(arg)]))
                else:
                    code, const = _compile_term(arg, slots, names)
                    if code is None:
                        head_args.append((_ARG_CONST, const))
                    else:
                        head_args.append((_ARG_BUILD, code))
        self.head_args = tuple(head_args)
        goals: List[Tuple[_Code, Optional[Term]]] = []
        for goal in flatten_conjunction(body):
            if isinstance(goal, Atom) and goal.name == "true":
                continue
            goals.append(_compile_term(goal, slots, names))
        self.goals = tuple(goals)
        self.var_names = tuple(names)
        self._vm = None
        if isinstance(head, Struct):
            # Late import: database imports this module's compiler, so
            # the fingerprint helper is fetched lazily to avoid a cycle.
            from .database import first_arg_key

            self.head_keys = tuple(first_arg_key(arg) for arg in head.args)
            self.head_key = self.head_keys[0]
        else:
            self.head_keys = ()
            self.head_key = None

    def unify_head(self, goal_args, trail, occurs_check: bool = False):
        """Unify the skeleton head against ``goal_args``; one attempt.

        Allocates the flat frame of fresh variables (head *and* body
        slots, once), then runs the per-argument specs: fresh-variable
        arguments bind directly without entering the general unifier,
        ground arguments and compounds go through :func:`~.unify.unify`.
        Returns the frame on success and ``None`` on failure; in both
        cases bindings stay on the trail for the caller's mark/undo
        discipline, exactly like a plain ``unify`` call.
        """
        names = self.var_names
        frame = [Var(name) for name in names] if names else _NO_SLOTS
        index = 0
        for tag, payload in self.head_args:
            goal_arg = goal_args[index]
            index += 1
            if tag == _ARG_FRESH:
                while isinstance(goal_arg, Var):
                    ref = goal_arg.ref
                    if ref is None:
                        break
                    goal_arg = ref
                if isinstance(goal_arg, Var):
                    # Bind the caller's variable to the fresh slot —
                    # the same direction the general unifier picks.
                    goal_arg.ref = frame[payload]
                    trail.push(goal_arg)
                else:
                    var = frame[payload]
                    var.ref = goal_arg
                    trail.push(var)
            elif tag == _ARG_CONST:
                if not unify(goal_arg, payload, trail, occurs_check):
                    return None
            elif tag == _ARG_SLOT:
                if not unify(goal_arg, frame[payload], trail, occurs_check):
                    return None
            else:
                if not unify(
                    goal_arg, _run(payload, frame), trail, occurs_check
                ):
                    return None
        return frame

    def materialize_body(self, frame) -> List[Term]:
        """The body goals instantiated against ``frame``, in order.

        Ground goals are shared; the rest are rebuilt iteratively from
        their build programs. Empty for facts.
        """
        return [
            const if code is None else _run(code, frame)
            for code, const in self.goals
        ]

    def vm_code(self):
        """The body lowered to VM bytecode (compiled lazily, cached).

        See the module docstring for the op encoding. The same slot
        numbering as :meth:`unify_head` is reused, so the frame the
        head unification returns doubles as the machine's register
        file for this activation.
        """
        ops = self._vm
        if ops is None:
            ops = _compile_vm_body(self.goals)
            self._vm = ops
        return ops


def _split_arg_programs(code, count: int):
    """Split a postorder build program into its root's argument spans.

    ``code`` ends with the root's ``(_OP_BUILD, name, count)``; every
    subterm program leaves exactly one value on the stack, so the
    root's ``count`` children occupy consecutive spans that each
    net +1 stack depth. Returns one argspec per argument.
    """
    spans = []
    end = len(code) - 1  # the root build op itself is excluded
    for _ in range(count):
        # Walk backward until this argument's subprogram is complete:
        # each op supplies one value and a build consumes ``b``.
        needed = 1
        start = end
        while needed:
            start -= 1
            op, _a, b = code[start]
            needed -= 1
            if op == _OP_BUILD:
                needed += b
        spans.append((start, end))
        end = start
    assert end == 0, "postorder split lost an argument"
    specs = []
    for start, stop in reversed(spans):
        span = code[start:stop]
        if len(span) == 1:
            only, payload, _b = span[0]
            if only == _OP_SLOT:
                specs.append((ARG_SLOT, payload))
            else:
                specs.append((ARG_CONST, payload))
        else:
            specs.append((ARG_CODE, span))
    return tuple(specs)


class _NoArgs:
    """Argument builder for 0-arity goals."""

    __slots__ = ()

    def __call__(self, frame) -> tuple:
        return ()


class _ConstArgs:
    """Argument builder for fully-ground goals: one shared tuple."""

    __slots__ = ("value",)

    def __init__(self, value: tuple):
        self.value = value

    def __call__(self, frame) -> tuple:
        return self.value


class _SlotArgs:
    """Argument builder when every argument is a plain frame slot."""

    __slots__ = ("positions",)

    def __init__(self, positions: tuple):
        self.positions = positions

    def __call__(self, frame) -> tuple:
        return tuple([frame[p] for p in self.positions])


class _TemplateArgs:
    """Const/slot mix: copy the const template, patch in the slots."""

    __slots__ = ("template", "patches")

    def __init__(self, template: tuple, patches: tuple):
        self.template = template
        self.patches = patches  # ((arg position, frame slot), ...)

    def __call__(self, frame) -> tuple:
        args = list(self.template)
        for position, slot in self.patches:
            args[position] = frame[slot]
        return tuple(args)


class _BuildArgs:
    """General builder: at least one argument is a nested build program."""

    __slots__ = ("specs",)

    def __init__(self, specs: tuple):
        self.specs = specs

    def __call__(self, frame) -> tuple:
        return tuple([
            payload
            if tag == ARG_CONST
            else frame[payload]
            if tag == ARG_SLOT
            else _run(payload, frame)
            for tag, payload in self.specs
        ])


def _make_args_builder(specs: tuple):
    """Specialize a goal's argspecs into the cheapest builder callable.

    All builders are instances of module-level ``__slots__`` classes so
    the bytecode tuples that carry them stay plain picklable data.
    """
    if not specs:
        return _NoArgs()
    tags = [tag for tag, _payload in specs]
    if ARG_CODE in tags:
        return _BuildArgs(specs)
    if ARG_SLOT not in tags:
        return _ConstArgs(tuple(payload for _tag, payload in specs))
    if ARG_CONST not in tags:
        return _SlotArgs(tuple(payload for _tag, payload in specs))
    template = tuple(
        payload if tag == ARG_CONST else None for tag, payload in specs
    )
    patches = tuple(
        (position, payload)
        for position, (tag, payload) in enumerate(specs)
        if tag == ARG_SLOT
    )
    return _TemplateArgs(template, patches)


#: Arithmetically-evaluated argument positions of the native det ops.
#: A constant expression at one of these positions folds to its value
#: at compile time (``X1 is 1 + 1`` carries the number 2, not the
#: ``+/2`` term). Folding is attempted, never required: an expression
#: that fails to evaluate keeps its source form so the error still
#: raises at call time, not at consult time.
_ARITH_POSITIONS = {
    ("is", 2): (1,),
    ("=:=", 2): (0, 1),
    ("=\\=", 2): (0, 1),
    ("<", 2): (0, 1),
    (">", 2): (0, 1),
    ("=<", 2): (0, 1),
    (">=", 2): (0, 1),
}


def _fold_arith_consts(indicator, specs):
    """Constant-fold ground arithmetic arguments of a det builtin."""
    positions = _ARITH_POSITIONS.get(indicator)
    if positions is None:
        return specs
    from .builtins.arith import evaluate

    out = None
    for position in positions:
        tag, payload = specs[position]
        if tag != ARG_CONST or isinstance(payload, (int, float)):
            continue
        try:
            value = evaluate(payload)
        except Exception:
            continue  # defer the arithmetic error to call time
        if out is None:
            out = list(specs)
        out[position] = (ARG_CONST, value)
    return specs if out is None else tuple(out)


def _compile_vm_body(goals) -> Tuple[tuple, ...]:
    """Lower a clause body (its ``(code, const)`` goal pairs) to VM ops."""
    # Late imports: builtins pulls in the whole registry (harmless by
    # the time anything executes a clause) and vm provides the native
    # deterministic implementations; both would cycle at import time.
    from .builtins import lookup
    from .vm import DET_BUILTINS

    ops = []
    for code, const in goals:
        indicator = None
        specs: Optional[tuple] = None
        if const is not None:
            if isinstance(const, Atom):
                indicator = (const.name, 0)
                specs = ()
            elif isinstance(const, Struct):
                indicator = (const.name, len(const.args))
                specs = tuple((ARG_CONST, arg) for arg in const.args)
        else:
            op, a, b = code[-1]
            if op == _OP_BUILD:
                indicator = (a, b)
                specs = _split_arg_programs(code, b)
        if indicator is None or indicator in ((";", 2), ("->", 2)):
            # Variable goals, non-callable terms, and control structs
            # run through ``Engine.solve_goal`` verbatim — identical
            # semantics (cut transparency, errors) and charges.
            ops.append((VM_GENERIC, code, const))
            continue
        name, arity = indicator
        if arity == 0:
            if name == "!":
                ops.append((VM_CUT,))
                continue
            if name in ("fail", "false"):
                ops.append((VM_FAIL,))
                continue
            if name == "true":  # dropped at compile time; defensive
                continue
        det = DET_BUILTINS.get(indicator)
        if det is not None:
            specs = _fold_arith_consts(indicator, specs)
            ops.append((VM_DET, indicator, det, _make_args_builder(specs),
                        specs))
            continue
        build = _make_args_builder(specs)
        registered = lookup(indicator)
        if registered is not None:
            ops.append((VM_BUILTIN, indicator, registered.fn, build, specs))
            continue
        ops.append((VM_CALL, indicator, build, specs))
    return tuple(ops)


def compile_clause(clause) -> CompiledClause:
    """Compile one :class:`~repro.prolog.database.Clause` to a skeleton."""
    return CompiledClause(clause.head, clause.body)
