"""Execution instrumentation.

The paper measures efficiency as "the number of predicate calls or
unifications; CPU time is too coarse a measure and sometimes misleading"
(§I-B). :class:`Metrics` counts both, plus backtracking events, and can
break calls down per predicate so that the experiment harness can report
the Table II/III/IV "number of calls" columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["Metrics"]

Indicator = Tuple[str, int]


@dataclass
class Metrics:
    """Counters maintained by the engine during query evaluation."""

    #: Total predicate calls (user + builtin): the paper's primary metric.
    calls: int = 0
    #: Head-unification attempts.
    unifications: int = 0
    #: Successful head unifications (clause entries).
    clause_entries: int = 0
    #: Times the engine resumed an earlier choice point.
    backtracks: int = 0
    #: Clause-skeleton instantiations by the compiled clause path
    #: (one per head attempt that was not fast-rejected).
    skeleton_instantiations: int = 0
    #: Head attempts skipped by the cached first-argument fingerprint
    #: (still charged as failed unifications, so ``unifications`` stays
    #: comparable with the interpreted path).
    head_fast_rejects: int = 0
    #: Calls per predicate indicator.
    calls_by_predicate: Dict[Indicator, int] = field(default_factory=dict)
    #: Tabled calls answered from an existing variant table.
    table_hits: int = 0
    #: Tabled calls that created a new variant table.
    table_misses: int = 0
    #: Distinct answers stored into tables.
    table_answers: int = 0
    #: Variant tables that reached their fixpoint.
    tables_completed: int = 0

    def record_call(self, indicator: Indicator) -> None:
        """Charge one predicate call."""
        self.calls += 1
        self.calls_by_predicate[indicator] = (
            self.calls_by_predicate.get(indicator, 0) + 1
        )

    def record_unification(self, succeeded: bool) -> None:
        """Charge one head-unification attempt."""
        self.unifications += 1
        if succeeded:
            self.clause_entries += 1

    def record_backtrack(self) -> None:
        """Charge one clause retry."""
        self.backtracks += 1

    def record_instantiation(self) -> None:
        """Charge one compiled-skeleton head instantiation."""
        self.skeleton_instantiations += 1

    def record_fast_reject(self) -> None:
        """Charge one fingerprint-rejected head attempt.

        Counts as a failed unification too, keeping ``unifications``
        identical between the compiled and interpreted clause paths.
        """
        self.unifications += 1
        self.head_fast_rejects += 1

    def record_table_hit(self) -> None:
        """Charge one tabled call served from an existing table."""
        self.table_hits += 1

    def record_table_miss(self) -> None:
        """Charge one tabled call that opened a new table."""
        self.table_misses += 1

    def record_table_answer(self) -> None:
        """Charge one distinct answer stored into a table."""
        self.table_answers += 1

    def record_table_complete(self) -> None:
        """Charge one table reaching its fixpoint."""
        self.tables_completed += 1

    def reset(self) -> None:
        """Zero all counters in place."""
        self.calls = 0
        self.unifications = 0
        self.clause_entries = 0
        self.backtracks = 0
        self.skeleton_instantiations = 0
        self.head_fast_rejects = 0
        self.calls_by_predicate.clear()
        self.table_hits = 0
        self.table_misses = 0
        self.table_answers = 0
        self.tables_completed = 0

    def snapshot(self) -> "Metrics":
        """An independent copy of the current counters."""
        return Metrics(
            calls=self.calls,
            unifications=self.unifications,
            clause_entries=self.clause_entries,
            backtracks=self.backtracks,
            skeleton_instantiations=self.skeleton_instantiations,
            head_fast_rejects=self.head_fast_rejects,
            calls_by_predicate=dict(self.calls_by_predicate),
            table_hits=self.table_hits,
            table_misses=self.table_misses,
            table_answers=self.table_answers,
            tables_completed=self.tables_completed,
        )

    def __sub__(self, other: "Metrics") -> "Metrics":
        by_predicate = dict(self.calls_by_predicate)
        for key, value in other.calls_by_predicate.items():
            by_predicate[key] = by_predicate.get(key, 0) - value
        return Metrics(
            calls=self.calls - other.calls,
            unifications=self.unifications - other.unifications,
            clause_entries=self.clause_entries - other.clause_entries,
            backtracks=self.backtracks - other.backtracks,
            skeleton_instantiations=(
                self.skeleton_instantiations - other.skeleton_instantiations
            ),
            head_fast_rejects=self.head_fast_rejects - other.head_fast_rejects,
            calls_by_predicate={k: v for k, v in by_predicate.items() if v},
            table_hits=self.table_hits - other.table_hits,
            table_misses=self.table_misses - other.table_misses,
            table_answers=self.table_answers - other.table_answers,
            tables_completed=self.tables_completed - other.tables_completed,
        )

    def __add__(self, other: "Metrics") -> "Metrics":
        by_predicate = dict(self.calls_by_predicate)
        for key, value in other.calls_by_predicate.items():
            by_predicate[key] = by_predicate.get(key, 0) + value
        return Metrics(
            calls=self.calls + other.calls,
            unifications=self.unifications + other.unifications,
            clause_entries=self.clause_entries + other.clause_entries,
            backtracks=self.backtracks + other.backtracks,
            skeleton_instantiations=(
                self.skeleton_instantiations + other.skeleton_instantiations
            ),
            head_fast_rejects=self.head_fast_rejects + other.head_fast_rejects,
            calls_by_predicate={k: v for k, v in by_predicate.items() if v},
            table_hits=self.table_hits + other.table_hits,
            table_misses=self.table_misses + other.table_misses,
            table_answers=self.table_answers + other.table_answers,
            tables_completed=self.tables_completed + other.tables_completed,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable counters; per-predicate keys become
        ``name/arity`` strings, sorted for deterministic output."""
        return {
            "calls": self.calls,
            "unifications": self.unifications,
            "clause_entries": self.clause_entries,
            "backtracks": self.backtracks,
            "skeleton_instantiations": self.skeleton_instantiations,
            "head_fast_rejects": self.head_fast_rejects,
            "table_hits": self.table_hits,
            "table_misses": self.table_misses,
            "table_answers": self.table_answers,
            "tables_completed": self.tables_completed,
            "calls_by_predicate": {
                f"{name}/{arity}": count
                for (name, arity), count in sorted(self.calls_by_predicate.items())
            },
        }

    def __str__(self) -> str:
        return (
            f"calls={self.calls} unifications={self.unifications} "
            f"entries={self.clause_entries} backtracks={self.backtracks}"
            + (
                f" table_hits={self.table_hits} table_misses={self.table_misses}"
                f" table_answers={self.table_answers}"
                f" tables_completed={self.tables_completed}"
                if self.table_hits or self.table_misses
                else ""
            )
        )
