"""Evaluating a sequence of goals as one Markov chain (paper §VI-A-2).

Given :class:`~repro.markov.goal_stats.GoalStats` for each goal of a
(candidate ordering of a) clause body, :func:`evaluate_sequence`
produces the body's aggregate statistics:

* ``total_cost`` — expected cost of enumerating *all* solutions of the
  conjunction (the Fig. 5 chain: the A* search heuristic);
* ``solutions`` — expected number of solutions (``Π s_i`` — exactly the
  chain's expected visits to S);
* ``p_success`` — probability the body succeeds at least once (the
  Fig. 4 chain's absorption probability);
* ``single_cost`` — expected cost of finding one solution (Fig. 4).

The closed forms are used by default (they are what makes A* cheap);
``use_matrix=True`` switches to the explicit ``N = (I−Q)^{-1}``
computation, which the tests cross-validate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .chain import all_solutions_analysis, single_solution_analysis
from .formulas import (
    all_solutions_cost_closed_form,
    single_solution_success_closed_form,
)
from .goal_stats import GoalStats

__all__ = ["SequenceEvaluation", "evaluate_sequence", "sequence_cost"]


@dataclass(frozen=True)
class SequenceEvaluation:
    """Aggregate statistics of one ordering of a goal sequence."""

    total_cost: float
    solutions: float
    p_success: float
    single_cost: float

    def as_goal_stats(self) -> GoalStats:
        """The sequence summarised as if it were a single goal."""
        return GoalStats(
            cost=self.total_cost, solutions=self.solutions, prob=self.p_success
        )


def evaluate_sequence(
    stats: Sequence[GoalStats], use_matrix: bool = False
) -> SequenceEvaluation:
    """Chain analysis of goals executed in the given order."""
    if not stats:
        return SequenceEvaluation(
            total_cost=0.0, solutions=1.0, p_success=1.0, single_cost=0.0
        )
    probs = [s.chain_probability for s in stats]
    costs = [s.chain_cost for s in stats]
    if use_matrix:
        all_result = all_solutions_analysis(probs, costs)
        total_cost = all_result.total_cost
        solutions = all_result.success_visits
        single = single_solution_analysis(probs, costs)
        p_success = single.p_success
        single_cost = single.expected_cost
    else:
        total_cost, _ = all_solutions_cost_closed_form(probs, costs)
        solutions = 1.0
        for s in stats:
            solutions *= s.solutions
        p_success = single_solution_success_closed_form(probs)
        single_cost = _single_cost_closed_form(probs, costs)
    return SequenceEvaluation(
        total_cost=total_cost,
        solutions=solutions,
        p_success=p_success,
        single_cost=single_cost,
    )


def sequence_cost(stats: Sequence[GoalStats]) -> float:
    """Just the all-solutions expected cost (the A* heuristic value)."""
    if not stats:
        return 0.0
    probs = [s.chain_probability for s in stats]
    costs = [s.chain_cost for s in stats]
    total, _ = all_solutions_cost_closed_form(probs, costs)
    return total


def _single_cost_closed_form(probs: List[float], costs: List[float]) -> float:
    """Expected cost of the single-solution chain, via visit flows.

    Let ``A`` be the chain's overall success probability. Net flow
    across every cut of the Fig. 4 chain equals the probability of being
    absorbed above the cut: across F|g1 that gives
    ``v_1 (1−p_1) = 1−A``; across g_i|g_{i+1} it gives
    ``v_i p_i − v_{i+1} (1−p_{i+1}) = A``. Solving forward yields every
    visit count without a matrix inversion.
    """
    success = single_solution_success_closed_form(probs)
    total = 0.0
    visits = (1.0 - success) / max(1e-12, 1.0 - probs[0])
    total += visits * costs[0]
    for p_prev, (p, c) in zip(probs, list(zip(probs, costs))[1:]):
        visits = max(0.0, (visits * p_prev - success) / max(1e-12, 1.0 - p))
        total += visits * c
    return total
