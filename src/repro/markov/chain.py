"""Absorbing Markov chains for clause bodies (paper §VI-A, Figs. 4–5).

A clause body ``k :- g1, ..., gn`` becomes a chain whose states are the
goals plus absorbing success (S) and failure (F) states. In every goal
state the process moves forward with that goal's success probability
``p_i`` and backward with ``1 − p_i``; entering S from the last goal is
success; falling off the front is failure.

Two variants:

* **single-solution** (Fig. 4): S is absorbing — models finding one
  solution (a goal before a cut, or an interactive single answer);
* **all-solutions** (Fig. 5): S loops back to the last goal with
  probability 1 — models exhaustive backtracking.

From the transition matrix ``P`` partitioned into transient/absorbing
blocks, ``N = (I − Q)^{-1}`` gives the expected visit counts (first row,
since the process starts at the first goal) and ``N·R`` the absorption
probabilities — "textbook mathematics" [Kemeny & Snell]. The paper
suggests calling a C routine to build and invert the matrix; numpy's
``linalg.solve`` plays that role, with a pure-Python Gaussian
elimination fallback that the tests cross-check.

Probabilities equal to 1 make the all-solutions chain non-absorbing
(a never-failing goal backtracks forever); callers should clamp, and
:func:`clamp_probability` provides the standard clamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "ChainResult",
    "AllSolutionsResult",
    "clamp_probability",
    "single_solution_matrix",
    "all_solutions_matrix",
    "single_solution_analysis",
    "all_solutions_analysis",
    "solve_linear_system",
    "gaussian_solve",
]

#: Default upper clamp for success probabilities (keeps chains absorbing).
P_MAX = 1.0 - 1e-9
#: Default lower clamp (keeps visit formulas finite).
P_MIN = 0.0


def clamp_probability(p: float, low: float = P_MIN, high: float = P_MAX) -> float:
    """Clamp a probability into the numerically safe open interval."""
    return min(high, max(low, p))


@dataclass(frozen=True)
class ChainResult:
    """Analysis of a single-solution chain."""

    #: Probability of absorption in S (the paper's p_body).
    p_success: float
    #: Expected visits to each goal state, starting from the first goal.
    visits: Tuple[float, ...]
    #: Expected total cost  Σ c_i · v_i  (the paper's c_single).
    expected_cost: float


@dataclass(frozen=True)
class AllSolutionsResult:
    """Analysis of an all-solutions chain."""

    #: Expected visits to each goal state.
    visits: Tuple[float, ...]
    #: Expected visits to the success state (number of solutions found).
    success_visits: float
    #: Expected total cost of enumerating every solution: Σ c_i · v_i.
    total_cost: float
    #: Expected cost per solution (the paper's c_multiple).
    cost_per_solution: float


def single_solution_matrix(probs: Sequence[float]) -> np.ndarray:
    """The full transition matrix of Fig. 4 (states: S, F, g1..gn)."""
    n = len(probs)
    size = n + 2
    matrix = np.zeros((size, size))
    matrix[0, 0] = 1.0  # S absorbing
    matrix[1, 1] = 1.0  # F absorbing
    for i, p in enumerate(probs):
        row = 2 + i
        # Backward: to previous goal, or to F from the first goal.
        matrix[row, 1 if i == 0 else row - 1] = 1.0 - p
        # Forward: to next goal, or to S from the last goal.
        matrix[row, 0 if i == n - 1 else row + 1] = p
    return matrix


def all_solutions_matrix(probs: Sequence[float]) -> np.ndarray:
    """The full transition matrix of Fig. 5 (states: F, g1..gn, S)."""
    n = len(probs)
    size = n + 2
    matrix = np.zeros((size, size))
    matrix[0, 0] = 1.0  # F absorbing
    for i, p in enumerate(probs):
        row = 1 + i
        matrix[row, row - 1] = 1.0 - p  # backward (row 1 backs into F)
        matrix[row, row + 1] = p        # forward (last goal into S)
    matrix[n + 1, n] = 1.0  # S returns to the last goal
    return matrix


def gaussian_solve(matrix: List[List[float]], rhs: List[List[float]]) -> List[List[float]]:
    """Solve ``matrix · X = rhs`` by Gaussian elimination with partial
    pivoting — the pure-Python stand-in for the external C routine."""
    n = len(matrix)
    width = len(rhs[0])
    # Build the augmented matrix.
    augmented = [list(row) + list(extra) for row, extra in zip(matrix, rhs)]
    for col in range(n):
        pivot_row = max(range(col, n), key=lambda r: abs(augmented[r][col]))
        if abs(augmented[pivot_row][col]) < 1e-300:
            raise ZeroDivisionError("singular matrix in chain analysis")
        augmented[col], augmented[pivot_row] = augmented[pivot_row], augmented[col]
        pivot = augmented[col][col]
        augmented[col] = [value / pivot for value in augmented[col]]
        for row in range(n):
            if row != col and augmented[row][col] != 0.0:
                factor = augmented[row][col]
                augmented[row] = [
                    value - factor * pivot_value
                    for value, pivot_value in zip(augmented[row], augmented[col])
                ]
    return [row[n : n + width] for row in augmented]


def solve_linear_system(matrix: np.ndarray, rhs: np.ndarray, use_numpy: bool = True) -> np.ndarray:
    """Solve ``matrix · x = rhs`` (1-D rhs) with numpy or the fallback."""
    if use_numpy:
        return np.linalg.solve(matrix, rhs)
    solution = gaussian_solve(
        [list(map(float, row)) for row in matrix],
        [[float(value)] for value in rhs],
    )
    return np.array([row[0] for row in solution])


def single_solution_analysis(
    probs: Sequence[float],
    costs: Sequence[float],
    use_numpy: bool = True,
) -> ChainResult:
    """Visits, success probability, and expected cost of the Fig. 4 chain."""
    if len(probs) != len(costs):
        raise ValueError("probs and costs must have equal length")
    n = len(probs)
    if n == 0:
        return ChainResult(p_success=1.0, visits=(), expected_cost=0.0)
    probs = [clamp_probability(p) for p in probs]
    full = single_solution_matrix(probs)
    transient = full[2:, 2:]          # Q: goal-to-goal transitions
    into_absorbing = full[2:, :2]     # R: goal-to-{S, F}
    identity = np.eye(n)
    # First row of N = (I − Q)^{-1}: visits starting from goal 1.
    visits = solve_linear_system((identity - transient).T, _unit(n, 0), use_numpy)
    # Absorption probabilities from goal 1: (N R)[0].
    absorb = visits @ into_absorbing
    expected_cost = float(np.dot(visits, np.asarray(costs, dtype=float)))
    return ChainResult(
        p_success=float(absorb[0]),
        visits=tuple(float(v) for v in visits),
        expected_cost=expected_cost,
    )


def all_solutions_analysis(
    probs: Sequence[float],
    costs: Sequence[float],
    use_numpy: bool = True,
) -> AllSolutionsResult:
    """Visits and costs of the Fig. 5 chain (S transient, looping back)."""
    if len(probs) != len(costs):
        raise ValueError("probs and costs must have equal length")
    n = len(probs)
    if n == 0:
        return AllSolutionsResult(
            visits=(), success_visits=1.0, total_cost=0.0, cost_per_solution=0.0
        )
    probs = [clamp_probability(p, high=1.0 - 1e-9) for p in probs]
    full = all_solutions_matrix(probs)
    transient = full[1:, 1:]  # goals plus S
    identity = np.eye(n + 1)
    visits_all = solve_linear_system((identity - transient).T, _unit(n + 1, 0), use_numpy)
    goal_visits = visits_all[:n]
    success_visits = float(visits_all[n])
    total_cost = float(np.dot(goal_visits, np.asarray(costs, dtype=float)))
    per_solution = total_cost / success_visits if success_visits > 0 else float("inf")
    return AllSolutionsResult(
        visits=tuple(float(v) for v in goal_visits),
        success_visits=success_visits,
        total_cost=total_cost,
        cost_per_solution=per_solution,
    )


def _unit(size: int, index: int) -> np.ndarray:
    vector = np.zeros(size)
    vector[index] = 1.0
    return vector
