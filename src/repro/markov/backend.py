"""Per-stratum backend selection: top-down SLD vs bottom-up semi-naive.

The paper's ``p``/``c`` framework decides which *order* to run subgoals
in; this module generalizes it to which *evaluator* to run a stratum
with. A stratum's bottom-up cost is bounded by its materialization
work — every derivable fact is derived a constant number of times under
the semi-naive discipline — while the top-down cost of an all-free call
is the cost model's exhaustive-exploration estimate, which for a
recursive stratum re-derives shared subgoals exponentially often
unless tabled. :func:`choose_backend` compares the two (when top-down
stats exist) and falls back to a structural rule — recursive eligible
strata go bottom-up — when the model has nothing calibrated, which is
also what the engine's ``--eval=auto`` dispatcher uses at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["BackendChoice", "bottomup_cost_estimate", "choose_backend"]


@dataclass(frozen=True)
class BackendChoice:
    """One stratum's verdict: the backend plus the reasoning trail."""

    #: ``"bottomup"`` or ``"topdown"``.
    backend: str
    #: One-line human-readable justification.
    reason: str
    #: Estimated exhaustive top-down cost (predicate calls), if known.
    topdown_cost: Optional[float] = None
    #: Estimated materialization cost (derivation attempts).
    bottomup_cost: Optional[float] = None


def bottomup_cost_estimate(
    fact_count: int, rule_count: int, recursive: bool
) -> float:
    """Derivation-attempt bound for materializing one stratum.

    Semi-naive evaluation derives each fact once per rule that can
    produce it; recursive strata pay an extra delta-propagation factor
    (each fact re-enters the join once as a delta tuple). Deliberately
    coarse — the point is the *order of magnitude* against the
    top-down estimate, the same spirit as the paper's ``p/c`` numbers.
    """
    base = float(max(fact_count, 1)) * float(rule_count + 1)
    return base * (2.0 if recursive else 1.0)


def choose_backend(
    *,
    eligible: bool,
    recursive: bool,
    fact_count: int = 0,
    rule_count: int = 0,
    topdown=None,
) -> BackendChoice:
    """Pick the evaluator for one stratum.

    ``topdown`` is the cost model's :class:`~repro.markov.GoalStats`
    for an all-free call of the stratum's entry predicate (or None when
    nothing is calibrated/declared). Ineligible strata always stay
    top-down; eligible recursive strata always go bottom-up (the
    materialization is finite, the SLD expansion need not be); the
    non-recursive middle ground is decided by comparing cost estimates.
    """
    if not eligible:
        return BackendChoice("topdown", "stratum not datalog-eligible")
    bottomup = bottomup_cost_estimate(fact_count, rule_count, recursive)
    if recursive:
        return BackendChoice(
            "bottomup",
            "recursive eligible stratum: materialization bounds re-derivation",
            topdown_cost=None if topdown is None else topdown.cost,
            bottomup_cost=bottomup,
        )
    if topdown is not None:
        estimated = topdown.cost * max(1.0, topdown.solutions)
        if estimated > bottomup:
            return BackendChoice(
                "bottomup",
                f"estimated top-down cost {estimated:.1f} exceeds "
                f"materialization bound {bottomup:.1f}",
                topdown_cost=estimated,
                bottomup_cost=bottomup,
            )
        return BackendChoice(
            "topdown",
            f"estimated top-down cost {estimated:.1f} within "
            f"materialization bound {bottomup:.1f}",
            topdown_cost=estimated,
            bottomup_cost=bottomup,
        )
    return BackendChoice(
        "topdown",
        "non-recursive stratum with no calibrated stats: SLD is demand-driven",
        bottomup_cost=bottomup,
    )
