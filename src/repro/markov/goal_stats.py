"""Per-goal statistics and their translation to chain parameters.

The cost model summarises a goal (in a particular calling mode) by:

* ``cost`` — expected total cost, in predicate calls, of exploring the
  goal exhaustively (finding every solution and finally failing);
* ``solutions`` — the expected number of solutions (Warren's
  "multiplying factor"): > 1 for generators, < 1 for tests;
* ``prob`` — the probability the goal succeeds at all.

The Li & Wah chain wants a single per-visit success probability ``p_i``
and per-visit cost ``c_i``. We choose them so the chain's expectations
reproduce the goal's own statistics: a goal visited repeatedly succeeds
``p/(1−p)`` times in expectation, so ``p = s/(1+s)`` makes the expected
success count exactly ``s``; and one full generate-and-exhaust cycle of
the goal makes ``1+s`` visits, so ``c = cost/(1+s)`` makes the chain's
charged cost per cycle exactly ``cost``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GoalStats"]


@dataclass(frozen=True)
class GoalStats:
    """Cost/solutions/probability summary of one goal in one mode."""

    #: Expected total cost of exhaustive exploration (predicate calls).
    cost: float
    #: Expected number of solutions.
    solutions: float
    #: Probability of at least one solution.
    prob: float

    def __post_init__(self):
        if self.cost < 0:
            raise ValueError(f"negative cost: {self.cost}")
        if self.solutions < 0:
            raise ValueError(f"negative solutions: {self.solutions}")
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"probability out of range: {self.prob}")

    @property
    def chain_probability(self) -> float:
        """Per-visit success probability ``s/(1+s)`` for the chain."""
        return self.solutions / (1.0 + self.solutions)

    @property
    def chain_cost(self) -> float:
        """Per-visit cost ``cost/(1+s)`` for the chain."""
        return self.cost / (1.0 + self.solutions)

    @property
    def failure_ratio(self) -> float:
        """Li & Wah's ``q/c`` goal-ordering key (decreasing is better)."""
        if self.cost <= 0:
            return float("inf")
        return (1.0 - self.prob) / self.cost

    @property
    def success_ratio(self) -> float:
        """Li & Wah's ``p/c`` clause-ordering key (decreasing is better)."""
        if self.cost <= 0:
            return float("inf")
        return self.prob / self.cost

    def scaled(self, factor: float) -> "GoalStats":
        """Stats with solutions and probability scaled by a match factor."""
        return GoalStats(
            cost=self.cost,
            solutions=self.solutions * factor,
            prob=min(1.0, self.prob * factor),
        )
