"""The whole-program cost model (paper §VI-A-4 and §VI-B-2).

"Cost and probability of a clause come from those of its goals ...
these come from costs and probabilities of facts." :class:`CostModel`
implements exactly that propagation:

* **facts** cost one call; their match probabilities come from Warren
  domain estimation (:mod:`repro.analysis.domains`);
* **builtins** come from the hand-written table
  (:mod:`repro.analysis.builtin_modes`);
* **rule predicates** get, per calling mode, a Markov-chain evaluation
  of each clause body (with modes propagated goal by goal) combined with
  the head-match probabilities;
* **recursive predicates** use their ``:- cost(...)`` declarations;
  without one, a conservative fallback estimate is used and a warning
  recorded (the paper: "probabilities and costs for recursive
  predicates" are part of the information the programmer provides).

All results are memoised per ``(predicate, input mode)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.builtin_modes import builtin_profile
from ..analysis.declarations import Declarations
from ..analysis.domains import DomainAnalysis
from ..analysis.mode_inference import ModeInference
from ..analysis.modes import (
    Inst,
    Mode,
    ModeItem,
    VarState,
    apply_output,
    bind_head_states,
    call_mode,
    mode_str,
)
from ..prolog.builtins import is_builtin
from ..prolog.database import Clause, Database, body_goals
from ..prolog.terms import (
    Atom,
    Struct,
    Term,
    Var,
    deref,
    functor_indicator,
    term_variables,
)
from .clause_model import SequenceEvaluation, evaluate_sequence
from .goal_stats import GoalStats

__all__ = ["CostModel", "head_match_probability"]

Indicator = Tuple[str, int]

#: Fallback stats for recursive predicates without declarations.
_RECURSIVE_FALLBACK = GoalStats(cost=20.0, solutions=1.0, prob=0.5)
#: Default match probability for a non-constant (structured) head
#: argument against an instantiated call argument.
_STRUCT_MATCH_PROB = 0.5


def head_match_probability(
    clause: Clause, mode: Mode, domains: DomainAnalysis
) -> float:
    """Probability that a call in ``mode`` unifies with this clause head.

    Per §VI-A-4: ``Π |domain_i|^{-1}`` over positions instantiated in
    both the call (``+`` in the mode) and the head (a constant there);
    structured head arguments against instantiated calls get a default
    0.5; variable head arguments always match.
    """
    head = deref(clause.head)
    if isinstance(head, Atom):
        return 1.0
    assert isinstance(head, Struct)
    probability = 1.0
    for position, (arg, item) in enumerate(zip(head.args, mode), start=1):
        if item is not ModeItem.PLUS:
            continue
        arg = deref(arg)
        if isinstance(arg, Var):
            continue
        if isinstance(arg, Struct):
            probability *= _STRUCT_MATCH_PROB
        else:  # atom or number: one point of the domain
            probability *= 1.0 / domains.domain_size(clause.indicator, position)
    return probability


class CostModel:
    """Expected cost / solutions / success probability for every call."""

    def __init__(
        self,
        database: Database,
        declarations: Optional[Declarations] = None,
        mode_inference: Optional[ModeInference] = None,
        domains: Optional[DomainAnalysis] = None,
        table_all: bool = False,
    ):
        self.database = database
        self.declarations = declarations or Declarations()
        self.modes = mode_inference or ModeInference(database, self.declarations)
        self.domains = domains or DomainAnalysis(database, self.declarations)
        #: Treat every user predicate as tabled (engine ``--table-all``).
        self.table_all = table_all
        self._memo: Dict[Tuple[Indicator, Mode], Optional[GoalStats]] = {}
        self._in_progress: Set[Tuple[Indicator, Mode]] = set()
        self.warnings: List[str] = []

    def is_tabled(self, indicator: Indicator) -> bool:
        """Will the engine serve this predicate from a variant table?"""
        if self.table_all and self.database.defines(indicator):
            return True
        return (
            indicator in self.database.tabled
            or indicator in self.declarations.tabled
        )

    # -- predicate-level stats ------------------------------------------------

    def override_stats(
        self, indicator: Indicator, mode: Mode, stats: Optional[GoalStats]
    ) -> None:
        """Install externally computed stats for a (predicate, mode).

        The reorderer uses this to propagate the statistics of the
        *reordered* version of each predicate upward ("Working upwards,
        the reorderer handles every user predicate", §VI-B-2), so
        callers are ordered against the costs they will actually see.
        """
        self._memo[(indicator, mode)] = stats

    def remove_override(self, indicator: Indicator, mode: Mode) -> None:
        """Drop an installed override (and any memoized value) for one
        (predicate, mode), so the next :meth:`predicate_stats` call
        recomputes it from the program text. The pipeline's degrade
        path uses this to roll back the overrides of a failed build.
        """
        self._memo.pop((indicator, mode), None)

    def predicate_stats(
        self, indicator: Indicator, mode: Mode
    ) -> Optional[GoalStats]:
        """Stats for a call in ``mode``; None when the mode is illegal."""
        key = (indicator, mode)
        if key in self._memo:
            return self._memo[key]

        declared = self.declarations.cost_for(indicator, mode)
        if declared is not None:
            stats = GoalStats(
                cost=declared.cost,
                solutions=declared.expected_solutions,
                prob=declared.prob,
            )
            stats = self._amortize_if_tabled(indicator, stats)
            self._memo[key] = stats
            return stats

        profile = builtin_profile(indicator)
        if profile is not None:
            entry = profile.accepting(mode)
            stats = (
                None
                if entry is None
                else GoalStats(
                    cost=entry.cost,
                    solutions=entry.expected_solutions,
                    prob=entry.prob,
                )
            )
            self._memo[key] = stats
            return stats

        if not self.database.defines(indicator):
            if is_builtin(indicator):
                stats = GoalStats(cost=1.0, solutions=0.5, prob=0.5)
            else:
                stats = None
            self._memo[key] = stats
            return stats

        if not self.modes.is_legal(indicator, mode):
            self._memo[key] = None
            return None

        if key in self._in_progress:
            if self.is_tabled(indicator):
                # A recursive occurrence of a tabled predicate is a
                # back edge that consumes stored answers, not a fresh
                # derivation: cheap, no declaration needed.
                from ..prolog.tabling.cost import TABLED_RECURSIVE_STATS

                return TABLED_RECURSIVE_STATS
            # Recursive call without a declaration: conservative estimate.
            self.warnings.append(
                f"no cost declaration for recursive "
                f"{indicator[0]}/{indicator[1]} in mode {mode_str(mode)}; "
                f"using fallback estimate"
            )
            return _RECURSIVE_FALLBACK

        self._in_progress.add(key)
        try:
            stats = self._combine_clauses(indicator, mode)
        finally:
            self._in_progress.discard(key)
        stats = self._amortize_if_tabled(indicator, stats)
        self._memo[key] = stats
        return stats

    def _amortize_if_tabled(
        self, indicator: Indicator, stats: Optional[GoalStats]
    ) -> Optional[GoalStats]:
        """Mix first-call and table-re-call cost for tabled predicates."""
        if stats is None or not self.is_tabled(indicator):
            return stats
        from ..prolog.tabling.cost import tabled_stats

        return tabled_stats(stats)

    def _combine_clauses(
        self, indicator: Indicator, mode: Mode
    ) -> Optional[GoalStats]:
        total_cost = 1.0  # the call itself
        total_solutions = 0.0
        miss_probability = 1.0
        any_legal = False
        for clause in self.database.clauses(indicator):
            match = head_match_probability(clause, mode, self.domains)
            if match == 0.0:
                continue
            body = self.clause_body_evaluation(clause, mode)
            if body is None:
                continue  # clause illegal in this mode
            any_legal = True
            total_cost += match * body.total_cost
            total_solutions += match * body.solutions
            miss_probability *= 1.0 - match * body.p_success
        if not any_legal:
            return None
        return GoalStats(
            cost=total_cost,
            solutions=total_solutions,
            prob=1.0 - miss_probability,
        )

    # -- clause-level evaluation ------------------------------------------------

    def clause_body_evaluation(
        self, clause: Clause, input_mode: Mode
    ) -> Optional[SequenceEvaluation]:
        """Chain evaluation of a clause body under an input mode."""
        states: VarState = {}
        bind_head_states(clause.head, input_mode, states)
        goals = body_goals(clause.body)
        return self.evaluate_goals(goals, states)

    def evaluate_goals(
        self, goals: List[Term], states: VarState
    ) -> Optional[SequenceEvaluation]:
        """Evaluate a goal sequence, updating ``states`` in place.

        Returns None as soon as any goal would be called illegally —
        the caller (the reorderer's legality filter) rejects the order.
        """
        stats_list: List[GoalStats] = []
        for goal in goals:
            stats = self.goal_stats(goal, states)
            if stats is None:
                return None
            stats_list.append(stats)
        return evaluate_sequence(stats_list)

    # -- goal-level stats ----------------------------------------------------------

    def goal_stats(self, goal: Term, states: VarState) -> Optional[GoalStats]:
        """Stats of one goal under the current variable states.

        Handles control constructs structurally; updates ``states`` with
        the goal's output bindings on (assumed) success.
        """
        goal = deref(goal)
        if isinstance(goal, Var):
            return None  # variable goals forbidden
        if isinstance(goal, Atom):
            if goal.name in ("true", "!"):
                return GoalStats(cost=0.0, solutions=1.0, prob=1.0)
            if goal.name in ("fail", "false"):
                return GoalStats(cost=0.0, solutions=0.0, prob=0.0)
            return self._call_stats(goal, states)
        assert isinstance(goal, Struct)
        name, arity = goal.name, goal.arity

        if name == "," and arity == 2:
            inner = self.evaluate_goals(body_goals(goal), states)
            return None if inner is None else inner.as_goal_stats()
        if name == ";" and arity == 2:
            return self._disjunction_stats(goal, states)
        if name == "->" and arity == 2:
            return self._if_then_else_stats(goal.args[0], goal.args[1], None, states)
        if name in ("\\+", "not") and arity == 1:
            return self._negation_stats(goal.args[0], states)
        if name in ("call", "once") and arity == 1:
            scratch = dict(states)
            inner_stats = self.goal_stats(goal.args[0], scratch)
            if inner_stats is None:
                return None
            states.update(scratch)
            if name == "once":
                return GoalStats(
                    cost=inner_stats.cost,
                    solutions=inner_stats.prob,
                    prob=inner_stats.prob,
                )
            return inner_stats
        if name in ("findall", "bagof", "setof") and arity == 3:
            inner = self.goal_stats(_strip_carets(goal.args[1]), dict(states))
            if inner is None:
                return None
            for variable in term_variables(goal.args[2]):
                states[id(variable)] = Inst.GROUND
            prob = 1.0 if name == "findall" else inner.prob
            return GoalStats(cost=1.0 + inner.cost, solutions=prob, prob=prob)
        return self._call_stats(goal, states)

    def _call_stats(self, goal: Term, states: VarState) -> Optional[GoalStats]:
        indicator = functor_indicator(goal)
        mode = call_mode(goal, states)
        stats = self.predicate_stats(indicator, mode)
        if stats is None:
            return None
        output = self.modes.output_mode(indicator, mode)
        if output is None:
            return None
        apply_output(goal, output, states)
        return stats

    def _disjunction_stats(
        self, goal: Struct, states: VarState
    ) -> Optional[GoalStats]:
        left, right = goal.args
        left_deref = deref(left)
        if (
            isinstance(left_deref, Struct)
            and left_deref.name == "->"
            and left_deref.arity == 2
        ):
            return self._if_then_else_stats(
                left_deref.args[0], left_deref.args[1], right, states
            )
        left_states = dict(states)
        left_stats = self.goal_stats(left, left_states)
        right_states = dict(states)
        right_stats = self.goal_stats(right, right_states)
        # Either branch illegal makes the whole construct illegal:
        # Prolog would hit the run-time error when it tries that branch.
        if left_stats is None or right_stats is None:
            return None
        _merge_states(states, left_states, right_states)
        return GoalStats(
            cost=left_stats.cost + right_stats.cost,
            solutions=left_stats.solutions + right_stats.solutions,
            prob=1.0 - (1.0 - left_stats.prob) * (1.0 - right_stats.prob),
        )

    def _if_then_else_stats(
        self,
        condition: Term,
        then_part: Term,
        else_part: Optional[Term],
        states: VarState,
    ) -> Optional[GoalStats]:
        condition_states = dict(states)
        condition_stats = self.goal_stats(condition, condition_states)
        if condition_stats is None:
            return None
        then_states = dict(condition_states)
        then_stats = self.goal_stats(then_part, then_states)
        if then_stats is None:
            return None
        p_condition = condition_stats.prob
        if else_part is None:
            states.update(then_states)
            return GoalStats(
                cost=condition_stats.cost + p_condition * then_stats.cost,
                solutions=p_condition * then_stats.solutions,
                prob=p_condition * then_stats.prob,
            )
        else_states = dict(states)
        else_stats = self.goal_stats(else_part, else_states)
        if else_stats is None:
            return None
        _merge_states(states, then_states, else_states)
        return GoalStats(
            cost=condition_stats.cost
            + p_condition * then_stats.cost
            + (1.0 - p_condition) * else_stats.cost,
            solutions=p_condition * then_stats.solutions
            + (1.0 - p_condition) * else_stats.solutions,
            prob=p_condition * then_stats.prob
            + (1.0 - p_condition) * else_stats.prob,
        )

    def _negation_stats(self, inner: Term, states: VarState) -> Optional[GoalStats]:
        inner_stats = self.goal_stats(inner, dict(states))  # bindings stay local
        if inner_stats is None:
            return None
        prob = 1.0 - inner_stats.prob
        # Cost: negation runs the goal once (to its first solution).
        return GoalStats(cost=1.0 + inner_stats.cost, solutions=prob, prob=prob)


def _merge_states(states: VarState, first: VarState, second: VarState) -> None:
    from ..analysis.modes import join_inst

    keys = set(first) | set(second)
    for key in keys:
        states[key] = join_inst(
            first.get(key, Inst.FREE), second.get(key, Inst.FREE)
        )


def _strip_carets(term: Term) -> Term:
    term = deref(term)
    while isinstance(term, Struct) and term.name == "^" and term.arity == 2:
        term = deref(term.args[1])
    return term
