"""Closed-form cost formulas (paper §III and §VI-A-2).

These are the no-matrix counterparts of :mod:`repro.markov.chain`:

* the Fig. 1/Fig. 2 expected-cost expressions for trying children of an
  OR-node (clauses) until first success, and of an AND-node (goals)
  until first failure;
* the Li & Wah optimal-order criteria — clauses by decreasing ``p/c``,
  goals by decreasing ``q/c``;
* the paper's closed form for the all-solutions chain visit counts,
  ``v_i = Π_{j≤i} p_{j−1}/(1 − p_j)`` with ``p_0 = 1``, and the derived
  per-solution cost — cross-checked against the matrix method in the
  property tests;
* the gambler's-ruin closed form for the single-solution chain's
  success probability.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .chain import clamp_probability

__all__ = [
    "expected_cost_until_success",
    "expected_cost_until_failure",
    "order_by_success_ratio",
    "order_by_failure_ratio",
    "all_solutions_visits_closed_form",
    "all_solutions_cost_closed_form",
    "single_solution_success_closed_form",
]


def expected_cost_until_success(
    probs: Sequence[float], costs: Sequence[float]
) -> float:
    """Expected cost of trying alternatives in order until one succeeds.

    The Fig. 1 formula: alternative *i* is reached when all earlier ones
    failed, and contributes the cumulative cost so far when it succeeds
    — ``Σ_i (Π_{j<i} (1−p_j)) · p_i · Σ_{j≤i} c_j``. (As in the paper's
    worked example, the all-fail outcome contributes nothing.)
    """
    if len(probs) != len(costs):
        raise ValueError("probs and costs must have equal length")
    total = 0.0
    reach = 1.0  # probability that alternative i is reached
    cumulative = 0.0
    for p, c in zip(probs, costs):
        cumulative += c
        total += reach * p * cumulative
        reach *= 1.0 - p
    return total


def expected_cost_until_failure(
    fail_probs: Sequence[float], costs: Sequence[float]
) -> float:
    """Expected cost of a conjunction failing at goal *i* (Fig. 2).

    ``Σ_i (Π_{j<i} (1−q_j)) · q_i · Σ_{j≤i} c_j`` where ``q`` are
    failure probabilities.
    """
    return expected_cost_until_success(fail_probs, costs)


def order_by_success_ratio(
    probs: Sequence[float], costs: Sequence[float]
) -> List[int]:
    """Indices ordered by decreasing ``p/c`` — Li & Wah's optimal order
    for the children of an OR-node (clauses)."""
    return sorted(
        range(len(probs)), key=lambda i: probs[i] / costs[i], reverse=True
    )


def order_by_failure_ratio(
    fail_probs: Sequence[float], costs: Sequence[float]
) -> List[int]:
    """Indices ordered by decreasing ``q/c`` — Li & Wah's optimal order
    for the children of an AND-node (goals)."""
    return sorted(
        range(len(fail_probs)),
        key=lambda i: fail_probs[i] / costs[i],
        reverse=True,
    )


def all_solutions_visits_closed_form(
    probs: Sequence[float],
) -> Tuple[Tuple[float, ...], float]:
    """Closed-form visit counts of the Fig. 5 chain.

    Returns ``(goal visits, success visits)``. Derivation: the chain is
    a birth–death process absorbed only at F, so net flow across every
    cut is zero — ``v_1 (1−p_1) = 1`` (exactly one absorption) and
    ``v_{i+1} (1−p_{i+1}) = v_i p_i``, giving the paper's product form
    ``v_i = Π_{j≤i} p_{j−1}/(1−p_j)`` with ``p_0 = 1``; the success
    state is entered once per success of the last goal, ``v_S = v_n p_n``.
    """
    probs = [clamp_probability(p, high=1.0 - 1e-9) for p in probs]
    visits: List[float] = []
    previous_flow = 1.0  # v_{i-1} · p_{i-1}, with the virtual p_0 = 1
    for p in probs:
        v = previous_flow / (1.0 - p)
        visits.append(v)
        previous_flow = v * p
    success_visits = previous_flow if probs else 1.0
    return tuple(visits), success_visits


def all_solutions_cost_closed_form(
    probs: Sequence[float], costs: Sequence[float]
) -> Tuple[float, float]:
    """(total cost, cost per solution) of the all-solutions chain."""
    if len(probs) != len(costs):
        raise ValueError("probs and costs must have equal length")
    visits, success_visits = all_solutions_visits_closed_form(probs)
    total = sum(c * v for c, v in zip(costs, visits))
    per_solution = total / success_visits if success_visits > 0 else float("inf")
    return total, per_solution


def single_solution_success_closed_form(probs: Sequence[float]) -> float:
    """Probability the Fig. 4 chain is absorbed in S (gambler's ruin).

    With per-state odds ``r_i = (1−p_i)/p_i``, the probability of
    reaching S before F from the first goal is
    ``1 / (1 + Σ_{k=1}^{n} Π_{j≤k} r_j)`` — the standard heterogeneous
    ruin formula.
    """
    if not probs:
        return 1.0
    probs = [clamp_probability(p, low=1e-12) for p in probs]
    denominator = 1.0
    product = 1.0
    for p in probs:
        product *= (1.0 - p) / p
        denominator += product
    return 1.0 / denominator
