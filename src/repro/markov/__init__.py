"""The Markov-chain cost model (paper §VI): absorbing chains over clause
bodies, closed-form formulas, and the whole-program cost propagation."""

from .backend import BackendChoice, bottomup_cost_estimate, choose_backend
from .chain import (
    AllSolutionsResult,
    ChainResult,
    all_solutions_analysis,
    all_solutions_matrix,
    clamp_probability,
    gaussian_solve,
    single_solution_analysis,
    single_solution_matrix,
    solve_linear_system,
)
from .clause_model import SequenceEvaluation, evaluate_sequence, sequence_cost
from .formulas import (
    all_solutions_cost_closed_form,
    all_solutions_visits_closed_form,
    expected_cost_until_failure,
    expected_cost_until_success,
    order_by_failure_ratio,
    order_by_success_ratio,
    single_solution_success_closed_form,
)
from .goal_stats import GoalStats
from .predicate_model import CostModel, head_match_probability
from .stats_store import StatsStore

__all__ = [
    "AllSolutionsResult",
    "BackendChoice",
    "ChainResult",
    "CostModel",
    "GoalStats",
    "SequenceEvaluation",
    "StatsStore",
    "all_solutions_analysis",
    "all_solutions_cost_closed_form",
    "all_solutions_matrix",
    "all_solutions_visits_closed_form",
    "bottomup_cost_estimate",
    "choose_backend",
    "clamp_probability",
    "evaluate_sequence",
    "expected_cost_until_failure",
    "expected_cost_until_success",
    "gaussian_solve",
    "head_match_probability",
    "order_by_failure_ratio",
    "order_by_success_ratio",
    "sequence_cost",
    "single_solution_analysis",
    "single_solution_matrix",
    "single_solution_success_closed_form",
    "solve_linear_system",
]
