"""Keyed storage for measured :class:`GoalStats`.

The empirical calibrator (paper §I-E) is by far the most expensive
analysis — every ``(indicator, mode)`` pair costs up to ``max_samples``
full engine runs. This store lets the reorderer's ``AnalysisContext``
keep those measurements across reorder runs and re-measure only the
pairs whose predicates actually changed (the edited SCC plus its
callers), in the spirit of Ledeniov & Markovitch's cached subgoal
statistics.

A stored value of ``None`` is meaningful: it records that measurement
was *attempted and failed* (a sample errored or blew the call budget),
so the pair is not pointlessly re-measured until an edit invalidates
it. Use :meth:`lookup` to distinguish "measured, failed" from "never
measured".
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from .goal_stats import GoalStats

__all__ = ["StatsStore"]

Indicator = Tuple[str, int]
#: (indicator, mode) — the calibration unit.
StatsKey = Tuple[Indicator, tuple]


class StatsStore:
    """Measured per-(predicate, mode) statistics with targeted
    invalidation by predicate."""

    def __init__(self) -> None:
        self._entries: Dict[StatsKey, Optional[GoalStats]] = {}

    def lookup(self, key: StatsKey) -> Tuple[bool, Optional[GoalStats]]:
        """``(known, stats)`` — ``known`` is False when the pair was
        never measured; ``stats`` is None for a failed measurement."""
        if key in self._entries:
            return True, self._entries[key]
        return False, None

    def put(self, key: StatsKey, stats: Optional[GoalStats]) -> None:
        """Record one measurement result (None = measurement failed)."""
        self._entries[key] = stats

    def invalidate(self, indicators: Iterable[Indicator]) -> int:
        """Drop all entries of the given predicates; returns the count."""
        doomed = set(indicators)
        if not doomed:
            return 0
        stale = [key for key in self._entries if key[0] in doomed]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: StatsKey) -> bool:
        return key in self._entries

    def items(self) -> Iterator[Tuple[StatsKey, Optional[GoalStats]]]:
        """All (key, stats) entries, in insertion order."""
        return iter(self._entries.items())
