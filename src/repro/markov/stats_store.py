"""Keyed storage for measured :class:`GoalStats`.

The empirical calibrator (paper §I-E) is by far the most expensive
analysis — every ``(indicator, mode)`` pair costs up to ``max_samples``
full engine runs. This store lets the reorderer's ``AnalysisContext``
keep those measurements across reorder runs and re-measure only the
pairs whose predicates actually changed (the edited SCC plus its
callers), in the spirit of Ledeniov & Markovitch's cached subgoal
statistics.

A stored value of ``None`` is meaningful: it records that measurement
was *attempted and failed* (a sample errored or blew the call budget),
so the pair is not pointlessly re-measured until an edit invalidates
it. Use :meth:`lookup` to distinguish "measured, failed" from "never
measured".

Beside the measured entries the store keeps a second, *observed* tier
fed continuously from runtime telemetry (:meth:`observe`): EWMA-decayed
statistics keyed by the database's per-predicate generation watermarks,
so stale observations from before an edit never blend into fresh ones.
:meth:`adopt_observed` promotes well-supported observations into the
measured tier, which the reorder pipeline's calibration serves as
cache hits — the literal live feed from running programs back into the
cost model (paper §VIII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .goal_stats import GoalStats

__all__ = ["ObservedStats", "StatsStore"]

Indicator = Tuple[str, int]
#: (indicator, mode) — the calibration unit.
StatsKey = Tuple[Indicator, tuple]


@dataclass
class ObservedStats:
    """One EWMA-blended runtime observation of a calibration pair.

    ``weight`` is the total sampled-box support behind the blend;
    ``mark`` the database generation watermark of the predicate when
    the most recent observation arrived (observations from older marks
    are discarded rather than blended — the predicate changed under
    them).
    """

    stats: GoalStats
    weight: float
    mark: int


class StatsStore:
    """Measured per-(predicate, mode) statistics with targeted
    invalidation by predicate."""

    def __init__(self) -> None:
        self._entries: Dict[StatsKey, Optional[GoalStats]] = {}
        self._observed: Dict[StatsKey, ObservedStats] = {}

    def lookup(self, key: StatsKey) -> Tuple[bool, Optional[GoalStats]]:
        """``(known, stats)`` — ``known`` is False when the pair was
        never measured; ``stats`` is None for a failed measurement."""
        if key in self._entries:
            return True, self._entries[key]
        return False, None

    def put(self, key: StatsKey, stats: Optional[GoalStats]) -> None:
        """Record one measurement result (None = measurement failed)."""
        self._entries[key] = stats

    def observe(
        self,
        key: StatsKey,
        stats: GoalStats,
        weight: float = 1.0,
        mark: int = 0,
        decay: float = 0.3,
    ) -> ObservedStats:
        """Fold one runtime observation into the observed tier.

        ``weight`` is the sampled-box support behind ``stats`` (more
        support pulls the EWMA harder: the effective blend factor is
        ``1 - (1 - decay) ** weight``). ``mark`` is the predicate's
        generation watermark: a newer mark *replaces* the stored blend
        (the predicate was edited, old behaviour is void), an older
        mark is ignored, an equal mark blends.
        """
        stored = self._observed.get(key)
        if stored is None or mark > stored.mark:
            blended = ObservedStats(stats=stats, weight=weight, mark=mark)
            self._observed[key] = blended
            return blended
        if mark < stored.mark:
            return stored
        alpha = 1.0 - (1.0 - min(max(decay, 0.0), 1.0)) ** max(weight, 0.0)
        old = stored.stats
        blended_stats = GoalStats(
            cost=old.cost + alpha * (stats.cost - old.cost),
            solutions=old.solutions + alpha * (stats.solutions - old.solutions),
            prob=min(1.0, max(0.0, old.prob + alpha * (stats.prob - old.prob))),
        )
        blended = ObservedStats(
            stats=blended_stats, weight=stored.weight + weight, mark=mark
        )
        self._observed[key] = blended
        return blended

    def observed(self, key: StatsKey) -> Optional[ObservedStats]:
        """The observed-tier blend for one pair, if any."""
        return self._observed.get(key)

    def observed_items(self) -> Iterator[Tuple[StatsKey, ObservedStats]]:
        """All observed-tier entries, in insertion order."""
        return iter(self._observed.items())

    def adopt_observed(self, min_weight: float = 1.0) -> List[StatsKey]:
        """Promote observed blends into the measured tier.

        Only pairs with at least ``min_weight`` support are adopted.
        Calibration serves measured entries as cache hits, so adopted
        observations feed straight into the next cost-model build.
        Returns the adopted keys.
        """
        adopted = []
        for key, observed in self._observed.items():
            if observed.weight >= min_weight:
                self._entries[key] = observed.stats
                adopted.append(key)
        return adopted

    def invalidate(self, indicators: Iterable[Indicator]) -> int:
        """Drop all entries (measured and observed) of the given
        predicates; returns the measured-entry count dropped."""
        doomed = set(indicators)
        if not doomed:
            return 0
        stale = [key for key in self._entries if key[0] in doomed]
        for key in stale:
            del self._entries[key]
        stale_observed = [key for key in self._observed if key[0] in doomed]
        for key in stale_observed:
            del self._observed[key]
        return len(stale)

    def clear(self) -> None:
        """Drop every entry, measured and observed."""
        self._entries.clear()
        self._observed.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: StatsKey) -> bool:
        return key in self._entries

    def items(self) -> Iterator[Tuple[StatsKey, Optional[GoalStats]]]:
        """All (key, stats) entries, in insertion order."""
        return iter(self._entries.items())
