"""Cross-cutting robustness layer: budgets, fault injection, watchdog.

Three cooperating pieces keep the system alive on hostile inputs:

* :mod:`~repro.robustness.budget` — a unified :class:`Budget` (deadline
  + call/step budgets + solution cap + :class:`CancelToken`) threaded
  through the engine, tabling, goal search and the reorder pipeline;
* :mod:`~repro.robustness.faults` — deterministic fault injection at
  named sites, driving the ``tests/robustness`` degradation proofs;
* :mod:`~repro.robustness.watchdog` — a supervised subprocess pool
  (:class:`WorkerPool`: per-task SIGKILL-on-timeout, crash detection,
  respawn) backing parallel calibration and the ``repro serve``
  process executor.

See ``docs/ROBUSTNESS.md`` for the degradation matrix.
"""

from .budget import Budget, CancelToken
from .watchdog import (
    TaskOutcome,
    WatchdogOptions,
    WatchdogUnavailable,
    WorkerCrashed,
    WorkerPool,
    WorkerTaskError,
    WorkerTimeout,
    run_watchdogged,
)

__all__ = [
    "Budget",
    "CancelToken",
    "TaskOutcome",
    "WatchdogOptions",
    "WatchdogUnavailable",
    "WorkerCrashed",
    "WorkerPool",
    "WorkerTaskError",
    "WorkerTimeout",
    "run_watchdogged",
]
