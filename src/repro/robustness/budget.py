"""Unified resource budgets: deadlines, counters, cooperative cancel.

The paper's experiments bound runaway queries with *count* limits (the
engine's ``max_depth`` / ``call_budget``), but counts alone cannot cap
the ordering machinery itself — Ledeniov & Markovitch stress that the
cost of *ordering* must be bounded for subgoal reordering to be
practical, and the calibrator literally runs user clauses. A
:class:`Budget` unifies every bound the system enforces:

* a **wall-clock deadline** (seconds from :meth:`Budget.start`),
* a **call budget** (engine predicate calls charged via
  :meth:`charge_call`),
* a **step budget** (engine body-loop iterations charged via
  :meth:`charge_step` — catches backtracking loops that make no new
  calls, e.g. ``between/3`` redo storms),
* a **solution cap** (:meth:`note_solution`, a clean stop rather than
  an error),
* a cooperative :class:`CancelToken`.

One Budget object is threaded through ``Engine._solve_body`` /
``_charge_call``, the tabling fixpoint loop, the goal-search expansion
loops, and the reorder pipeline's per-predicate boundaries. Checks are
cooperative: code calls :meth:`charge_call` / :meth:`charge_step` on
its hot path (the deadline is only consulted every ``check_interval``
charges, keeping the per-iteration cost to an integer bump) or
:meth:`check` at coarse boundaries. Exhaustion raises the typed
:class:`~repro.errors.BudgetExceededError` family, which the CLI maps
to its resource exit code (3).
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from ..errors import BudgetExceededError, DeadlineExceeded, QueryCancelled

__all__ = ["Budget", "CancelToken"]


class CancelToken:
    """Cooperative cancellation flag shared between a controller and a
    running computation.

    The controller (another thread, a signal handler, a watchdog) calls
    :meth:`cancel`; the computation observes it at the next budget
    check and unwinds with :class:`~repro.errors.QueryCancelled`.
    Setting a flag is atomic in CPython, so no locking is needed.
    """

    __slots__ = ("cancelled", "reason")

    def __init__(self) -> None:
        self.cancelled = False
        self.reason = ""

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation (idempotent; first reason wins)."""
        if not self.cancelled:
            self.reason = reason
            self.cancelled = True


class Budget:
    """One bundle of resource bounds, checked cooperatively.

    A Budget is single-use but re-entrant: :meth:`start` arms the
    deadline once (repeat calls are no-ops), so the same object can be
    shared by every stage of one command — reorder pipeline,
    calibration, query execution — and they all count against the same
    wall clock.
    """

    __slots__ = (
        "deadline",
        "max_calls",
        "max_steps",
        "max_solutions",
        "token",
        "check_interval",
        "events",
        "calls",
        "steps",
        "solutions",
        "_started_at",
        "_expires_at",
        "_tick",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        calls: Optional[int] = None,
        steps: Optional[int] = None,
        solutions: Optional[int] = None,
        token: Optional[CancelToken] = None,
        check_interval: int = 64,
    ):
        #: Wall-clock allowance in seconds, armed by :meth:`start`.
        self.deadline = deadline
        self.max_calls = calls
        self.max_steps = steps
        self.max_solutions = solutions
        self.token = token
        #: Charges between deadline/cancel consultations. Counter caps
        #: are still enforced exactly on every charge.
        self.check_interval = max(1, check_interval)
        #: Optional event bus: exhaustion emits a ``budget`` event
        #: (see :class:`repro.observability.events.BudgetEvent`).
        self.events = None
        self.calls = 0
        self.steps = 0
        self.solutions = 0
        self._started_at: Optional[float] = None
        self._expires_at: Optional[float] = None
        self._tick = 0

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "Budget":
        """Arm the deadline clock (idempotent); returns self."""
        if self._started_at is None:
            self._started_at = perf_counter()
            if self.deadline is not None:
                self._expires_at = self._started_at + self.deadline
        return self

    @property
    def started(self) -> bool:
        return self._started_at is not None

    @property
    def expired(self) -> bool:
        """Has the armed deadline passed? (False when no deadline.)"""
        return self._expires_at is not None and perf_counter() > self._expires_at

    def remaining(self) -> Optional[float]:
        """Seconds left on the armed deadline (None when unlimited)."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - perf_counter())

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 before it)."""
        if self._started_at is None:
            return 0.0
        return perf_counter() - self._started_at

    # -- checks -----------------------------------------------------------

    def _emit(self, what: str, site: str) -> None:
        if self.events is not None:
            from ..observability.events import BudgetEvent

            self.events.emit(BudgetEvent(what=what, site=site))

    def check(self, site: str = "") -> None:
        """Immediate deadline + cancellation check (coarse boundaries)."""
        token = self.token
        if token is not None and token.cancelled:
            self._emit("cancelled", site)
            raise QueryCancelled(
                f"cancelled: {token.reason}" + (f" (at {site})" if site else "")
            )
        if self._expires_at is not None and perf_counter() > self._expires_at:
            self._emit("deadline", site)
            raise DeadlineExceeded(
                f"deadline of {self.deadline:g}s exceeded"
                + (f" (at {site})" if site else "")
            )

    def charge_call(self, site: str = "engine.call") -> None:
        """Charge one predicate call; raise when a bound is hit."""
        self.calls += 1
        if self.max_calls is not None and self.calls > self.max_calls:
            self._emit("calls", site)
            raise BudgetExceededError(
                f"call budget of {self.max_calls} exhausted"
            )
        self._tick += 1
        if self._tick >= self.check_interval:
            self._tick = 0
            self.check(site)

    def charge_step(self, site: str = "engine.step") -> None:
        """Charge one resolution step (body-loop iteration)."""
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            self._emit("steps", site)
            raise BudgetExceededError(
                f"step budget of {self.max_steps} exhausted"
            )
        self._tick += 1
        if self._tick >= self.check_interval:
            self._tick = 0
            self.check(site)

    def note_solution(self) -> bool:
        """Count one solution; True when the cap is now reached.

        The solution cap is a *clean stop* (the producer simply stops
        enumerating), not an error: a capped answer set is still a
        correct prefix of the full one.
        """
        self.solutions += 1
        return (
            self.max_solutions is not None
            and self.solutions >= self.max_solutions
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline:g}s")
        if self.max_calls is not None:
            parts.append(f"calls={self.calls}/{self.max_calls}")
        if self.max_steps is not None:
            parts.append(f"steps={self.steps}/{self.max_steps}")
        if self.max_solutions is not None:
            parts.append(f"solutions={self.solutions}/{self.max_solutions}")
        if self.token is not None:
            parts.append(f"cancelled={self.token.cancelled}")
        return f"Budget({', '.join(parts)})"
