"""Deterministic fault injection at named sites.

The robustness suite must *prove* every degradation path: that an
engine abort maps to one clean CLI error, that a pipeline phase blowing
up degrades exactly one predicate, that a hung calibration worker is
killed and quarantined. Faults therefore fire at **named sites** the
production code declares::

    engine.call          Engine._charge_call (every predicate call)
    tabling.complete     the tabling fixpoint loop
    phase.build          ReorderPipeline, per-predicate build
    calibration.worker   the parallel-calibration worker task
    serve.request        QueryServer request execution (worker thread,
                         before the engine runs — a ``hang`` here
                         simulates a wedged request the serve-side
                         deadline watchdog must answer for)
    serve.worker         inside a ``--backend=process`` worker process,
                         before the engine runs — ``hang`` wedges the
                         worker non-cooperatively (the supervisor must
                         SIGKILL it), ``crash`` drops the process on
                         the spot (``os._exit``), exercising the
                         retry → degrade → quarantine ladder

The fault **kinds**:

* ``raise``   — raise :class:`~repro.errors.FaultInjected`;
* ``hang``    — ``time.sleep`` for the configured seconds (default 5),
  simulating a wedge that only wall-clock machinery can catch;
* ``exhaust`` — raise :class:`~repro.errors.BudgetExceededError`, as if
  a resource budget ran out at that site;
* ``crash``   — ``os._exit(13)``: the process dies instantly, no
  exception, no cleanup — a segfault/OOM-kill stand-in. Only
  meaningful at sites that run inside supervised worker processes;
  arming it at an in-process site kills that process, by design.

Selection is deterministic: a spec like ``engine.call:raise@5`` trips
on the 5th hit of the site (counted per process); keyed sites
(``calibration.worker`` passes the task index as ``key``) trip when
``key + 1 == N``. Without ``@N`` the trigger index derives from the
plan's seed, so the same spec + seed always trips at the same place. A
rule fires at most once per process.

Plans install from the environment (``REPRO_FAULTS`` spec +
``REPRO_FAULTS_SEED``), which worker processes inherit, or from the CLI
(``--faults``). The hot-path guard is ``faults.ACTIVE is not None`` —
one module-attribute read when idle.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from ..errors import BudgetExceededError, FaultInjected

__all__ = [
    "ACTIVE",
    "FAULT_SITES",
    "FaultRule",
    "FaultPlan",
    "install",
    "install_from_spec",
    "clear",
]

#: The fault-site catalog (documented in docs/ROBUSTNESS.md).
FAULT_SITES = (
    "engine.call",
    "tabling.complete",
    "phase.build",
    "calibration.worker",
    "serve.request",
    "serve.worker",
)

FAULT_KINDS = ("raise", "hang", "exhaust", "crash")

#: Default sleep of a ``hang`` fault, seconds (long enough to trip any
#: sane watchdog timeout; overridable per rule as ``site:hang:0.2``).
DEFAULT_HANG_SECONDS = 5.0


class FaultRule:
    """One armed fault: a site, a kind, and a deterministic trigger."""

    __slots__ = ("site", "kind", "seconds", "at", "fired")

    def __init__(self, site: str, kind: str, seconds: float, at: int):
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} (use raise|hang|exhaust|crash)"
            )
        self.site = site
        self.kind = kind
        self.seconds = seconds
        #: 1-based trigger index: the Nth counter hit, or key ``N - 1``.
        self.at = max(1, at)
        self.fired = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultRule {self.site}:{self.kind}@{self.at}>"


class FaultPlan:
    """A set of armed :class:`FaultRule` objects plus trip bookkeeping."""

    def __init__(self, rules: Optional[List[FaultRule]] = None, seed: int = 0):
        self.seed = seed
        self.rules: Dict[str, FaultRule] = {}
        for rule in rules or []:
            self.rules[rule.site] = rule
        self._counters: Dict[str, int] = {}
        #: (site, kind) pairs that actually fired, in order.
        self.trips: List[Tuple[str, str]] = []
        #: Optional event bus: each trip emits a ``fault`` event.
        self.events = None

    # -- construction -----------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse ``site:kind[:seconds][@N],...`` into a plan.

        Without ``@N`` the trigger index is derived from the seed
        (``1 + seed % 7``), so distinct seeds probe distinct hit
        positions while staying fully reproducible.
        """
        rules = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            at = 1 + (seed % 7)
            if "@" in chunk:
                chunk, _, at_text = chunk.rpartition("@")
                at = int(at_text)
            parts = chunk.split(":")
            if len(parts) < 2:
                raise ValueError(
                    f"bad fault spec {chunk!r} (want site:kind[:seconds][@N])"
                )
            site, kind = parts[0], parts[1]
            seconds = float(parts[2]) if len(parts) > 2 else DEFAULT_HANG_SECONDS
            rules.append(FaultRule(site, kind, seconds, at))
        return cls(rules, seed=seed)

    # -- firing -----------------------------------------------------------

    def hit(self, site: str, key: Optional[int] = None) -> None:
        """Notify the plan that execution reached ``site``.

        ``key`` identifies the unit of work at keyed sites (the
        calibration task index); counter sites pass None. May raise or
        sleep, per the armed rule; at most once per rule per process.
        """
        rule = self.rules.get(site)
        if rule is None or rule.fired:
            return
        if key is None:
            count = self._counters.get(site, 0) + 1
            self._counters[site] = count
            if count != rule.at:
                return
        elif key + 1 != rule.at:
            return
        rule.fired = True
        self.trips.append((site, rule.kind))
        if self.events is not None:
            from ..observability.events import FaultEvent

            self.events.emit(FaultEvent(site=site, action=rule.kind))
        if rule.kind == "raise":
            raise FaultInjected(f"injected fault at {site}")
        if rule.kind == "exhaust":
            raise BudgetExceededError(f"injected budget exhaustion at {site}")
        if rule.kind == "crash":
            os._exit(13)  # simulated hard crash: no unwind, no cleanup
        time.sleep(rule.seconds)  # kind == "hang"


#: The installed plan; ``None`` keeps every site a no-op. Production
#: code guards each site with ``if faults.ACTIVE is not None``.
ACTIVE: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install a plan (None clears); returns the plan."""
    global ACTIVE
    ACTIVE = plan
    return plan


def install_from_spec(spec: str, seed: int = 0) -> FaultPlan:
    """Parse and install a plan from its spec string."""
    return install(FaultPlan.from_spec(spec, seed=seed))


def clear() -> None:
    """Remove the installed plan (every site becomes a no-op again)."""
    install(None)


def _install_from_environment() -> None:
    """Arm faults from ``REPRO_FAULTS`` (worker processes inherit it)."""
    spec = os.environ.get("REPRO_FAULTS")
    if spec:
        seed = int(os.environ.get("REPRO_FAULTS_SEED", "0"))
        install_from_spec(spec, seed=seed)


_install_from_environment()
