"""Supervised worker processes: per-task timeouts, hard kill, respawn.

``EmpiricalCalibrator.measure_pairs(jobs=N)`` used to fan tasks over a
``ProcessPoolExecutor`` — which cannot interrupt a wedged task: one
user clause that loops in a non-charging builtin hangs the whole
``repro profile --jobs`` run forever. This module supervises worker
processes explicitly, in two layers:

* :class:`WorkerPool` — the reusable, long-lived machinery. Each
  worker is one ``multiprocessing.Process`` with a duplex pipe,
  initialized once and then fed tasks one at a time from any thread
  (checkout → execute → automatic checkin). A worker that misses its
  task deadline is **killed with SIGKILL** (no cooperation required)
  and a replacement is spawned; a worker that dies mid-task (segfault,
  OOM kill, ``os._exit``) is detected the same way. The pool keeps
  counters (spawns, kills, crashes, respawns) for its owner's stats.
  ``repro serve --backend=process`` runs every admitted query through
  one of these (:class:`repro.serve.executor.ProcessExecutor`).
* :func:`run_watchdogged` — the batch entry point built on the pool:
  dispatch a payload list across ``jobs`` workers, **retry** a failed
  or timed-out task once on a fresh worker after an exponential
  backoff, then **quarantine** it, and merge results in task order so
  any ``jobs`` value is deterministic. The calibrator re-runs
  quarantined tasks serially under a :class:`~repro.robustness.Budget`
  deadline and reports whatever still fails as calibration failures.

Everything here is deliberately engine-agnostic: tasks are
``(index, payload)`` pairs mapped through a picklable ``task_fn``, so
other subsystems can reuse the supervision.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import Pipe, Process
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError

__all__ = [
    "WatchdogOptions",
    "TaskOutcome",
    "WatchdogUnavailable",
    "WorkerTimeout",
    "WorkerCrashed",
    "WorkerTaskError",
    "WorkerPool",
    "run_watchdogged",
]


class WatchdogUnavailable(ReproError):
    """Worker processes could not be started or initialized (restricted
    environment, broken initializer); the caller should run serially."""


class WorkerTimeout(ReproError):
    """One task attempt exceeded its deadline; its worker was killed
    (SIGKILL) and replaced. The message carries the timeout."""


class WorkerCrashed(ReproError):
    """The worker process died mid-task (segfault, OOM kill,
    ``os._exit``); a replacement was spawned."""


class WorkerTaskError(ReproError):
    """The task function raised inside the worker; the message carries
    ``TypeName: str(exc)`` as serialized back over the pipe."""


@dataclass
class WatchdogOptions:
    """Supervision knobs shared by the pool and the batch driver."""

    #: Wall-clock allowance per task attempt, seconds.
    task_timeout: float = 30.0
    #: Re-dispatches after the first failed attempt (0 = no retry).
    retries: int = 1
    #: Base backoff before a retry, seconds; doubles per attempt.
    backoff: float = 0.05
    #: Parent poll granularity, seconds (bounds kill latency).
    poll_interval: float = 0.02
    #: Seconds a fresh worker gets to finish its initializer before the
    #: pool gives up on it.
    ready_timeout: float = 60.0


@dataclass
class TaskOutcome:
    """What happened to one task across all its attempts."""

    index: int
    result: Any = None
    #: Human-readable description of the final failure (None = success).
    error: Optional[str] = None
    #: Did any attempt exceed the task timeout?
    timed_out: bool = False
    attempts: int = 0
    #: True when every allowed attempt failed; the task was abandoned.
    quarantined: bool = False

    @property
    def ok(self) -> bool:
        return not self.quarantined


class _Worker:
    """One supervised worker process plus its parent-side bookkeeping."""

    __slots__ = ("process", "conn", "ready", "cache_key")

    def __init__(self, process: Process, conn: Any):
        self.process = process
        self.conn = conn
        self.ready = False
        #: Borrower-owned scratch: the serve executor records here which
        #: program generation the worker has loaded, so warm workers
        #: skip re-shipping until an update publishes a new one. A
        #: respawned replacement always starts with ``None``.
        self.cache_key: Any = None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid


def _watchdog_worker_main(conn, task_fn, initializer, initargs) -> None:
    """Worker process body: init once, then serve tasks until 'stop'."""
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException as exc:  # noqa: BLE001 - report, don't die silently
        try:
            conn.send(("init_error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ready",))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return
        if message[0] == "stop":
            return
        _, index, payload = message
        try:
            result = task_fn(index, payload)
        except BaseException as exc:  # noqa: BLE001 - serialized to parent
            conn.send(("error", index, f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("done", index, result))


class WorkerPool:
    """A long-lived pool of supervised workers, shared across threads.

    The lifecycle is checkout → :meth:`execute_on` → automatic checkin
    (:meth:`execute` bundles all three). Only the borrowing thread ever
    touches a worker's pipe, so no per-worker locking is needed; the
    idle queue is guarded by one condition variable. A worker that
    misses its deadline or dies is replaced *before* the corresponding
    exception propagates, so the pool never shrinks below ``size``
    while it is open.
    """

    def __init__(
        self,
        task_fn: Callable[[int, Any], Any],
        size: int,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
        options: Optional[WatchdogOptions] = None,
    ):
        self.task_fn = task_fn
        self.size = max(1, size)
        self.initializer = initializer
        self.initargs = initargs
        self.options = options or WatchdogOptions()
        self._cond = threading.Condition()
        self._idle: Deque[_Worker] = deque()
        self._workers: List[_Worker] = []
        self._closed = False
        self._sequence = 0
        #: Supervision counters (immutable history; owners report them).
        self.spawned = 0
        self.kills = 0
        self.crashes = 0
        self.respawns = 0

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Spawn ``size`` workers and wait for their init handshakes.

        Raises :class:`WatchdogUnavailable` when any worker fails to
        come up (callers fall back to serial / in-process execution).
        """
        try:
            for _ in range(self.size):
                self._spawn()
        except WatchdogUnavailable:
            self.shutdown()
            raise
        except BaseException as exc:
            self.shutdown()
            raise WatchdogUnavailable(f"cannot start workers: {exc}") from exc
        try:
            for worker in list(self._workers):
                self._await_ready(worker)
        except (WorkerCrashed, WorkerTimeout) as exc:
            self.shutdown()
            raise WatchdogUnavailable(str(exc)) from exc
        except WatchdogUnavailable:
            self.shutdown()
            raise

    def shutdown(self) -> None:
        """Stop every worker (politely where possible) and close pipes."""
        with self._cond:
            self._closed = True
            workers = list(self._workers)
            self._workers.clear()
            self._idle.clear()
            self._cond.notify_all()
        for worker in workers:
            try:
                if worker.ready:
                    worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in workers:
            worker.process.join(0.2)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
            if worker.process.is_alive():  # pragma: no cover - last resort
                worker.process.kill()
                worker.process.join(1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    def stats(self) -> Dict[str, int]:
        """Supervision counters (the serve backend surfaces these)."""
        return {
            "workers": self.size,
            "spawned": self.spawned,
            "kills": self.kills,
            "crashes": self.crashes,
            "respawns": self.respawns,
        }

    @property
    def worker_pids(self) -> List[int]:
        """PIDs of the current (live) workers, for tests and debugging."""
        with self._cond:
            return [w.pid for w in self._workers if w.pid is not None]

    # -- checkout / execute / checkin -------------------------------------

    def checkout(self, timeout: Optional[float] = None) -> _Worker:
        """Borrow an idle worker (blocking up to ``timeout`` seconds).

        Raises :class:`WatchdogUnavailable` when the pool is closed or
        no worker frees up in time. The borrower must settle the worker
        through :meth:`execute_on` (which checks it back in, or
        replaces it) — never drop a checked-out worker on the floor.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed:
                    raise WatchdogUnavailable("worker pool is shut down")
                if self._idle:
                    return self._idle.popleft()
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise WatchdogUnavailable(
                        f"no idle worker within {timeout:g}s "
                        f"({self.size} workers, all busy)"
                    )
                self._cond.wait(timeout=remaining)

    def execute(self, payload: Any, timeout: Optional[float]) -> Any:
        """Checkout → :meth:`execute_on` → checkin, as one call."""
        worker = self.checkout(
            timeout=None if timeout is None else timeout + self.options.ready_timeout
        )
        return self.execute_on(worker, payload, timeout)

    def execute_on(
        self, worker: _Worker, payload: Any, timeout: Optional[float]
    ) -> Any:
        """Run one task on a checked-out worker; always settles it.

        On success the result is returned and the worker goes back to
        the idle queue (warm — its ``cache_key`` survives). On failure
        the worker is killed and replaced first, then the typed
        exception propagates:

        * :class:`WorkerTimeout` — the deadline passed; SIGKILL;
        * :class:`WorkerCrashed` — the process died mid-task;
        * :class:`WorkerTaskError` — ``task_fn`` raised (worker kept).
        """
        self._await_ready(worker)
        with self._cond:
            self._sequence += 1
            index = self._sequence
        try:
            worker.conn.send(("task", index, payload))
        except (OSError, ValueError) as exc:
            self._replace(worker, crashed=True)
            raise WorkerCrashed(f"worker process died: {exc}") from exc
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (
                self.options.poll_interval
                if deadline is None
                else min(self.options.poll_interval, deadline - time.monotonic())
            )
            try:
                has_message = worker.conn.poll(max(0.0, remaining))
            except (OSError, ValueError):
                has_message = False
            if has_message:
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    self._replace(worker, crashed=True)
                    raise WorkerCrashed("worker process died")
                kind = message[0]
                if kind == "done":
                    self._checkin(worker)
                    return message[2]
                if kind == "error":
                    self._checkin(worker)
                    raise WorkerTaskError(message[2])
                continue  # stray handshake; keep polling
            if not worker.process.is_alive():
                self._replace(worker, crashed=True)
                raise WorkerCrashed("worker process died")
            if deadline is not None and time.monotonic() >= deadline:
                self._replace(worker, crashed=False)
                raise WorkerTimeout(
                    f"task exceeded its {timeout:g}s timeout"
                )

    # -- internals --------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = Pipe()
        process = Process(
            target=_watchdog_worker_main,
            args=(child_conn, self.task_fn, self.initializer, self.initargs),
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(process=process, conn=parent_conn)
        with self._cond:
            if self._closed:
                raise WatchdogUnavailable("worker pool is shut down")
            self._workers.append(worker)
            self._idle.append(worker)
            self.spawned += 1
            self._cond.notify()
        return worker

    def _checkin(self, worker: _Worker) -> None:
        with self._cond:
            if self._closed or worker not in self._workers:
                return
            self._idle.append(worker)
            self._cond.notify()

    def _replace(self, worker: _Worker, crashed: bool) -> None:
        """Kill a misbehaving worker (SIGKILL) and spawn its successor."""
        with self._cond:
            if worker in self._workers:
                self._workers.remove(worker)
            if crashed:
                self.crashes += 1
            else:
                self.kills += 1
        try:
            worker.process.kill()
            worker.process.join(2.0)
        finally:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        with self._cond:
            closed = self._closed
        if not closed:
            try:
                self._spawn()
                with self._cond:
                    self.respawns += 1
            except WatchdogUnavailable:
                pass  # shutting down concurrently

    def _await_ready(self, worker: _Worker) -> None:
        """Consume the init handshake the first time a worker is used."""
        if worker.ready:
            return
        deadline = time.monotonic() + self.options.ready_timeout
        while True:
            try:
                has_message = worker.conn.poll(self.options.poll_interval)
            except (OSError, ValueError):
                has_message = False
            if has_message:
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    self._replace(worker, crashed=True)
                    raise WorkerCrashed("worker died during initialization")
                if message[0] == "ready":
                    worker.ready = True
                    return
                if message[0] == "init_error":
                    self._replace(worker, crashed=True)
                    raise WatchdogUnavailable(
                        f"worker initializer failed: {message[1]}"
                    )
                continue
            if not worker.process.is_alive():
                self._replace(worker, crashed=True)
                raise WorkerCrashed("worker died during initialization")
            if time.monotonic() >= deadline:
                self._replace(worker, crashed=False)
                raise WorkerTimeout(
                    f"worker not ready within {self.options.ready_timeout:g}s"
                )


# -- the batch entry point ------------------------------------------------


class _Pending:
    """One task waiting for (re-)dispatch in the batch driver."""

    __slots__ = ("index", "payload", "attempts", "ready_at", "timed_out")

    def __init__(self, index: int, payload: Any):
        self.index = index
        self.payload = payload
        self.attempts = 0
        self.ready_at = 0.0
        self.timed_out = False


def run_watchdogged(
    task_fn: Callable[[int, Any], Any],
    payloads: Sequence[Any],
    jobs: int,
    options: Optional[WatchdogOptions] = None,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
) -> List[TaskOutcome]:
    """Run ``task_fn(index, payload)`` for every payload under watch.

    Returns one :class:`TaskOutcome` per payload, in payload order: a
    failed or timed-out attempt is retried (``options.retries`` times,
    exponential backoff) on a fresh worker, then quarantined. Raises
    :class:`WatchdogUnavailable` when no worker process could be
    brought up at all (callers fall back to serial execution).
    """
    options = options or WatchdogOptions()
    total = len(payloads)
    if total == 0:
        return []
    pool = WorkerPool(
        task_fn,
        size=max(1, min(jobs, total)),
        initializer=initializer,
        initargs=initargs,
        options=options,
    )
    pool.start()

    state = threading.Lock()
    pending: Deque[_Pending] = deque(
        _Pending(index, payload) for index, payload in enumerate(payloads)
    )
    outcomes: Dict[int, TaskOutcome] = {}
    fatal: List[BaseException] = []

    def fail_attempt(task: _Pending, reason: str, timed_out: bool) -> None:
        """Requeue a failed attempt, or quarantine it when spent."""
        task.attempts += 1
        task.timed_out = task.timed_out or timed_out
        if task.attempts > options.retries:
            outcomes[task.index] = TaskOutcome(
                index=task.index,
                error=reason,
                timed_out=task.timed_out,
                attempts=task.attempts,
                quarantined=True,
            )
        else:
            task.ready_at = time.monotonic() + options.backoff * (
                2 ** (task.attempts - 1)
            )
            pending.append(task)

    def driver() -> None:
        while True:
            with state:
                if len(outcomes) >= total or fatal:
                    return
                now = time.monotonic()
                position = next(
                    (
                        i
                        for i, task in enumerate(pending)
                        if task.ready_at <= now
                    ),
                    None,
                )
                if position is None:
                    task = None
                else:
                    pending.rotate(-position)
                    task = pending.popleft()
                    pending.rotate(position)
            if task is None:
                time.sleep(options.poll_interval)
                continue
            try:
                result = pool.execute(task.payload, options.task_timeout)
            except WorkerTimeout as exc:
                with state:
                    fail_attempt(task, str(exc), True)
            except (WorkerCrashed, WorkerTaskError) as exc:
                with state:
                    fail_attempt(task, str(exc), False)
            except WatchdogUnavailable as exc:
                with state:
                    fatal.append(exc)
                return
            else:
                with state:
                    outcomes[task.index] = TaskOutcome(
                        index=task.index,
                        result=result,
                        attempts=task.attempts + 1,
                        timed_out=task.timed_out,
                    )

    threads = [
        threading.Thread(target=driver, name=f"watchdog-driver-{n}")
        for n in range(pool.size)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    pool.shutdown()
    if fatal:
        raise fatal[0]
    return [outcomes[index] for index in range(total)]
