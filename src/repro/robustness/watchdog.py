"""A subprocess pool with per-task timeouts, retries and quarantine.

``EmpiricalCalibrator.measure_pairs(jobs=N)`` used to fan tasks over a
``ProcessPoolExecutor`` — which cannot interrupt a wedged task: one
user clause that loops in a non-charging builtin hangs the whole
``repro profile --jobs`` run forever. This module replaces it with an
explicitly supervised pool:

* each worker is one ``multiprocessing.Process`` with a duplex pipe,
  initialized once (program source parsed a single time) and then fed
  tasks one at a time;
* the parent stamps a **deadline** on every dispatched task; a worker
  that misses it is **killed** (terminate + join) and replaced;
* a timed-out or crashed task is **retried once** on a fresh worker
  after an exponential backoff, then **quarantined**;
* results merge in task order, so any ``jobs`` value is deterministic.

The caller decides what to do with quarantined tasks; the calibrator
re-runs them serially under a :class:`~repro.robustness.Budget`
deadline and reports whatever still fails as calibration failures.

Everything here is deliberately engine-agnostic: tasks are
``(index, payload)`` pairs mapped through a picklable ``task_fn``, so
other subsystems can reuse the watchdog.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import Pipe, Process, connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError

__all__ = [
    "WatchdogOptions",
    "TaskOutcome",
    "WatchdogUnavailable",
    "run_watchdogged",
]


class WatchdogUnavailable(ReproError):
    """Worker processes could not be started or initialized (restricted
    environment, broken initializer); the caller should run serially."""


@dataclass
class WatchdogOptions:
    """Supervision knobs for one :func:`run_watchdogged` call."""

    #: Wall-clock allowance per task attempt, seconds.
    task_timeout: float = 30.0
    #: Re-dispatches after the first failed attempt (0 = no retry).
    retries: int = 1
    #: Base backoff before a retry, seconds; doubles per attempt.
    backoff: float = 0.05
    #: Parent poll granularity, seconds (bounds kill latency).
    poll_interval: float = 0.02


@dataclass
class TaskOutcome:
    """What happened to one task across all its attempts."""

    index: int
    result: Any = None
    #: Human-readable description of the final failure (None = success).
    error: Optional[str] = None
    #: Did any attempt exceed the task timeout?
    timed_out: bool = False
    attempts: int = 0
    #: True when every allowed attempt failed; the task was abandoned.
    quarantined: bool = False

    @property
    def ok(self) -> bool:
        return not self.quarantined


@dataclass
class _Pending:
    """One task waiting for (re-)dispatch."""

    index: int
    payload: Any
    attempts: int = 0
    ready_at: float = 0.0
    timed_out: bool = False
    last_error: Optional[str] = None


@dataclass
class _Worker:
    """One supervised worker process."""

    process: Process
    conn: Any
    ready: bool = False
    #: The in-flight task (None = idle), with its kill deadline.
    busy: Optional[_Pending] = None
    deadline: float = 0.0
    sent: List[int] = field(default_factory=list)


def _watchdog_worker_main(conn, task_fn, initializer, initargs) -> None:
    """Worker process body: init once, then serve tasks until 'stop'."""
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException as exc:  # noqa: BLE001 - report, don't die silently
        try:
            conn.send(("init_error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ready",))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return
        if message[0] == "stop":
            return
        _, index, payload = message
        try:
            result = task_fn(index, payload)
        except BaseException as exc:  # noqa: BLE001 - serialized to parent
            conn.send(("error", index, f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("done", index, result))


def run_watchdogged(
    task_fn: Callable[[int, Any], Any],
    payloads: Sequence[Any],
    jobs: int,
    options: Optional[WatchdogOptions] = None,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
) -> List[TaskOutcome]:
    """Run ``task_fn(index, payload)`` for every payload under watch.

    Returns one :class:`TaskOutcome` per payload, in payload order.
    Raises :class:`WatchdogUnavailable` when no worker process could be
    brought up at all (callers fall back to serial execution).
    """
    options = options or WatchdogOptions()
    outcomes: Dict[int, TaskOutcome] = {}
    pending = deque(
        _Pending(index, payload) for index, payload in enumerate(payloads)
    )
    workers: List[_Worker] = []
    target_workers = max(1, min(jobs, len(pending)))

    def spawn() -> _Worker:
        parent_conn, child_conn = Pipe()
        process = Process(
            target=_watchdog_worker_main,
            args=(child_conn, task_fn, initializer, initargs),
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(process=process, conn=parent_conn)
        workers.append(worker)
        return worker

    def kill(worker: _Worker) -> None:
        workers.remove(worker)
        try:
            worker.process.terminate()
            worker.process.join(1.0)
            if worker.process.is_alive():  # pragma: no cover - last resort
                worker.process.kill()
                worker.process.join(1.0)
        finally:
            worker.conn.close()

    def fail_attempt(task: _Pending, reason: str, timed_out: bool) -> None:
        """Requeue a failed attempt, or quarantine it when spent."""
        task.attempts += 1
        task.timed_out = task.timed_out or timed_out
        task.last_error = reason
        if task.attempts > options.retries:
            outcomes[task.index] = TaskOutcome(
                index=task.index,
                error=reason,
                timed_out=task.timed_out,
                attempts=task.attempts,
                quarantined=True,
            )
        else:
            task.ready_at = time.monotonic() + options.backoff * (
                2 ** (task.attempts - 1)
            )
            pending.append(task)

    try:
        try:
            for _ in range(target_workers):
                spawn()
        except BaseException as exc:
            raise WatchdogUnavailable(f"cannot start workers: {exc}") from exc

        while len(outcomes) < len(payloads):
            now = time.monotonic()
            # Dispatch ready tasks to ready, idle workers.
            for worker in workers:
                if not pending:
                    break
                if worker.busy is not None or not worker.ready:
                    continue
                position = next(
                    (
                        i
                        for i, task in enumerate(pending)
                        if task.ready_at <= now
                    ),
                    None,
                )
                if position is None:
                    break
                pending.rotate(-position)
                task = pending.popleft()
                pending.rotate(position)
                try:
                    worker.conn.send(("task", task.index, task.payload))
                except (OSError, ValueError):
                    kill(worker)
                    spawn()
                    pending.appendleft(task)
                    continue
                worker.busy = task
                worker.deadline = now + options.task_timeout
                worker.sent.append(task.index)
            # Wait for any worker message (bounded by the poll interval).
            ready_conns = connection.wait(
                [worker.conn for worker in workers],
                timeout=options.poll_interval,
            )
            for worker in list(workers):
                if worker.conn not in ready_conns:
                    continue
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    # The worker died mid-task (hard crash).
                    task = worker.busy
                    kill(worker)
                    spawn()
                    if task is not None:
                        fail_attempt(task, "worker process died", False)
                    elif not worker.ready and not workers_ready(workers):
                        raise WatchdogUnavailable("workers keep dying")
                    continue
                kind = message[0]
                if kind == "ready":
                    worker.ready = True
                elif kind == "init_error":
                    kill(worker)
                    raise WatchdogUnavailable(
                        f"worker initializer failed: {message[1]}"
                    )
                elif kind == "done":
                    task = worker.busy
                    worker.busy = None
                    outcomes[message[1]] = TaskOutcome(
                        index=message[1],
                        result=message[2],
                        attempts=(task.attempts if task else 0) + 1,
                        timed_out=task.timed_out if task else False,
                    )
                elif kind == "error":
                    task = worker.busy
                    worker.busy = None
                    if task is not None:
                        fail_attempt(task, message[2], False)
            # Enforce deadlines on whatever is still running.
            now = time.monotonic()
            for worker in list(workers):
                task = worker.busy
                if task is None or now <= worker.deadline:
                    continue
                kill(worker)
                spawn()
                fail_attempt(
                    task,
                    f"task exceeded its {options.task_timeout:g}s timeout",
                    True,
                )
    finally:
        for worker in list(workers):
            try:
                if worker.busy is None and worker.ready:
                    worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in list(workers):
            worker.process.join(0.2)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
            worker.conn.close()
        workers.clear()

    return [outcomes[index] for index in range(len(payloads))]


def workers_ready(workers: List[_Worker]) -> bool:
    """Is at least one worker past initialization?"""
    return any(worker.ready for worker in workers)
