"""The theorem-prover benchmark (paper §VII, Table IV: ``kmbench``).

"kmbench is a substantial program: a theorem-prover running a set of
benchmark problems ... Only a single clause ... can be reordered; the
gains in performance are less impressive" — Table IV reports 1.14.

The original kmbench is unpublished; per DESIGN.md §3 (substitution 4)
we implement a propositional Horn-clause theorem prover *written in
Prolog* (a meta-interpreter over an ``axiom/2`` rule base) plus a
battery of problems: graph-colouring-style constraints, a blocks-world
fragment, and propositional chains. The prover is mostly deterministic
recursion — exactly the profile the paper says gains little — with one
reorderable clause (the rule-selection clause, where the subsumption
test can precede or follow the rule fetch).
"""

from __future__ import annotations

from typing import List

from ..prolog.database import Database

__all__ = ["SOURCE", "source", "database", "TABLE4_QUERIES", "PROBLEMS"]


def _axioms() -> str:
    lines = []
    # Propositional chains: p_k(i) provable from p_k(0) in i steps.
    for chain in range(1, 6):
        lines.append(f"axiom(p{chain}(0), true).")
        for step in range(1, 12):
            lines.append(f"axiom(p{chain}({step}), p{chain}({step - 1})).")
    # A small rule base with conjunctive bodies (branching proofs).
    lines += [
        "axiom(wet, (rain, outside)).",
        "axiom(wet, (sprinkler, outside)).",
        "axiom(rain, clouds).",
        "axiom(clouds, true).",
        "axiom(sprinkler, (summer, morning)).",
        "axiom(summer, true).",
        "axiom(morning, true).",
        "axiom(outside, true).",
        "axiom(happy(X), (sunny, at_beach(X))).",
        "axiom(happy(X), (rich(X), healthy(X))).",
        "axiom(sunny, true).",
        "axiom(at_beach(alice), true).",
        "axiom(rich(bob), true).",
        "axiom(healthy(bob), true).",
        "axiom(healthy(alice), true).",
        # Unprovable leads that force search.
        "axiom(at_beach(carol), winter).",
        "axiom(rich(carol), lottery).",
    ]
    # Cached lemmas: mid-chain results the prover may use directly.
    for chain in range(1, 6):
        lines.append(f"lemma(p{chain}(8)).")
    lines.append("lemma(clouds).")
    lines.append("lemma(outside).")
    return "\n".join(lines)


SOURCE = (
    """
:- entry(kmbench/0).
:- entry(prove/1).
:- recursive(prove/1).
:- legal_mode(prove(+)).
:- cost(prove/1, [+], 40, 0.7).
:- legal_mode(provable_fact(+)).

% The prover: a Horn-clause meta-interpreter over axiom/2. The two
% cut clauses are anchored; the chaining and lemma clauses below them
% may swap (the lemma table answers deep chain goals in one step, so
% the clause reorderer should try it first).
prove(true) :- !.
prove((A, B)) :- !, prove(A), prove(B).
prove(Goal) :- axiom(Goal, Body), prove(Body).
prove(Goal) :- lemma(Goal).

% Checking a goal is an already-known fact before (or after) rule
% chaining: the other reorderable conjunction.
provable_fact(Goal) :- axiom(Goal, Body), Body == true.

% The benchmark driver: prove every problem (one proof each suffices,
% as a real prover would stop at the first derivation).
kmbench :- problem(P), once(prove(P)), fail.
kmbench.

problem(p1(11)).
problem(p2(11)).
problem(p3(11)).
problem(p4(11)).
problem(p5(11)).
problem(wet).
problem(happy(alice)).
problem(happy(bob)).

"""
    + _axioms()
    + "\n"
)

PROBLEMS = ["p1(11)", "p2(11)", "p3(11)", "p4(11)", "p5(11)",
            "wet", "happy(alice)", "happy(bob)"]

#: Table IV row: the whole benchmark run.
TABLE4_QUERIES = [("kmbench", ["kmbench"])]


def source() -> str:
    """The complete program text."""
    return SOURCE


def database(indexing: bool = True) -> Database:
    """A fresh database holding the program."""
    return Database.from_source(SOURCE, indexing=indexing)
