"""The corporate-database benchmark (paper §VII, Table III).

"We also restructured some rules from a corporate database (over 100
employees) written in Prolog ... The facts in this database are indexed
on the employee identification number; once that is instantiated, many
goals of the rules become trivial. Reordering essentially becomes a way
to make the rules find, as quickly and inexpensively as possible, the
smallest superset of these numbers whose owners satisfy the rule."

The paper's actual database was proprietary; we build a synthetic one
with the same shape (DESIGN.md §3, substitution 2): 120 employees, one
fact table per attribute keyed on the id, and the rules of Table III —
``benefits/2``, ``pay/3``, ``maternity/2``, ``average_pay/2``,
``tax/2`` — written in a "natural" attribute-first order that leaves
room for the reorderer on some rules (``benefits``, ``maternity``) and
none on others (``pay``, ``average_pay``), matching Table III's mix of
2.x and 1.00 ratios.
"""

from __future__ import annotations

from typing import List

from ..prolog.database import Database

__all__ = [
    "EMPLOYEE_COUNT",
    "EMPLOYEE_NAMES",
    "facts_source",
    "RULES_SOURCE",
    "DECLARATIONS_SOURCE",
    "source",
    "database",
    "TABLE3_QUERIES",
]

EMPLOYEE_COUNT = 120

_FIRST = [
    "jane", "john", "mary", "bob", "sue", "tom", "ann", "max", "eva", "sam",
    "liz", "ned", "amy", "gus", "ida", "hal", "kay", "jim", "fay", "ken",
]
_LAST = ["smith", "jones", "brown", "davis", "miller", "wilson"]

#: Deterministic distinct employee names: jane, john, ..., jane_smith, ...
EMPLOYEE_NAMES: List[str] = list(_FIRST) + [
    f"{_FIRST[i % len(_FIRST)]}_{_LAST[(i // len(_FIRST)) % len(_LAST)]}"
    for i in range(EMPLOYEE_COUNT - len(_FIRST))
]

_DEPARTMENTS = ["sales", "engineering", "accounting", "shipping", "research"]


def facts_source() -> str:
    """The employee fact tables, keyed on the id (first argument)."""
    lines: List[str] = []
    for index, name in enumerate(EMPLOYEE_NAMES, start=1):
        lines.append(f"employee({index}, {name}).")
    for index in range(1, EMPLOYEE_COUNT + 1):
        department = _DEPARTMENTS[(index * 3) % len(_DEPARTMENTS)]
        lines.append(f"department({index}, {department}).")
    for index in range(1, EMPLOYEE_COUNT + 1):
        salary = 22000 + (index * 977) % 40000
        lines.append(f"salary({index}, {salary}).")
    for index in range(1, EMPLOYEE_COUNT + 1):
        years = (index * 7) % 23
        lines.append(f"service({index}, {years}).")
    for index in range(1, EMPLOYEE_COUNT + 1):
        sex = "f" if (index % 5) in (0, 1, 2) else "m"
        lines.append(f"sex({index}, {sex}).")
    for index in range(1, EMPLOYEE_COUNT + 1):
        if (index * 11) % 3 != 0:
            lines.append(f"insured({index}).")
    for index in range(1, EMPLOYEE_COUNT + 1):
        lines.append(f"dependents({index}, {(index * 13) % 5}).")
    return "\n".join(lines) + "\n"


RULES_SOURCE = """
% Benefits an employee is entitled to. Written person-first (the
% natural reading: "an employee gets a pension if ..."): the reorderer
% should move the selective attribute tests ahead of the wide
% employee/2 generator.
benefits(Name, pension) :-
    employee(Id, Name), service(Id, Years), Years >= 10.
benefits(Name, health) :-
    employee(Id, Name), insured(Id).
benefits(Name, bonus) :-
    employee(Id, Name), salary(Id, S), S < 30000,
    service(Id, Years), Years >= 3.

% Pay by department: already in the best order (id generated first,
% everything after is an indexed lookup) - expect ratio 1.00.
pay(Dept, Name, Amount) :-
    employee(Id, Name), department(Id, Dept), salary(Id, Amount).

% Maternity leave entitlement: person-first again.
maternity(Weeks, Name) :-
    employee(Id, Name), sex(Id, f), service(Id, Years),
    Years >= 1, Weeks is 12 + Years.

% Average pay of each department: the findall is semifixed, nothing to
% reorder - expect ratio 1.00.
average_pay(Dept, Avg) :-
    dept(Dept),
    findall(S, dept_salary(Dept, S), Salaries),
    sum_list(Salaries, Sum),
    length(Salaries, N),
    N > 0,
    Avg is Sum // N.

dept_salary(Dept, S) :- department(Id, Dept), salary(Id, S).

dept(sales).  dept(engineering).  dept(accounting).
dept(shipping).  dept(research).

sum_list([], 0).
sum_list([X | Xs], Sum) :- sum_list(Xs, Rest), Sum is X + Rest.

% Tax class, person-first: optimal once the name is known (expect the
% paper's 1.00 on tax(-,jane)), mildly improvable when enumerating.
tax(Class, Name) :-
    employee(Id, Name), salary(Id, S), S > 45000,
    dependents(Id, D), D =:= 0, Class = high.
tax(Class, Name) :-
    employee(Id, Name), salary(Id, S), S =< 45000,
    dependents(Id, D), D > 2, Class = low.
"""

DECLARATIONS_SOURCE = """
:- entry(benefits/2).
:- entry(pay/3).
:- entry(maternity/2).
:- entry(average_pay/2).
:- entry(tax/2).
:- legal_mode(sum_list(+, -), sum_list(+, +)).
:- recursive(sum_list/2).
:- cost(sum_list/2, [+, -], 25, 1.0).
"""

#: The queries of Table III: (label, query text).
TABLE3_QUERIES = [
    ("benefits(-,-)", "benefits(Name, Benefit)"),
    ("pay(-,-,-)", "pay(Dept, Name, Amount)"),
    ("pay(-,jane,-)", "pay(Dept, jane, Amount)"),
    ("maternity(-,-)", "maternity(Weeks, Name)"),
    ("maternity(-,jane)", "maternity(Weeks, jane)"),
    ("average_pay(-,-)", "average_pay(Dept, Avg)"),
    ("tax(-,-)", "tax(Class, Name)"),
    ("tax(-,jane)", "tax(Class, jane)"),
]


def source(with_declarations: bool = True) -> str:
    """The complete program text."""
    parts = []
    if with_declarations:
        parts.append(DECLARATIONS_SOURCE)
    parts.append(facts_source())
    parts.append(RULES_SOURCE)
    return "\n".join(parts)


def database(with_declarations: bool = True, indexing: bool = True) -> Database:
    """A fresh database holding the program."""
    return Database.from_source(source(with_declarations), indexing=indexing)
