"""The project-team benchmark (paper §VII, Table IV).

"team generates project teams ... only four clauses of team on two
levels" can be reordered; Table IV reports the best gains of the group
(3.47 at (-,-), 3.87 at (+,+)).

Our reconstruction (DESIGN.md §3, substitution 3): a team pairs a
leader with a member, on one of two staffing patterns (mentoring or
peering), where both levels — the ``team/2`` clauses and the
``qualified_*`` rules under them — have reorderable conjunctive bodies
(2 + 2 = four clauses on two levels). The natural phrasing generates
candidates before testing the cheap, selective properties, so the
reorderer has real work: tests first, generators last, and the indexed
skill table exploited once a person is known.
"""

from __future__ import annotations

from typing import List

from ..prolog.database import Database

__all__ = ["SOURCE", "PEOPLE", "source", "database", "TABLE4_QUERIES"]

PEOPLE: List[str] = [
    "ada", "ben", "cy", "dot", "eli", "flo", "guy", "hope", "ike", "joy",
    "kim", "lee", "mo", "nan", "ora", "pam", "quincy", "rae", "seth", "tia",
    "ugo", "val", "wes", "xia", "yul",
]


def _facts() -> str:
    lines = []
    skills = ["management", "programming", "testing", "design"]
    for index, person in enumerate(PEOPLE):
        lines.append(f"person({person}).")
        lines.append(f"skill({person}, {skills[index % 4]}).")
        if index % 3 != 0:
            lines.append(f"skill({person}, {skills[(index + 1) % 4]}).")
        if index % 4 == 0:
            lines.append(f"senior({person}).")
        if index % 5 != 2:
            lines.append(f"available({person}, week{1 + index % 3}).")
    return "\n".join(lines)


SOURCE = (
    """
:- entry(team/2).
:- legal_mode(distinct(+, +)).

% Level one: two staffing patterns.
team(Leader, Member) :-
    person(Leader), person(Member),
    qualified_lead(Leader), qualified_member(Member),
    distinct(Leader, Member),
    available(Leader, Week), available(Member, Week).
team(Leader, Member) :-
    person(Leader), person(Member),
    skill(Leader, Skill), skill(Member, Skill),
    senior(Leader), distinct(Leader, Member).

% Level two: the qualification rules.
qualified_lead(P) :-
    person(P), skill(P, management), senior(P).
qualified_member(P) :-
    person(P), skill(P, programming).

distinct(X, Y) :- X \\== Y.

"""
    + _facts()
    + "\n"
)

#: Table IV rows: team(-,-) and team(+,+).
TABLE4_QUERIES = [
    ("team(-,-)", ["team(Leader, Member)"]),
    ("team(+,+)", [
        f"team({leader}, {member})" for leader in PEOPLE for member in PEOPLE
    ]),
]


def source() -> str:
    """The complete program text."""
    return SOURCE


def database(indexing: bool = True) -> Database:
    """A fresh database holding the program."""
    return Database.from_source(SOURCE, indexing=indexing)
