"""Problem 58 benchmark (paper §VII, Table IV).

"p58 is Problem 58 from 'How to solve it in Prolog' [7] ... Only a
single clause of p58 ... can be reordered; the gains in performance are
less impressive."

The Coelho/Cotta/Pereira collection is long out of print and the exact
problem statement is not recoverable; per DESIGN.md §3 (substitution 3)
we implement a classic database-query puzzle of the same shape: one
rule with a conjunctive body over small fact tables, queried fully
instantiated (the paper reports only mode (+, +), 121 → 78 calls,
ratio 1.55). The puzzle: "a contest entry wins in a category if it is
admissible there" — the single reorderable clause joins four fact
tables in a deliberately natural-but-suboptimal order.
"""

from __future__ import annotations

from ..prolog.database import Database

__all__ = ["SOURCE", "source", "database", "TABLE4_QUERIES"]

SOURCE = """
:- entry(p58/2).

% The single reorderable clause: an entrant wins a category by beating
% some rival while clearing the category threshold. The natural
% phrasing follows the puzzle statement's reading order, enumerating
% rivals before the cheap threshold test that usually fails.
p58(Entrant, Category) :-
    entrant(Entrant, Division),
    rival(Entrant, Rival),
    score(Rival, RivalScore),
    score(Entrant, Score),
    Score > RivalScore,
    admissible(Division, Category),
    threshold(Category, Minimum),
    Score >= Minimum.

entrant(alpha, junior).    entrant(beta, junior).
entrant(gamma, senior).    entrant(delta, senior).
entrant(epsilon, open).    entrant(zeta, open).
entrant(eta, junior).      entrant(theta, senior).
entrant(iota, open).       entrant(kappa, junior).

score(alpha, 55).   score(beta, 71).    score(gamma, 88).
score(delta, 64).   score(epsilon, 92). score(zeta, 47).
score(eta, 78).     score(theta, 81).   score(iota, 59).
score(kappa, 85).

threshold(bronze, 50).  threshold(silver, 70).  threshold(gold, 85).

admissible(junior, bronze).  admissible(junior, silver).
admissible(senior, silver).  admissible(senior, gold).
admissible(open, bronze).    admissible(open, silver).
admissible(open, gold).

rival(alpha, beta).     rival(alpha, eta).      rival(alpha, kappa).
rival(beta, alpha).     rival(beta, kappa).
rival(gamma, delta).    rival(gamma, theta).
rival(delta, gamma).    rival(delta, theta).
rival(epsilon, zeta).   rival(epsilon, iota).
rival(zeta, epsilon).   rival(zeta, iota).
rival(eta, beta).       rival(eta, kappa).
rival(theta, gamma).    rival(theta, delta).
rival(iota, epsilon).   rival(iota, zeta).
rival(kappa, alpha).    rival(kappa, eta).
"""

#: Table IV row: p58(+, +) — every entrant × category, fully bound.
TABLE4_QUERIES = [
    ("p58(+,+)", [
        f"p58({entrant}, {category})"
        for entrant in ["alpha", "beta", "gamma", "delta", "epsilon",
                        "zeta", "eta", "theta", "iota", "kappa"]
        for category in ["bronze", "silver", "gold"]
    ]),
]


def source() -> str:
    """The complete program text."""
    return SOURCE


def database(indexing: bool = True) -> Database:
    """A fresh database holding the program."""
    return Database.from_source(SOURCE, indexing=indexing)
