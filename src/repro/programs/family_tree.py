"""The family-tree benchmark program (paper §VII, Fig. 6, Table II).

The paper's database has "55 constants ... 10 facts for girl/1, 19 for
wife/2, and 34 for mother/2"; the rule predicates are published in
Fig. 6. The exact pedigree was not published, so we generate a
deterministic synthetic one with exactly those fact counts and a
three-generation structure rich in grandmothers, aunts, and cousins
(see DESIGN.md §3, substitution 1).

Structure: 6 founder couples; 16 of their children (generation 1), of
whom 11 marry (5 spouses marry in); 14 grandchildren (generation 2), of
whom 6 marry (4 marry in); 4 great-grandchildren (generation 3).
Totals: 12 + 9 + 34 = 55 persons, 6 + 8 + 5 = 19 marriages, 34
mother facts, 10 unmarried girls.

The rules are Fig. 6 verbatim (modulo OCR reconstruction of
``father/2``). The declarations pin the two semantically
mode-dependent predicates — ``male/1`` (defined by negation) and
``unequal/2`` (defined by ``\\==``) — to instantiated calls, exactly
the kind of annotation the paper says real programs need.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..prolog.database import Database

__all__ = [
    "PERSONS",
    "WIFE_FACTS",
    "MOTHER_FACTS",
    "GIRL_FACTS",
    "RULES_SOURCE",
    "DECLARATIONS_SOURCE",
    "facts_source",
    "source",
    "database",
    "TESTED_PREDICATES",
]

# -- deterministic pedigree construction ---------------------------------------

_FEMALE_NAMES = [
    "joan", "jane", "meg", "sue", "ann", "pat",          # founder wives
    "liz", "amy", "eva", "ida", "kay", "fay", "gwen", "nell",  # g1/g2 wives
    "mary", "ruth", "cora", "dora", "elsa",              # later wives
    "jan", "deb", "lucy", "tess", "vera", "wilma", "zoe",
    "iris", "opal", "pearl",                             # girls
]
_MALE_NAMES = [
    "john", "bob", "al", "tom", "sam", "max",            # founder husbands
    "ed", "hal", "gus", "ian", "jim", "ken", "leo", "ned",  # g1/g2 husbands
    "otto", "paul", "rex", "sid", "ted",                 # later husbands
    "uri", "vic", "walt", "xeno", "york", "zack", "quin",  # unmarried
]


def _build_pedigree() -> Tuple[List[str], List[Tuple[str, str]], List[Tuple[str, str]], List[str]]:
    """Returns (persons, wife facts (husband, wife), mother facts
    (child, mother), girls) — deterministically."""
    females = iter(_FEMALE_NAMES)
    males = iter(_MALE_NAMES)
    persons: List[str] = []
    wife_facts: List[Tuple[str, str]] = []
    mother_facts: List[Tuple[str, str]] = []
    girls: List[str] = []

    def female() -> str:
        name = next(females)
        persons.append(name)
        return name

    def male() -> str:
        name = next(males)
        persons.append(name)
        return name

    # Generation 0: six founder couples.
    founder_wives = [female() for _ in range(6)]
    founder_husbands = [male() for _ in range(6)]
    wife_facts.extend(zip(founder_husbands, founder_wives))

    def breed(mothers: List[str], litter_sizes: List[int]) -> List[Tuple[str, str]]:
        """(child-slot, mother) pairs; sexes assigned by the caller."""
        slots = []
        for mother, count in zip(mothers, litter_sizes):
            slots.extend([mother] * count)
        return slots

    def make_children(mother_slots: List[str], quotas: Dict[str, int]) -> Dict[str, List[Tuple[str, str]]]:
        """Create children per role quota, round-robin over mothers so
        siblings spread across roles. Roles: wives, husbands, girls, boys.
        Returns role → list of (child, mother)."""
        roles: List[str] = []
        for role in ("wife", "husband", "girl", "boy"):
            roles.extend([role] * quotas[role])
        assert len(roles) == len(mother_slots)
        result: Dict[str, List[Tuple[str, str]]] = {
            "wife": [], "husband": [], "girl": [], "boy": [],
        }
        # Interleave roles across the mother slots deterministically.
        for index, mother in enumerate(mother_slots):
            role = roles[(index * 7) % len(roles)]
            # ensure quota respected: find next unfilled role from that point
            attempts = 0
            while len(result[role]) >= quotas[role]:
                attempts += 1
                role = roles[(index * 7 + attempts) % len(roles)]
            child = female() if role in ("wife", "girl") else male()
            result[role].append((child, mother))
            mother_facts.append((child, mother))
            if role == "girl":
                girls.append(child)
        return result

    def marry(
        wives_with_mothers: List[Tuple[str, str]],
        husbands_with_mothers: List[Tuple[str, str]],
        inlaw_wives: int,
        inlaw_husbands: int,
    ) -> List[str]:
        """Form couples, avoiding sibling marriages; returns the wives."""
        wife_pool = list(wives_with_mothers) + [
            (female(), None) for _ in range(inlaw_wives)
        ]
        husband_pool = list(husbands_with_mothers) + [
            (male(), None) for _ in range(inlaw_husbands)
        ]
        assert len(wife_pool) == len(husband_pool)
        wives: List[str] = []
        used = [False] * len(husband_pool)
        for bride, bride_mother in wife_pool:
            for index, (groom, groom_mother) in enumerate(husband_pool):
                if used[index]:
                    continue
                if bride_mother is not None and bride_mother == groom_mother:
                    continue  # no sibling marriages
                used[index] = True
                wife_facts.append((groom, bride))
                wives.append(bride)
                break
            else:
                raise AssertionError("could not marry off the pedigree")
        return wives

    # Generation 1: 16 children of the founder wives.
    g1 = make_children(
        breed(founder_wives, [3, 3, 3, 3, 2, 2]),
        {"wife": 6, "husband": 5, "girl": 3, "boy": 2},
    )
    g1_wives = marry(g1["wife"], g1["husband"], inlaw_wives=2, inlaw_husbands=3)

    # Generation 2: 14 children of the generation-1 wives.
    g2 = make_children(
        breed(g1_wives, [2, 2, 2, 2, 2, 2, 1, 1]),
        {"wife": 3, "husband": 3, "girl": 5, "boy": 3},
    )
    g2_wives = marry(g2["wife"], g2["husband"], inlaw_wives=2, inlaw_husbands=2)

    # Generation 3: 4 children of the generation-2 wives.
    make_children(
        breed(g2_wives, [1, 1, 1, 1, 0]),
        {"wife": 0, "husband": 0, "girl": 2, "boy": 2},
    )

    assert len(persons) == 55, len(persons)
    assert len(wife_facts) == 19, len(wife_facts)
    assert len(mother_facts) == 34, len(mother_facts)
    assert len(girls) == 10, len(girls)
    assert len(set(persons)) == 55
    return persons, wife_facts, mother_facts, girls


PERSONS, WIFE_FACTS, MOTHER_FACTS, GIRL_FACTS = _build_pedigree()

# -- program text --------------------------------------------------------------

RULES_SOURCE = """
female(X) :- girl(X).
female(X) :- wife(_, X).
male(X) :- not(female(X)).
father(X, Y) :- mother(X, M), wife(Y, M).
parent(X, Y) :- mother(X, Y).
parent(X, Y) :- father(X, Y).
married(X, Y) :- wife(X, Y).
married(X, Y) :- wife(Y, X).
siblings(X, Y) :- mother(X, M), mother(Y, M), unequal(X, Y).
sister(X, Y) :- siblings(X, Y), female(Y).
brother(X, Y) :- siblings(X, Y), male(Y).
grandmother(X, Y) :- parent(X, Z), mother(Z, Y).
cousins(X, Y) :- parent(X, Z), parent(Y, W), siblings(W, Z).
cousins(X, Y) :- parent(X, Z), parent(Y, W), siblings(W, V), married(V, Z).
aunt(X, Y) :- parent(X, Z), sister(Z, Y).
aunt(X, Y) :- parent(X, Z), brother(Z, W), wife(W, Y).
unequal(X, Y) :- X \\== Y.
"""

DECLARATIONS_SOURCE = """
:- entry(aunt/2).
:- entry(brother/2).
:- entry(cousins/2).
:- entry(grandmother/2).
:- entry(sister/2).
:- entry(married/2).
:- legal_mode(male(+)).
:- legal_mode(unequal(+, +)).
"""

#: Predicates × arity measured in Table II.
TESTED_PREDICATES = [("aunt", 2), ("brother", 2), ("cousins", 2), ("grandmother", 2)]


def facts_source() -> str:
    """The generated fact tables as Prolog text."""
    lines = [f"wife({h}, {w})." for h, w in WIFE_FACTS]
    lines += [f"mother({c}, {m})." for c, m in MOTHER_FACTS]
    lines += [f"girl({g})." for g in GIRL_FACTS]
    return "\n".join(lines) + "\n"


def source(with_declarations: bool = True) -> str:
    """The complete family-tree program text."""
    parts = []
    if with_declarations:
        parts.append(DECLARATIONS_SOURCE)
    parts.append(facts_source())
    parts.append(RULES_SOURCE)
    return "\n".join(parts)


def database(with_declarations: bool = True, indexing: bool = True) -> Database:
    """A fresh database holding the family-tree program."""
    return Database.from_source(source(with_declarations), indexing=indexing)
