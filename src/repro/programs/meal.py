"""The meal-planner benchmark (paper §VII, Table IV).

"meal plans meals ... Only a single clause of ... meal ... can be
reordered; the gains in performance are less impressive" — Table IV
reports ratio 1.06 in both tested modes, (-,-,-) and (+,+,-).

This is the classic calorie-bounded three-course planner (the standard
teaching example the paper's one-liner describes; DESIGN.md §3,
substitution 3): the single rule generates an appetiser, a main course
and a dessert and checks the calorie budget. Little can be gained —
every order must enumerate roughly the same cross product — which is
exactly the paper's point for this row of the table.
"""

from __future__ import annotations

from ..prolog.database import Database

__all__ = ["SOURCE", "source", "database", "TABLE4_QUERIES", "APPETIZERS", "MAINS"]

APPETIZERS = [
    ("soup", 120), ("salad", 90), ("pate", 240), ("melon", 60),
    ("shrimp", 150), ("olives", 80), ("bruschetta", 170), ("chowder", 200),
]
MAINS = [
    ("steak", 520), ("salmon", 380), ("pasta", 450), ("tofu", 300),
    ("chicken", 410), ("risotto", 470), ("lamb", 560), ("quiche", 340),
    ("curry", 430), ("stew", 390),
]
_DESSERTS = [
    ("cake", 350), ("fruit", 120), ("ice_cream", 270), ("cheese", 220),
    ("sorbet", 140), ("pie", 310), ("mousse", 260), ("pudding", 230),
]


def _facts() -> str:
    lines = [f"appetizer({n}, {c})." for n, c in APPETIZERS]
    lines += [f"main_course({n}, {c})." for n, c in MAINS]
    lines += [f"dessert({n}, {c})." for n, c in _DESSERTS]
    return "\n".join(lines)


SOURCE = (
    """
:- entry(meal/3).

% The single reorderable clause: a meal under the calorie budget.
meal(Appetizer, Main, Dessert) :-
    appetizer(Appetizer, A),
    main_course(Main, M),
    dessert(Dessert, D),
    Total is A + M + D,
    Total =< 800.

"""
    + _facts()
    + "\n"
)

#: Table IV rows: meal(-,-,-) and meal(+,+,-).
TABLE4_QUERIES = [
    ("meal(-,-,-)", ["meal(A, M, D)"]),
    ("meal(+,+,-)", [
        f"meal({appetizer}, {main}, D)"
        for appetizer, _ in APPETIZERS
        for main, _ in MAINS
    ]),
]


def source() -> str:
    """The complete program text."""
    return SOURCE


def database(indexing: bool = True) -> Database:
    """A fresh database holding the program."""
    return Database.from_source(SOURCE, indexing=indexing)
