"""A Warren-style geography database (paper §I-E).

The paper's account of Warren's system [25]: English questions about
geography were translated to conjunctive Prolog queries whose goal
order followed the word order of the question; "a goal country(C),
with C uninstantiated, multiplies the number of possibilities by the
number of countries in the database — about 150"; "if borders/2 ...
has 900 tuples, and each argument has a domain size of 150, the
function gives 900 for an uninstantiated call, 6 for a partly-
instantiated call, and 0.04 for an instantiated call"; "reordering to
minimize this yielded speedups up to several hundred times."

This module builds a synthetic world at exactly that scale — 150
countries, 900 directed border tuples (6 neighbours each), regions,
populations, capitals — plus a set of "translated English questions"
whose goal order follows the question's word order, ready for the
reordering experiments (``examples/geography_queries.py``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..prolog.database import Database

__all__ = [
    "COUNTRY_COUNT",
    "COUNTRIES",
    "REGIONS",
    "BORDER_PAIRS",
    "QUESTIONS",
    "facts_source",
    "DECLARATIONS_SOURCE",
    "QUERY_RULES_SOURCE",
    "source",
    "database",
]

COUNTRY_COUNT = 150
REGIONS = ["europa", "asiana", "afria", "northia", "southia", "oceania"]

_PREFIXES = [
    "al", "bar", "cor", "dan", "el", "fre", "gor", "han", "is", "jor",
    "kar", "lu", "mon", "nor", "or", "pol", "qua", "rov", "sal", "tur",
    "uz", "vel", "wes", "xan", "yar",
]
_SUFFIXES = ["land", "via", "stan", "mark", "nia", "dor"]

#: 150 distinct synthetic country names (25 prefixes x 6 suffixes).
COUNTRIES: List[str] = [
    f"{prefix}{suffix}" for suffix in _SUFFIXES for prefix in _PREFIXES
]
assert len(COUNTRIES) == COUNTRY_COUNT
assert len(set(COUNTRIES)) == COUNTRY_COUNT


def _build_borders() -> List[Tuple[str, str]]:
    """Exactly 900 directed border tuples: 6 neighbours per country.

    Neighbourhood structure: each country borders the 3 countries
    before/after it in its 25-country region ring (wrapping), giving a
    connected, realistic-feeling adjacency that is symmetric (if A
    borders B then B borders A), 6 per country, 900 in total.
    """
    pairs: List[Tuple[str, str]] = []
    region_size = COUNTRY_COUNT // len(REGIONS)
    for region_index in range(len(REGIONS)):
        base = region_index * region_size
        members = COUNTRIES[base : base + region_size]
        for position, country in enumerate(members):
            for offset in (1, 2, 3):
                neighbour = members[(position + offset) % region_size]
                pairs.append((country, neighbour))
                pairs.append((neighbour, country))
    assert len(pairs) == 900, len(pairs)
    return pairs


BORDER_PAIRS = _build_borders()


def facts_source() -> str:
    """The generated fact tables as Prolog text."""
    lines: List[str] = []
    region_size = COUNTRY_COUNT // len(REGIONS)
    for index, country in enumerate(COUNTRIES):
        lines.append(f"country({country}).")
    for index, country in enumerate(COUNTRIES):
        region = REGIONS[index // region_size]
        lines.append(f"region({country}, {region}).")
    for index, country in enumerate(COUNTRIES):
        population = 1 + (index * 37) % 140  # millions, 1..140
        lines.append(f"population({country}, {population}).")
    for index, country in enumerate(COUNTRIES):
        lines.append(f"capital({country}, city_{country}).")
    for a, b in BORDER_PAIRS:
        lines.append(f"borders({a}, {b}).")
    return "\n".join(lines) + "\n"


DECLARATIONS_SOURCE = """
:- domain_size(borders/2, 1, 150).
:- domain_size(borders/2, 2, 150).
:- domain_size(region/2, 1, 150).
:- domain_size(population/2, 1, 150).
:- domain_size(capital/2, 1, 150).
:- entry(q1/1).
:- entry(q2/2).
:- entry(q3/1).
:- entry(q4/2).
"""

#: The "translated English questions": goal order follows the word
#: order of the question, exactly Warren's problem setting.
QUERY_RULES_SOURCE = """
% "Which COUNTRY BORDERS a country in ASIANA whose POPULATION exceeds 120?"
q1(C) :-
    country(C),
    borders(C, N),
    region(N, asiana),
    population(N, P),
    P > 120.

% "Which COUNTRY and its CAPITAL lie in EUROPA with POPULATION below 5?"
q2(C, Cap) :-
    country(C),
    capital(C, Cap),
    region(C, europa),
    population(C, P),
    P < 5.

% "Which COUNTRY BORDERS two different countries of POPULATION above 130?"
q3(C) :-
    country(C),
    borders(C, N1),
    borders(C, N2),
    population(N1, P1),
    population(N2, P2),
    P1 > 130,
    P2 > 130,
    N1 \\== N2.

% "Which pair of BORDERING countries lie in OCEANIA and NORTHIA?"
q4(A, B) :-
    country(A),
    country(B),
    borders(A, B),
    region(A, oceania),
    region(B, northia).
"""

#: (label, query) pairs for the harness/example.
QUESTIONS = [
    ("q1: borders high-population asiana", "q1(C)"),
    ("q2: small europa country+capital", "q2(C, Cap)"),
    ("q3: borders two 130M+ countries", "q3(C)"),
    ("q4: oceania-northia border pair", "q4(A, B)"),
]


def source(with_declarations: bool = True) -> str:
    """The complete program text."""
    parts = []
    if with_declarations:
        parts.append(DECLARATIONS_SOURCE)
    parts.append(facts_source())
    parts.append(QUERY_RULES_SOURCE)
    return "\n".join(parts)


def database(with_declarations: bool = True, indexing: bool = True) -> Database:
    """A fresh database holding the program."""
    return Database.from_source(source(with_declarations), indexing=indexing)
