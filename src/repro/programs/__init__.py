"""The benchmark programs of the paper's evaluation (§VII).

Each module exposes ``source()`` and ``database()`` plus the query
lists its table rows need. :data:`REGISTRY` maps the paper's program
names to the modules for the experiment harness.
"""

from . import corporate, family_tree, geography, kmbench, meal, p58, team

__all__ = [
    "REGISTRY",
    "corporate",
    "family_tree",
    "geography",
    "kmbench",
    "meal",
    "p58",
    "team",
]

#: Program name (as the paper spells it) → module. ``geography`` is the
#: Warren §I-E scenario, not one of the paper's own benchmark tables.
REGISTRY = {
    "family_tree": family_tree,
    "corporate": corporate,
    "p58": p58,
    "meal": meal,
    "team": team,
    "kmbench": kmbench,
    "geography": geography,
}
