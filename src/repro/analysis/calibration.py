"""Empirical cost calibration (paper §I-E and §VIII).

The paper's own "extended Warren" experiments measured costs by
execution: "we call each predicate, forcing repeated backtracking, and
count the solution-tuples" — and §VIII asks that "the reordering system
should also estimate nearly all probabilities and costs on its own".

:class:`EmpiricalCalibrator` does exactly that: for a predicate and
calling mode it issues sample calls against an instrumented engine
(constants drawn deterministically from the program's own fact
domains), forces full backtracking, and averages

* **cost** — predicate calls per query (the paper's metric),
* **solutions** — answers per query,
* **prob** — fraction of queries with at least one answer,

yielding :class:`~repro.markov.goal_stats.GoalStats` ready to be
installed as ``:- cost`` declarations, so the ordinary reorderer then
runs on measured rather than modelled numbers. The paper notes the
method "is impractical even for 'toy' problems" when run exhaustively;
sampling (``max_samples``) plus call budgets keep it usable, and the
ablation benchmark compares it against the pure model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import PrologError
from ..markov.goal_stats import GoalStats
from ..prolog.database import Database
from ..prolog.engine import Engine
from ..prolog.terms import Atom, Struct, Term, Var, deref, is_number
from .declarations import CostDeclaration, Declarations
from .modes import Mode, ModeItem, all_input_modes

__all__ = ["CalibrationOptions", "EmpiricalCalibrator"]

Indicator = Tuple[str, int]


@dataclass
class CalibrationOptions:
    """Sampling and safety bounds for empirical measurement."""

    #: Maximum sample queries per (predicate, mode).
    max_samples: int = 20
    #: Per-query call budget; queries that exceed it are counted as
    #: "diverged" and make the mode ineligible for calibration.
    call_budget: int = 50_000
    #: Engine depth bound during calibration runs.
    max_depth: int = 400


class EmpiricalCalibrator:
    """Measures predicate statistics by running the program."""

    def __init__(
        self,
        database: Database,
        options: Optional[CalibrationOptions] = None,
        constants: Optional[Sequence[str]] = None,
    ):
        self.database = database
        self.options = options or CalibrationOptions()
        self.constants = (
            list(constants) if constants is not None else self._collect_constants()
        )
        #: (indicator, mode) pairs whose sample runs errored/diverged.
        self.failures: List[Tuple[Indicator, Mode]] = []
        # One recursion-limit check up front; the (many, short-lived)
        # per-sample engines then skip it entirely.
        Engine.ensure_recursion_capacity(self.options.max_depth)

    def _collect_constants(self) -> List[str]:
        """All atomic constants (atoms and numbers) appearing in fact
        heads, in first-seen order, as query-text spellings."""
        seen: Dict[str, None] = {}
        for clause in self.database.all_clauses():
            if not clause.is_fact:
                continue
            head = deref(clause.head)
            if not isinstance(head, Struct):
                continue
            stack = list(head.args)
            while stack:
                term = deref(stack.pop())
                if isinstance(term, Atom) and term.name not in ("[]",):
                    seen.setdefault(term.name, None)
                elif is_number(term):
                    seen.setdefault(
                        repr(term) if isinstance(term, float) else str(term), None
                    )
                elif isinstance(term, Struct):
                    stack.extend(term.args)
        return list(seen)

    # -- sampling ---------------------------------------------------------

    def sample_queries(self, indicator: Indicator, mode: Mode) -> List[str]:
        """Deterministic sample calls for a (predicate, mode)."""
        name, arity = indicator
        plus_count = sum(1 for item in mode if item is ModeItem.PLUS)
        if plus_count == 0 or not self.constants:
            free_args = ", ".join(f"V{i}" for i in range(arity))
            return [f"{name}({free_args})"] if arity else [name]
        queries = []
        pool = self.constants
        samples = min(self.options.max_samples, len(pool) ** plus_count)
        for sample_index in range(samples):
            arguments = []
            free_counter = 0
            seed = sample_index
            for item in mode:
                if item is ModeItem.PLUS:
                    # Mixed-radix walk through the constant pool so the
                    # samples spread deterministically.
                    arguments.append(pool[(seed * 7 + len(arguments)) % len(pool)])
                    seed = seed * 3 + 1
                else:
                    arguments.append(f"V{free_counter}")
                    free_counter += 1
            queries.append(f"{name}({', '.join(arguments)})")
        return queries

    def measure(self, indicator: Indicator, mode: Mode) -> Optional[GoalStats]:
        """Measured stats for a (predicate, mode); None when any sample
        errors or exceeds the budget (the mode is unsafe to calibrate)."""
        queries = self.sample_queries(indicator, mode)
        if not queries:
            return None
        total_calls = 0
        total_solutions = 0
        successes = 0
        for query in queries:
            engine = Engine(
                self.database,
                max_depth=self.options.max_depth,
                call_budget=self.options.call_budget,
                adjust_recursion_limit=False,
            )
            try:
                solutions, metrics = engine.run(query)
            except PrologError:
                self.failures.append((indicator, mode))
                return None
            total_calls += metrics.calls
            total_solutions += len(solutions)
            if solutions:
                successes += 1
        count = len(queries)
        return GoalStats(
            cost=max(1.0, total_calls / count),
            solutions=total_solutions / count,
            prob=successes / count,
        )

    # -- feeding the reorderer -----------------------------------------------

    def calibrate(
        self,
        indicators: Optional[Iterable[Indicator]] = None,
        declarations: Optional[Declarations] = None,
    ) -> Declarations:
        """Measure every {+,-} mode of the given predicates (default: all
        user predicates) and install the results as cost declarations.

        Existing declarations win: a user-supplied ``:- cost`` is never
        overwritten. Returns the (new or updated) Declarations object.
        """
        declarations = declarations or Declarations()
        targets = list(indicators or self.database.predicates())
        for indicator in targets:
            for mode in all_input_modes(indicator[1]):
                if (indicator, mode) in declarations.costs:
                    continue
                stats = self.measure(indicator, mode)
                if stats is None:
                    continue
                declarations.costs[(indicator, mode)] = CostDeclaration(
                    indicator=indicator,
                    mode=mode,
                    cost=stats.cost,
                    prob=stats.prob,
                    solutions=stats.solutions,
                )
        return declarations
