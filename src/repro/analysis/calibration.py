"""Empirical cost calibration (paper §I-E and §VIII).

The paper's own "extended Warren" experiments measured costs by
execution: "we call each predicate, forcing repeated backtracking, and
count the solution-tuples" — and §VIII asks that "the reordering system
should also estimate nearly all probabilities and costs on its own".

:class:`EmpiricalCalibrator` does exactly that: for a predicate and
calling mode it issues sample calls against an instrumented engine
(constants drawn deterministically from the program's own fact
domains), forces full backtracking, and averages

* **cost** — predicate calls per query (the paper's metric),
* **solutions** — answers per query,
* **prob** — fraction of queries with at least one answer,

yielding :class:`~repro.markov.goal_stats.GoalStats` ready to be
installed as ``:- cost`` declarations, so the ordinary reorderer then
runs on measured rather than modelled numbers. The paper notes the
method "is impractical even for 'toy' problems" when run exhaustively;
sampling (``max_samples``) plus call budgets keep it usable, and the
ablation benchmark compares it against the pure model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import PrologError
from ..markov.goal_stats import GoalStats
from ..observability.streaming import (
    StreamAggregates,
    StreamingRecorder,
    attach_recorder,
)
from ..prolog.database import Database
from ..prolog.engine import Engine
from ..prolog.terms import Atom, Struct, Term, Var, deref, is_number
from ..robustness import faults
from ..robustness.budget import Budget
from ..robustness.watchdog import (
    WatchdogOptions,
    WatchdogUnavailable,
    run_watchdogged,
)
from .declarations import CostDeclaration, Declarations
from .modes import Mode, ModeItem, all_input_modes, mode_str

__all__ = ["CalibrationOptions", "EmpiricalCalibrator"]

Indicator = Tuple[str, int]

#: Per-process calibrator, built once by the pool initializer so each
#: worker parses the program a single time.
_WORKER: Optional["EmpiricalCalibrator"] = None


def _calibration_worker_init(
    source: str, options: "CalibrationOptions", constants: List[str]
) -> None:
    """Pool initializer: rebuild the calibrator in the worker process.

    The program is shipped as *source text* and re-parsed here rather
    than pickled: Atom equality is identity-based within a process, so
    a pickled Database would break clause indexing.
    """
    global _WORKER
    _WORKER = EmpiricalCalibrator(
        Database.from_source(source), options, constants
    )


def _calibration_worker_measure(
    pair: Tuple[Indicator, Mode]
) -> Tuple[Optional[GoalStats], bool, Optional[Dict[str, object]]]:
    """Pool task: measure one (indicator, mode) pair.

    Returns ``(stats, failed, aggregates_payload)`` so the parent can
    rebuild its own ``failures`` list *and* merge the task's streaming
    aggregates in deterministic task order. The worker's aggregate
    state is reset per task, so each payload carries exactly this
    pair's boxes — merging them in task order reproduces the serial
    accumulation exactly (up to wall-clock histogram buckets, which
    are measurements and vary between any two runs).
    """
    assert _WORKER is not None
    before = len(_WORKER.failures)
    _WORKER.aggregates = StreamAggregates()
    stats = _WORKER.measure(*pair)
    payload = (
        _WORKER.aggregates.to_payload()
        if _WORKER.options.collect_aggregates
        else None
    )
    return stats, len(_WORKER.failures) > before, payload


def _calibration_worker_task(
    index: int, pair: Tuple[Indicator, Mode]
) -> Tuple[Optional[GoalStats], bool, Optional[Dict[str, object]]]:
    """Watchdog task: one measurement, with its fault site.

    The fault site is keyed by the *task index* (not a per-process
    counter), so a respawned worker retrying the same sample re-trips
    the same fault — which is how the tests drive a hung task all the
    way to quarantine while its neighbours measure normally.
    """
    if faults.ACTIVE is not None:
        faults.ACTIVE.hit("calibration.worker", key=index)
    return _calibration_worker_measure(pair)


@dataclass
class CalibrationOptions:
    """Sampling and safety bounds for empirical measurement."""

    #: Maximum sample queries per (predicate, mode).
    max_samples: int = 20
    #: Per-query call budget; queries that exceed it are counted as
    #: "diverged" and make the mode ineligible for calibration.
    call_budget: int = 50_000
    #: Engine depth bound during calibration runs.
    max_depth: int = 400
    #: Wall-clock allowance per parallel measurement task, seconds. A
    #: worker that exceeds it is killed and the task retried on a fresh
    #: worker; a second miss quarantines the sample (see
    #: :mod:`repro.robustness.watchdog`). Also bounds the serial re-run
    #: of a quarantined sample (as a cooperative engine deadline).
    task_timeout: float = 30.0
    #: Retries after the first failed/timed-out attempt of one task.
    task_retries: int = 1
    #: Base backoff before a retry, seconds (doubles per attempt).
    task_backoff: float = 0.05
    #: Also collect streaming per-(predicate, mode) aggregates from the
    #: sample runs (:attr:`EmpiricalCalibrator.aggregates`): workers
    #: ship their partial aggregates back as mergeable payloads, so the
    #: measured distribution feeds the live stats store for free.
    collect_aggregates: bool = False


class EmpiricalCalibrator:
    """Measures predicate statistics by running the program."""

    def __init__(
        self,
        database: Database,
        options: Optional[CalibrationOptions] = None,
        constants: Optional[Sequence[str]] = None,
    ):
        self.database = database
        self.options = options or CalibrationOptions()
        self.constants = (
            list(constants) if constants is not None else self._collect_constants()
        )
        #: (indicator, mode) pairs whose sample runs errored/diverged.
        self.failures: List[Tuple[Indicator, Mode]] = []
        #: Samples whose parallel workers hung or crashed through every
        #: retry: ((indicator, mode), reason). Each is transparently
        #: re-measured serially under a deadline; the quarantine is
        #: still surfaced through :meth:`quarantine_warnings`.
        self.quarantined: List[Tuple[Tuple[Indicator, Mode], str]] = []
        #: Streaming aggregates accumulated from the sample runs (only
        #: when ``options.collect_aggregates``); parallel workers ship
        #: partial aggregates back for a deterministic task-order
        #: merge, so any ``jobs`` value produces the same state here.
        self.aggregates = StreamAggregates()
        # One recursion-limit check up front; the (many, short-lived)
        # per-sample engines then skip it entirely.
        Engine.ensure_recursion_capacity(self.options.max_depth)

    def _collect_constants(self) -> List[str]:
        """All atomic constants (atoms and numbers) appearing in fact
        heads, in first-seen order, as query-text spellings."""
        seen: Dict[str, None] = {}
        for clause in self.database.all_clauses():
            if not clause.is_fact:
                continue
            head = deref(clause.head)
            if not isinstance(head, Struct):
                continue
            stack = list(head.args)
            while stack:
                term = deref(stack.pop())
                if isinstance(term, Atom) and term.name not in ("[]",):
                    seen.setdefault(term.name, None)
                elif is_number(term):
                    seen.setdefault(
                        repr(term) if isinstance(term, float) else str(term), None
                    )
                elif isinstance(term, Struct):
                    stack.extend(term.args)
        return list(seen)

    # -- sampling ---------------------------------------------------------

    def sample_queries(self, indicator: Indicator, mode: Mode) -> List[str]:
        """Deterministic sample calls for a (predicate, mode)."""
        name, arity = indicator
        plus_count = sum(1 for item in mode if item is ModeItem.PLUS)
        if plus_count == 0 or not self.constants:
            free_args = ", ".join(f"V{i}" for i in range(arity))
            return [f"{name}({free_args})"] if arity else [name]
        queries = []
        pool = self.constants
        samples = min(self.options.max_samples, len(pool) ** plus_count)
        for sample_index in range(samples):
            arguments = []
            free_counter = 0
            seed = sample_index
            for item in mode:
                if item is ModeItem.PLUS:
                    # Mixed-radix walk through the constant pool so the
                    # samples spread deterministically.
                    arguments.append(pool[(seed * 7 + len(arguments)) % len(pool)])
                    seed = seed * 3 + 1
                else:
                    arguments.append(f"V{free_counter}")
                    free_counter += 1
            queries.append(f"{name}({', '.join(arguments)})")
        return queries

    def measure(
        self,
        indicator: Indicator,
        mode: Mode,
        budget: Optional[Budget] = None,
    ) -> Optional[GoalStats]:
        """Measured stats for a (predicate, mode); None when any sample
        errors or exceeds the budget (the mode is unsafe to calibrate).

        ``budget`` (optional) adds a wall-clock bound shared by all of
        the pair's sample queries; expiry counts as a measurement
        failure like any other diverging sample.
        """
        queries = self.sample_queries(indicator, mode)
        if not queries:
            return None
        recorder = (
            StreamingRecorder() if self.options.collect_aggregates else None
        )
        total_calls = 0
        total_solutions = 0
        successes = 0
        for query in queries:
            engine = Engine(
                self.database,
                max_depth=self.options.max_depth,
                call_budget=self.options.call_budget,
                adjust_recursion_limit=False,
                budget=budget,
            )
            if recorder is not None:
                attach_recorder(engine, recorder)
            try:
                solutions, metrics = engine.run(query)
            except PrologError:
                self.failures.append((indicator, mode))
                return None
            total_calls += metrics.calls
            total_solutions += len(solutions)
            if solutions:
                successes += 1
        if recorder is not None:
            # Only successful pairs contribute: a failed pair returned
            # above, keeping serial and parallel accumulation identical.
            self.aggregates += recorder.aggregates
        count = len(queries)
        return GoalStats(
            cost=max(1.0, total_calls / count),
            solutions=total_solutions / count,
            prob=successes / count,
        )

    # -- batched / parallel measurement ------------------------------------

    def _program_source(self) -> str:
        """The database as re-consultable source text (for workers).

        ``op`` directives come first so custom operators parse, then
        ``table`` directives, then the clauses."""
        from ..prolog.writer import program_to_string, term_to_string

        lines = []
        for directive in self.database.directives:
            directive = deref(directive)
            if isinstance(directive, Struct) and directive.name == "op":
                lines.append(
                    f":- {term_to_string(directive, self.database.operators)}."
                )
        for name, arity in sorted(self.database.tabled):
            lines.append(f":- table {name}/{arity}.")
        lines.append(
            program_to_string(self.database.to_terms(), self.database.operators)
        )
        return "\n".join(lines)

    def measure_pairs(
        self, pairs: Sequence[Tuple[Indicator, Mode]], jobs: int = 1
    ) -> List[Optional[GoalStats]]:
        """Measure many (indicator, mode) pairs, optionally in parallel.

        ``jobs > 1`` fans the sample runs across a watchdog-supervised
        process pool (:mod:`repro.robustness.watchdog`): each task gets
        ``options.task_timeout`` seconds of wall clock, a worker that
        hangs or crashes is killed and its task retried once on a fresh
        worker, and a sample that fails every attempt is *quarantined* —
        recorded in :attr:`quarantined` and transparently re-measured
        serially here under a cooperative deadline. Results (including
        the order of :attr:`failures` entries) are merged in task
        order, so any ``jobs`` value produces bit-identical output to
        the serial path. Falls back to serial execution when worker
        processes are unavailable (restricted environments).
        """
        pairs = list(pairs)
        if jobs <= 1 or len(pairs) <= 1:
            return [self.measure(*pair) for pair in pairs]
        payload = (self._program_source(), self.options, list(self.constants))
        try:
            outcomes = run_watchdogged(
                _calibration_worker_task,
                pairs,
                jobs,
                WatchdogOptions(
                    task_timeout=self.options.task_timeout,
                    retries=self.options.task_retries,
                    backoff=self.options.task_backoff,
                ),
                initializer=_calibration_worker_init,
                initargs=payload,
            )
        except (
            WatchdogUnavailable,
            OSError,
            PermissionError,
            ValueError,
            RuntimeError,
        ):
            # No subprocess support here: measure serially instead.
            return [self.measure(*pair) for pair in pairs]
        results: List[Optional[GoalStats]] = []
        for pair, outcome in zip(pairs, outcomes):
            if outcome.quarantined:
                self.quarantined.append(
                    (pair, outcome.error or "worker failed")
                )
                # Transparent serial re-run, deadline-bounded so a
                # cooperative hang cannot stall the parent; a genuine
                # diverger lands in ``failures`` like any serial one.
                results.append(
                    self.measure(
                        *pair, budget=Budget(deadline=self.options.task_timeout)
                    )
                )
                continue
            stats, failed, payload = outcome.result
            if failed:
                self.failures.append(pair)
            if payload is not None:
                self.aggregates += StreamAggregates.from_payload(payload)
            results.append(stats)
        return results

    def failure_warnings(self) -> List[str]:
        """Human-readable lines for every failed measurement so far."""
        return [
            f"calibration failed for {indicator[0]}/{indicator[1]} "
            f"mode {mode_str(mode)}: a sample query errored or exceeded "
            f"the call budget"
            for indicator, mode in self.failures
        ]

    def quarantine_warnings(self) -> List[str]:
        """Human-readable lines for every quarantined parallel sample."""
        return [
            f"calibration worker quarantined for {indicator[0]}/{indicator[1]} "
            f"mode {mode_str(mode)} ({reason}); re-measured serially"
            for (indicator, mode), reason in self.quarantined
        ]

    # -- feeding the reorderer -----------------------------------------------

    def calibrate(
        self,
        indicators: Optional[Iterable[Indicator]] = None,
        declarations: Optional[Declarations] = None,
        jobs: int = 1,
    ) -> Declarations:
        """Measure every {+,-} mode of the given predicates (default: all
        user predicates) and install the results as cost declarations.

        Existing declarations win: a user-supplied ``:- cost`` is never
        overwritten. ``jobs > 1`` measures in parallel (deterministic
        merge; see :meth:`measure_pairs`). Measurement failures are also
        appended to the database's warnings channel, which the CLI
        prints. Returns the (new or updated) Declarations object.
        """
        declarations = declarations or Declarations()
        targets = list(indicators or self.database.predicates())
        pairs = [
            (indicator, mode)
            for indicator in targets
            for mode in all_input_modes(indicator[1])
            if (indicator, mode) not in declarations.costs
        ]
        failures_before = len(self.failures)
        quarantined_before = len(self.quarantined)
        results = self.measure_pairs(pairs, jobs=jobs)
        for (indicator, mode), stats in zip(pairs, results):
            if stats is None:
                continue
            declarations.costs[(indicator, mode)] = CostDeclaration(
                indicator=indicator,
                mode=mode,
                cost=stats.cost,
                prob=stats.prob,
                solutions=stats.solutions,
            )
        # Surface this call's failures (not re-reported on later calls).
        self.database.warnings.extend(self.failure_warnings()[failures_before:])
        self.database.warnings.extend(
            self.quarantine_warnings()[quarantined_before:]
        )
        return declarations
