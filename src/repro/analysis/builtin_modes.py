"""Legal modes, costs, and success probabilities for builtin predicates.

This is the "hand-written file of information about built-in predicates"
the paper's reordering system reads (§VI-B-2). For every builtin we list
the legal (input → output) mode pairs, an execution cost (in predicate
calls — almost always 1, the paper's unit), and a default success
probability for that mode. Probabilities for *test* modes default to
0.5; deterministic constructive modes get 1.0.

Modes not covered by any pair are illegal: calling the builtin that way
raises a run-time error or diverges (e.g. ``functor(T, N, 2)``,
``length(L, N)`` with both free), so the legality checker rejects goal
orders that would produce them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .modes import Mode, ModeItem, ModePair, mode_accepts, parse_mode_string

__all__ = ["BuiltinModeEntry", "BuiltinProfile", "builtin_profile", "BUILTIN_TABLE"]

Indicator = Tuple[str, int]


@dataclass(frozen=True)
class BuiltinModeEntry:
    """One legal mode of one builtin, with its cost/probability estimates."""

    pair: ModePair
    cost: float = 1.0
    prob: float = 0.5
    #: Expected number of solutions; defaults to ``prob`` (at most one).
    solutions: Optional[float] = None

    @property
    def expected_solutions(self) -> float:
        return self.prob if self.solutions is None else self.solutions


@dataclass(frozen=True)
class BuiltinProfile:
    """All legal modes of one builtin."""

    indicator: Indicator
    entries: Tuple[BuiltinModeEntry, ...]

    def accepting(self, actual: Mode) -> Optional[BuiltinModeEntry]:
        """The first entry whose input mode accepts ``actual``."""
        for entry in self.entries:
            if mode_accepts(entry.pair.input, actual):
                return entry
        return None

    @property
    def pairs(self) -> List[ModePair]:
        return [entry.pair for entry in self.entries]


def _entry(
    input_text: str,
    output_text: str,
    cost: float = 1.0,
    prob: float = 0.5,
    solutions: Optional[float] = None,
):
    return BuiltinModeEntry(
        ModePair(parse_mode_string(input_text), parse_mode_string(output_text)),
        cost=cost,
        prob=prob,
        solutions=solutions,
    )


def _profile(name: str, arity: int, *entries: BuiltinModeEntry) -> BuiltinProfile:
    return BuiltinProfile((name, arity), tuple(entries))


def _zero_arity(name: str, prob: float) -> BuiltinProfile:
    return BuiltinProfile(
        (name, 0), (BuiltinModeEntry(ModePair((), ()), cost=1.0, prob=prob),)
    )


_PROFILES: List[BuiltinProfile] = [
    _zero_arity("true", 1.0),
    _zero_arity("fail", 0.0),
    _zero_arity("false", 0.0),
    _zero_arity("nl", 1.0),
    # Unification: legal in every mode; the all-? pair catches the rest.
    _profile(
        "=", 2,
        _entry("(-, +)", "(+, +)", prob=1.0),
        _entry("(+, -)", "(+, +)", prob=1.0),
        _entry("(+, +)", "(+, +)", prob=0.5),
        _entry("(?, ?)", "(?, ?)", prob=0.8),
    ),
    _profile("\\=", 2, _entry("(?, ?)", "(?, ?)", prob=0.5)),
    _profile("==", 2, _entry("(?, ?)", "(?, ?)", prob=0.3)),
    _profile("\\==", 2, _entry("(?, ?)", "(?, ?)", prob=0.7)),
    _profile("@<", 2, _entry("(?, ?)", "(?, ?)", prob=0.5)),
    _profile("@>", 2, _entry("(?, ?)", "(?, ?)", prob=0.5)),
    _profile("@=<", 2, _entry("(?, ?)", "(?, ?)", prob=0.5)),
    _profile("@>=", 2, _entry("(?, ?)", "(?, ?)", prob=0.5)),
    _profile("compare", 3, _entry("(?, ?, ?)", "(+, ?, ?)", prob=1.0)),
    # Arithmetic demands an instantiated right-hand side.
    _profile(
        "is", 2,
        _entry("(-, +)", "(+, +)", prob=1.0),
        _entry("(+, +)", "(+, +)", prob=0.5),
        _entry("(?, +)", "(+, +)", prob=0.7),
    ),
    _profile("=:=", 2, _entry("(+, +)", "(+, +)", prob=0.5)),
    _profile("=\\=", 2, _entry("(+, +)", "(+, +)", prob=0.5)),
    _profile("<", 2, _entry("(+, +)", "(+, +)", prob=0.5)),
    _profile(">", 2, _entry("(+, +)", "(+, +)", prob=0.5)),
    _profile("=<", 2, _entry("(+, +)", "(+, +)", prob=0.5)),
    _profile(">=", 2, _entry("(+, +)", "(+, +)", prob=0.5)),
    _profile(
        "succ", 2,
        _entry("(+, -)", "(+, +)", prob=1.0),
        _entry("(-, +)", "(+, +)", prob=0.9),
        _entry("(+, +)", "(+, +)", prob=0.5),
    ),
    # Type tests are legal in any mode (that is their point).
    _profile("var", 1, _entry("(?)", "(?)", prob=0.5)),
    _profile("nonvar", 1, _entry("(?)", "(?)", prob=0.5)),
    _profile("atom", 1, _entry("(?)", "(?)", prob=0.5)),
    _profile("atomic", 1, _entry("(?)", "(?)", prob=0.5)),
    _profile("number", 1, _entry("(?)", "(?)", prob=0.5)),
    _profile("integer", 1, _entry("(?)", "(?)", prob=0.5)),
    _profile("float", 1, _entry("(?)", "(?)", prob=0.5)),
    _profile("compound", 1, _entry("(?)", "(?)", prob=0.5)),
    _profile("callable", 1, _entry("(?)", "(?)", prob=0.5)),
    _profile("ground", 1, _entry("(?)", "(?)", prob=0.5)),
    _profile("is_list", 1, _entry("(?)", "(?)", prob=0.5)),
    # Term construction/inspection: the paper's functor/3 demands (§V-B).
    _profile(
        "functor", 3,
        _entry("(+, ?, ?)", "(+, +, +)", prob=1.0),
        _entry("(-, +, +)", "(?, +, +)", prob=1.0),
    ),
    _profile("arg", 3, _entry("(?, +, ?)", "(?, +, ?)", prob=0.9)),
    _profile(
        "=..", 2,
        _entry("(+, ?)", "(+, +)", prob=1.0),
        _entry("(-, +)", "(?, +)", prob=1.0),
    ),
    _profile("copy_term", 2, _entry("(?, ?)", "(?, ?)", prob=1.0)),
    # I/O: fixed predicates; write accepts anything, read outputs.
    _profile("write", 1, _entry("(?)", "(?)", prob=1.0)),
    _profile("print", 1, _entry("(?)", "(?)", prob=1.0)),
    _profile("writeln", 1, _entry("(?)", "(?)", prob=1.0)),
    _profile("tab", 1, _entry("(+)", "(+)", prob=1.0)),
    _profile("put", 1, _entry("(+)", "(+)", prob=1.0)),
    _profile("read", 1, _entry("(?)", "(?)", prob=1.0)),
    _profile("get0", 1, _entry("(-)", "(+)", prob=1.0)),
    # Negation and meta-call.
    _profile("\\+", 1, _entry("(?)", "(?)", prob=0.5)),
    _profile("throw", 1, _entry("(?)", "(?)", prob=0.0)),
    _profile("catch", 3, _entry("(?, ?, ?)", "(?, ?, ?)", prob=0.5)),
    _profile("not", 1, _entry("(?)", "(?)", prob=0.5)),
    _profile("call", 1, _entry("(?)", "(?)", prob=0.5)),
    _profile("once", 1, _entry("(?)", "(?)", prob=0.5)),
    _profile("forall", 2, _entry("(?, ?)", "(?, ?)", prob=0.5)),
    # All-solutions predicates always bind their result argument.
    _profile(
        "findall", 3,
        _entry("(?, ?, -)", "(?, ?, +)", prob=1.0, cost=2.0),
        _entry("(?, ?, +)", "(?, ?, +)", prob=0.5, cost=2.0),
    ),
    _profile(
        "bagof", 3,
        _entry("(?, ?, -)", "(?, ?, +)", prob=0.5, cost=2.0),
        _entry("(?, ?, +)", "(?, ?, +)", prob=0.5, cost=2.0),
    ),
    _profile(
        "setof", 3,
        _entry("(?, ?, -)", "(?, ?, +)", prob=0.5, cost=2.0),
        _entry("(?, ?, +)", "(?, ?, +)", prob=0.5, cost=2.0),
    ),
    # length/2: the (-,-) mode is unbounded, hence deliberately absent.
    _profile(
        "length", 2,
        _entry("(+, -)", "(+, +)", prob=1.0),
        _entry("(+, +)", "(+, +)", prob=0.5),
        _entry("(-, +)", "(+, +)", prob=1.0),
        _entry("(?, +)", "(+, +)", prob=0.8),
    ),
    # Atom/term text and sorting.
    _profile(
        "atom_codes", 2,
        _entry("(+, ?)", "(+, +)", prob=1.0),
        _entry("(-, +)", "(+, +)", prob=1.0),
    ),
    _profile(
        "number_codes", 2,
        _entry("(+, ?)", "(+, +)", prob=1.0),
        _entry("(-, +)", "(+, +)", prob=0.9),
    ),
    _profile(
        "name", 2,
        _entry("(+, ?)", "(+, +)", prob=1.0),
        _entry("(-, +)", "(+, +)", prob=1.0),
    ),
    _profile("atom_length", 2, _entry("(+, ?)", "(+, +)", prob=1.0)),
    _profile("msort", 2, _entry("(+, ?)", "(+, +)", prob=1.0, cost=2.0)),
    _profile("sort", 2, _entry("(+, ?)", "(+, +)", prob=1.0, cost=2.0)),
    _profile("keysort", 2, _entry("(+, ?)", "(+, +)", prob=1.0, cost=2.0)),
    _profile(
        "between", 3,
        _entry("(+, +, -)", "(+, +, +)", prob=1.0, cost=2.0, solutions=10.0),
        _entry("(+, +, +)", "(+, +, +)", prob=0.5),
    ),
]

BUILTIN_TABLE: Dict[Indicator, BuiltinProfile] = {
    profile.indicator: profile for profile in _PROFILES
}

# call/N with extra arguments.
for _extra in range(1, 6):
    _indicator = ("call", 1 + _extra)
    BUILTIN_TABLE[_indicator] = BuiltinProfile(
        _indicator,
        (
            BuiltinModeEntry(
                ModePair(
                    (ModeItem.PLUS,) + (ModeItem.ANY,) * _extra,
                    (ModeItem.PLUS,) + (ModeItem.ANY,) * _extra,
                ),
                cost=1.0,
                prob=0.5,
            ),
        ),
    )


def builtin_profile(indicator: Indicator) -> Optional[BuiltinProfile]:
    """The mode/cost profile of a builtin, or None if not a builtin."""
    return BUILTIN_TABLE.get(indicator)
