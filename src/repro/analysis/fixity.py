"""Fixity analysis (paper §IV-B).

A goal that calls a side-effecting builtin is *fixed*: it cannot be
moved within its clause, its clause cannot be moved within its
predicate, and — because "predicates are responsible for the actions of
their descendants" — every ancestor predicate is fixed too. We compute
the fixed set by propagating side-effects up the call graph to a fixed
point (equivalent to the paper's top-down scan with an ancestor list,
but immune to cycles).

The result object also answers the finer-grained questions the
reorderer asks: is this particular *goal term* fixed (i.e. might its
execution produce a side effect)?
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..prolog.builtins import BUILTINS
from ..prolog.database import Database
from ..prolog.terms import Term, functor_indicator
from .callgraph import CallGraph, iter_subgoal_indicators
from .declarations import Declarations

__all__ = ["side_effect_builtins", "FixityAnalysis"]

Indicator = Tuple[str, int]


def side_effect_builtins() -> Set[Indicator]:
    """Indicators of every registered side-effecting builtin."""
    return {
        indicator
        for indicator, registered in BUILTINS.items()
        if registered.side_effect
    }


class FixityAnalysis:
    """The set of fixed predicates of a program."""

    def __init__(
        self,
        database: Database,
        callgraph: Optional[CallGraph] = None,
        declarations: Optional[Declarations] = None,
    ):
        self.database = database
        self.callgraph = callgraph or CallGraph(database)
        self.declarations = declarations
        self._fixed = self._compute()

    def _compute(self) -> Set[Indicator]:
        fixed: Set[Indicator] = set(side_effect_builtins())
        if self.declarations is not None:
            fixed |= set(self.declarations.fixed)
        # Propagate to callers until no change (worklist over the
        # reversed call graph).
        worklist = [
            indicator
            for indicator in fixed
            if indicator in self.callgraph.callers
        ]
        while worklist:
            contaminated = worklist.pop()
            for caller in self.callgraph.called_by(contaminated):
                if caller not in fixed:
                    fixed.add(caller)
                    worklist.append(caller)
        return fixed

    @property
    def fixed_predicates(self) -> Set[Indicator]:
        """Fixed *user* predicates (builtins excluded)."""
        return {
            indicator
            for indicator in self._fixed
            if self.database.defines(indicator)
        }

    def is_fixed(self, indicator: Indicator) -> bool:
        """Is this predicate (builtin or user) fixed?"""
        return indicator in self._fixed

    def goal_is_fixed(self, goal: Term) -> bool:
        """Might executing this goal produce a side-effect?

        True when the goal's own predicate is fixed, or (for control
        constructs and meta-calls) when any reachable subgoal is.
        """
        try:
            indicator = functor_indicator(goal)
        except TypeError:
            return True  # unknown shape: be conservative
        if self.is_fixed(indicator):
            return True
        # Look through control constructs: a disjunction with a write
        # inside is itself fixed.
        for sub in iter_subgoal_indicators(goal) if _is_control_like(indicator) else ():
            if self.is_fixed(sub):
                return True
        return False

    def clause_is_fixed(self, body: Term) -> bool:
        """Does this clause body (directly or transitively) side-effect?"""
        return any(
            self.is_fixed(indicator)
            for indicator in iter_subgoal_indicators(body)
        )


def _is_control_like(indicator: Indicator) -> bool:
    return indicator in {
        (",", 2),
        (";", 2),
        ("->", 2),
        ("\\+", 1),
        ("not", 1),
        ("call", 1),
        ("once", 1),
        ("forall", 2),
        ("findall", 3),
        ("bagof", 3),
        ("setof", 3),
        ("catch", 3),
    }
