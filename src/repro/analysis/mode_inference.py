"""Mode inference by abstract interpretation (paper §V-E).

We execute clauses symbolically over the FREE/GROUND/ANY lattice of
:mod:`repro.analysis.modes`. For a predicate called in a given input
mode the analysis produces:

* the *output mode* it leaves on success — the pointwise join over all
  clauses that can legally run in that mode; or
* ``None`` — the mode is **illegal**: every clause eventually calls some
  builtin outside its legal modes (run-time error), or the predicate is
  recursive and the mode cannot be shown terminating.

Recursive predicates (§IV-D-7, §V-B): declared legal modes always win.
Without a declaration we apply a *structural-descent* check: a recursive
mode is accepted only if, in every directly-recursive clause, the
recursive call has some argument position that is a strict subterm of
the head's same position and is instantiated (``+``) in the calling
mode (the ``delete/3`` pattern). Recursions that rebind their arguments
through other goals (``permutation/2``) fail the check and must be
declared — exactly the paper's position that "the programmer declares a
predicate recursive and provides necessary information".

The fixpoint: mutually recursive output modes start from the assumption
"output = input" and iterate until stable; the lattice is finite and
all operations are monotone joins, so this terminates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..prolog.builtins import is_builtin
from ..prolog.database import Clause, Database
from ..prolog.terms import (
    Atom,
    Struct,
    Term,
    Var,
    deref,
    functor_indicator,
    term_variables,
)
from .builtin_modes import builtin_profile
from .callgraph import CallGraph
from .declarations import Declarations
from .modes import (
    Inst,
    Mode,
    ModeItem,
    ModePair,
    VarState,
    all_input_modes,
    apply_output,
    argument_inst,
    bind_head_states,
    call_mode,
    inst_to_item,
    join_inst,
    mode_accepts,
    mode_str,
)
from .recursion import recursive_predicates

__all__ = ["ModeInference", "join_modes", "structural_descent_positions"]

Indicator = Tuple[str, int]


def _join_items(left: ModeItem, right: ModeItem) -> ModeItem:
    if left is right:
        return left
    return ModeItem.ANY


def join_modes(left: Mode, right: Mode) -> Mode:
    """Pointwise join (least upper bound) of two modes."""
    return tuple(_join_items(a, b) for a, b in zip(left, right))


def _is_strict_subterm(candidate: Term, container: Term) -> bool:
    """Is ``candidate`` a proper subterm of ``container`` (syntactically)?"""
    container = deref(container)
    if not isinstance(container, Struct):
        return False
    stack = list(container.args)
    candidate = deref(candidate)
    while stack:
        current = deref(stack.pop())
        if current is candidate:
            return True
        if isinstance(current, Struct):
            stack.extend(current.args)
    return False


def structural_descent_positions(clause: Clause) -> Set[int]:
    """Head positions on which every direct recursive call descends.

    For a clause of ``p`` whose body calls ``p`` directly, the returned
    positions (1-based) are those where *each* recursive call's argument
    is a strict subterm of the head's argument. An instantiated argument
    in such a position shrinks on every recursion, so it bounds the
    recursion depth.
    """
    from .callgraph import iter_called_goals

    head = deref(clause.head)
    if not isinstance(head, Struct):
        return set()
    indicator = clause.indicator
    recursive_calls = [
        deref(goal)
        for goal in iter_called_goals(clause.body)
        if isinstance(deref(goal), Struct)
        and deref(goal).indicator == indicator
    ]
    if not recursive_calls:
        return set()
    positions: Set[int] = set()
    for index in range(head.arity):
        if all(
            _is_strict_subterm(call.args[index], head.args[index])
            for call in recursive_calls
        ):
            positions.add(index + 1)
    return positions


class ModeInference:
    """Abstract interpreter answering output-mode and legality queries."""

    def __init__(
        self,
        database: Database,
        declarations: Optional[Declarations] = None,
        callgraph: Optional[CallGraph] = None,
        max_iterations: int = 20,
    ):
        self.database = database
        self.declarations = declarations or Declarations()
        self.callgraph = callgraph or CallGraph(database)
        self.recursive = recursive_predicates(self.callgraph)
        self.recursive |= self.declarations.recursive
        self.max_iterations = max_iterations
        self._memo: Dict[Tuple[Indicator, Mode], Optional[Mode]] = {}
        self._assumption: Dict[Tuple[Indicator, Mode], Mode] = {}
        #: Diagnostics produced while inferring (Fig. 3: "informs the
        #: programmer when it cannot infer properties").
        self.warnings: List[str] = []

    # -- public API --------------------------------------------------------

    def output_mode(self, indicator: Indicator, input_mode: Mode) -> Optional[Mode]:
        """Success output mode for a call, or None when illegal."""
        key = (indicator, input_mode)
        if key in self._memo:
            return self._memo[key]
        if key in self._assumption:  # recursion: use current assumption
            return self._assumption[key]

        declared = self._declared_output(indicator, input_mode)
        if declared is not NO_DECLARATION:
            self._memo[key] = declared
            return declared

        profile = builtin_profile(indicator)
        if profile is not None:
            entry = profile.accepting(input_mode)
            result = None if entry is None else self._pair_output(
                entry.pair, input_mode
            )
            self._memo[key] = result
            return result

        if not self.database.defines(indicator):
            if is_builtin(indicator):
                # Registered builtin with no profile: assume mode-free.
                result = input_mode
            else:
                self.warnings.append(
                    f"undefined predicate {indicator[0]}/{indicator[1]}"
                )
                result = None
            self._memo[key] = result
            return result

        if indicator in self.recursive and not self._recursion_admissible(
            indicator, input_mode
        ):
            self._memo[key] = None
            return None

        result = self._fixpoint(indicator, input_mode)
        self._memo[key] = result
        return result

    def is_legal(self, indicator: Indicator, input_mode: Mode) -> bool:
        """Is a call in ``input_mode`` legal (has any output mode)?"""
        return self.output_mode(indicator, input_mode) is not None

    def legal_input_modes(self, indicator: Indicator) -> List[Mode]:
        """All legal {+, -} input modes of a predicate."""
        return [
            mode
            for mode in all_input_modes(indicator[1])
            if self.is_legal(indicator, mode)
        ]

    def legal_pairs(self, indicator: Indicator) -> List[ModePair]:
        """Legal (input, output) pairs over the {+, -} input modes."""
        pairs = []
        for mode in all_input_modes(indicator[1]):
            output = self.output_mode(indicator, mode)
            if output is not None:
                pairs.append(ModePair(mode, output))
        return pairs

    # -- declarations ---------------------------------------------------------

    def _declared_output(self, indicator: Indicator, input_mode: Mode):
        declared = self.declarations.declared_pairs(indicator)
        if not declared:
            return NO_DECLARATION
        # First accepting pair wins (same discipline as the builtin
        # profiles): declare the more specific modes first, e.g.
        # append(+,+,?)->(+,+,+) before append(+,?,?)->(+,?,?).
        for pair in declared:
            if mode_accepts(pair.input, input_mode):
                return self._pair_output(pair, input_mode)
        return None  # declared predicate, undeclared mode: illegal

    @staticmethod
    def _pair_output(pair: ModePair, input_mode: Mode) -> Mode:
        # The actual call may be more instantiated than the declared
        # input; keep the stronger of the two pointwise.
        output = []
        for declared_out, actual_in in zip(pair.output, input_mode):
            if actual_in is ModeItem.PLUS:
                output.append(ModeItem.PLUS)
            else:
                output.append(declared_out)
        return tuple(output)

    # -- recursion admissibility --------------------------------------------------

    def _recursion_admissible(self, indicator: Indicator, input_mode: Mode) -> bool:
        """Structural-descent termination check for undeclared recursion."""
        clauses = self.database.clauses(indicator)
        checked_any = False
        for clause in clauses:
            positions = structural_descent_positions(clause)
            has_direct_recursion = any(
                True
                for goal in _direct_recursive_goals(clause, indicator)
            )
            if not has_direct_recursion:
                continue
            checked_any = True
            descending = any(
                input_mode[position - 1] is ModeItem.PLUS for position in positions
            )
            if not descending:
                self.warnings.append(
                    f"recursive {indicator[0]}/{indicator[1]} has no declared "
                    f"legal modes and no instantiated descending argument in "
                    f"mode {mode_str(input_mode)}; treating the mode as illegal"
                )
                return False
        if not checked_any:
            # Mutual recursion only: structural check does not apply; be
            # permissive and let the per-goal legality checks decide.
            return True
        return True


    # -- the abstract interpreter --------------------------------------------------

    def _fixpoint(self, indicator: Indicator, input_mode: Mode) -> Optional[Mode]:
        key = (indicator, input_mode)
        self._assumption[key] = input_mode
        result: Optional[Mode] = None
        for _ in range(self.max_iterations):
            result = self._predicate_output(indicator, input_mode)
            if result is None or result == self._assumption[key]:
                break
            self._assumption[key] = result
        del self._assumption[key]
        return result

    def _predicate_output(
        self, indicator: Indicator, input_mode: Mode
    ) -> Optional[Mode]:
        output: Optional[Mode] = None
        for clause in self.database.clauses(indicator):
            clause_output = self._clause_output(clause, input_mode)
            if clause_output is None:
                continue  # this clause cannot run legally in this mode
            output = (
                clause_output if output is None else join_modes(output, clause_output)
            )
        return output

    def _clause_output(self, clause: Clause, input_mode: Mode) -> Optional[Mode]:
        head = deref(clause.head)
        states: VarState = {}
        bind_head_states(head, input_mode, states)
        if not self._exec(clause.body, states):
            return None
        if isinstance(head, Atom):
            return ()
        assert isinstance(head, Struct)
        return tuple(inst_to_item(argument_inst(arg, states)) for arg in head.args)

    def abstract_execute(self, goal: Term, states: VarState) -> bool:
        """Public alias of the abstract goal step, used by the legality
        checker (paper §VI-B-1) to scan candidate orders goal by goal."""
        return self._exec(goal, states)

    def _exec(self, goal: Term, states: VarState) -> bool:
        """Abstractly execute a goal; False when it is illegal here."""
        goal = deref(goal)
        if isinstance(goal, Var):
            return False  # variable goals are forbidden (§I-C)
        if isinstance(goal, Atom):
            if goal.name in ("!", "true", "fail", "false"):
                return True
            return self._exec_call(goal, states)
        if not isinstance(goal, Struct):
            return False

        name, arity = goal.name, goal.arity
        if name == "," and arity == 2:
            return self._exec(goal.args[0], states) and self._exec(
                goal.args[1], states
            )
        if name == ";" and arity == 2:
            return self._exec_disjunction(goal, states)
        if name == "->" and arity == 2:
            return self._exec(goal.args[0], states) and self._exec(
                goal.args[1], states
            )
        if name in ("\\+", "not") and arity == 1:
            # Negation makes no bindings; its argument must still be legal.
            return self._exec(goal.args[0], dict(states))
        if name in ("call", "once") and arity == 1:
            return self._exec(goal.args[0], states)
        if name == "forall" and arity == 2:
            scratch = dict(states)
            return self._exec(goal.args[0], scratch) and self._exec(
                goal.args[1], scratch
            )
        if name in ("findall", "bagof", "setof") and arity == 3:
            inner = _strip_carets(goal.args[1])
            if not self._exec(inner, dict(states)):
                return False
            for variable in term_variables(goal.args[2]):
                states[id(variable)] = Inst.GROUND
            return True
        return self._exec_call(goal, states)

    def _exec_disjunction(self, goal: Struct, states: VarState) -> bool:
        """Disjunction / if-then-else. Every reachable part must be
        legal: Prolog tries the left branch (or the condition) first and
        an illegal call there is a run-time *error*, not a failure — it
        never falls through to the other branch."""
        left, right = goal.args
        left_deref = deref(left)
        if (
            isinstance(left_deref, Struct)
            and left_deref.name == "->"
            and left_deref.arity == 2
        ):
            then_states = dict(states)
            if not self._exec(left_deref.args[0], then_states):
                return False  # illegal condition: the construct errors
            if not self._exec(left_deref.args[1], then_states):
                return False
            else_states = dict(states)
            if not self._exec(right, else_states):
                return False
            self._merge_branches(states, then_states, else_states)
            return True
        left_states = dict(states)
        if not self._exec(left, left_states):
            return False
        right_states = dict(states)
        if not self._exec(right, right_states):
            return False
        self._merge_branches(states, left_states, right_states)
        return True

    @staticmethod
    def _merge_branches(states: VarState, first: VarState, second: VarState) -> None:
        keys = set(first) | set(second)
        for key in keys:
            states[key] = join_inst(
                first.get(key, Inst.FREE), second.get(key, Inst.FREE)
            )

    def _exec_call(self, goal: Term, states: VarState) -> bool:
        indicator = functor_indicator(goal)
        mode = call_mode(goal, states)
        output = self.output_mode(indicator, mode)
        if output is None:
            return False
        apply_output(goal, output, states)
        return True


def _direct_recursive_goals(clause: Clause, indicator: Indicator):
    from .callgraph import iter_called_goals

    for goal in iter_called_goals(clause.body):
        goal = deref(goal)
        if isinstance(goal, Struct) and goal.indicator == indicator:
            yield goal


def _strip_carets(term: Term) -> Term:
    term = deref(term)
    while isinstance(term, Struct) and term.name == "^" and term.arity == 2:
        term = deref(term.args[1])
    return term


#: Sentinel distinguishing "no declaration" from "declared illegal".
NO_DECLARATION = object()
