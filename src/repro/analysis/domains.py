"""Warren-style domain estimation (paper §I-E and §VI-A-4).

Warren's heuristic needs, for each argument position of each database
predicate, the *domain* — the set of constants that can appear there —
and the number of stored tuples. From these we derive:

* ``warren_number(pred, mode)`` — the factor by which a goal multiplies
  the number of alternatives: ``tuples / Π |domain_i|`` over the
  instantiated positions *i* of the calling mode. Values < 1 mean the
  goal acts as a test; large values mean it is a generator.
* ``success_probability(pred, mode)`` — the chance a call succeeds at
  all, estimated as ``min(1, warren_number)``.
* ``fact_match_probability(pred, mode)`` — the chance one particular
  fact head unifies with a call, ``Π |domain_i|^{-1}`` over positions
  instantiated in both call and fact.

Domains are collected from fact clauses; ``:- domain_size`` declarations
override the collected sizes (the paper notes domain size "is
problematic even for database programs", so the user may know better).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..prolog.database import Clause, Database
from ..prolog.terms import Atom, Struct, deref, is_number, term_is_ground
from .declarations import Declarations
from .modes import Mode, ModeItem

__all__ = ["DomainAnalysis"]

Indicator = Tuple[str, int]


class DomainAnalysis:
    """Argument domains and tuple counts of the fact predicates."""

    def __init__(self, database: Database, declarations: Optional[Declarations] = None):
        self.database = database
        self.declarations = declarations or Declarations()
        self._domains: Dict[Tuple[Indicator, int], Set] = {}
        self._tuples: Dict[Indicator, int] = {}
        self._collect()

    def _collect(self) -> None:
        for indicator in self.database.predicates():
            facts = [
                clause for clause in self.database.clauses(indicator) if clause.is_fact
            ]
            self._tuples[indicator] = len(facts)
            for clause in facts:
                head = deref(clause.head)
                if not isinstance(head, Struct):
                    continue
                for position, arg in enumerate(head.args, start=1):
                    arg = deref(arg)
                    if isinstance(arg, Atom):
                        key = arg.name
                    elif is_number(arg):
                        key = arg
                    elif term_is_ground(arg):
                        key = str(arg)
                    else:
                        continue
                    self._domains.setdefault((indicator, position), set()).add(key)

    # -- raw data ------------------------------------------------------------

    def tuple_count(self, indicator: Indicator) -> int:
        """Number of fact clauses of the predicate."""
        return self._tuples.get(indicator, 0)

    def domain(self, indicator: Indicator, position: int) -> Set:
        """Constants observed at an argument position of the facts."""
        return set(self._domains.get((indicator, position), ()))

    def domain_size(self, indicator: Indicator, position: int) -> int:
        """Declared size if given, else the observed size (at least 1)."""
        declared = self.declarations.domain_sizes.get((indicator, position))
        if declared is not None:
            return max(1, declared)
        return max(1, len(self._domains.get((indicator, position), ())))

    # -- Warren's function ------------------------------------------------------

    def warren_number(self, indicator: Indicator, mode: Mode) -> float:
        """Expected number of matching tuples for a call in ``mode``."""
        tuples = self.tuple_count(indicator)
        if tuples == 0:
            return 0.0
        estimate = float(tuples)
        for position, item in enumerate(mode, start=1):
            if item is ModeItem.PLUS:
                estimate /= self.domain_size(indicator, position)
        return estimate

    def success_probability(self, indicator: Indicator, mode: Mode) -> float:
        """Chance that a call in ``mode`` has at least one solution."""
        declared = self.declarations.match_probs.get(indicator)
        if declared is not None:
            return declared
        return min(1.0, self.warren_number(indicator, mode))

    def expected_solutions(self, indicator: Indicator, mode: Mode) -> float:
        """Expected solution count (Warren's multiplying factor, >= 0)."""
        return self.warren_number(indicator, mode)

    def fact_match_probability(self, indicator: Indicator, mode: Mode) -> float:
        """Chance one given fact head matches a call in ``mode``."""
        probability = 1.0
        for position, item in enumerate(mode, start=1):
            if item is ModeItem.PLUS:
                probability /= self.domain_size(indicator, position)
        return probability
