"""Stratum eligibility analysis for the bottom-up backend.

The semi-naive evaluator (:mod:`repro.prolog.bottomup`) is only sound
and terminating on the *datalog-like* fragment of a program: clauses
that are range-restricted, free of side effects and control constructs,
whose negation is stratified (no predicate negates into its own
recursion component), and whose terms introduce no new structure at
derivation time (every head/body argument is a variable or a ground
term, so the Herbrand base stays finite). This module classifies each
strongly connected component of the call graph — the paper's recursion
components, in the callees-first evaluation order Tarjan's algorithm
already yields — as eligible or not, with human-readable reasons, so
both the engine dispatcher and the reorder report can surface *why* a
stratum fell back to SLD resolution.

Eligibility is transitive: a stratum whose clauses are pure but which
calls an ineligible (or undefined, or builtin-using) stratum is itself
ineligible, because materializing it would need those answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..prolog.builtins import lookup
from ..prolog.database import Clause, Database, body_goals
from ..prolog.terms import (
    Atom,
    Struct,
    Term,
    Var,
    deref,
    functor_indicator,
    term_is_ground,
    term_variables,
)
from .callgraph import CallGraph
from .recursion import strongly_connected_components

__all__ = [
    "ClauseInfo",
    "StratumInfo",
    "Stratification",
    "analyze_clause",
    "stratify",
]

Indicator = Tuple[str, int]

#: Control constructs that never appear as datalog literals.
_CONTROL_ATOMS = frozenset(["!", "fail", "false"])
_CONTROL_STRUCTS = frozenset([";", "->", ",", "call", "once", "forall",
                              "findall", "bagof", "setof", "catch"])


@dataclass
class ClauseInfo:
    """One clause's datalog decomposition (or the reasons it has none).

    ``positives``/``negatives`` hold the body's user-predicate literals
    (negatives are the goals under ``\\+``/``not``); ``reasons`` is
    empty exactly when the clause is a well-formed datalog rule.
    """

    clause: Clause
    positives: List[Term]
    negatives: List[Term]
    reasons: List[str]

    @property
    def is_fact(self) -> bool:
        return not self.positives and not self.negatives


def _flat_args(term: Term, where: str, reasons: List[str]) -> None:
    """Require every argument to be a variable or a ground term.

    A compound argument containing variables (``nat(s(X))``) can build
    unboundedly many new terms bottom-up even when range-restricted, so
    it disqualifies the clause.
    """
    if not isinstance(term, Struct):
        return
    for arg in term.args:
        arg = deref(arg)
        if isinstance(arg, Var) or term_is_ground(arg):
            continue
        reasons.append(
            f"{where} argument is a partially instantiated structure (non-datalog)"
        )
        return


def analyze_clause(clause: Clause) -> ClauseInfo:
    """Decompose one clause into datalog literals, collecting reasons
    for every feature the bottom-up evaluator cannot handle."""
    reasons: List[str] = []
    head = deref(clause.head)
    _flat_args(head, "head", reasons)
    positives: List[Term] = []
    negatives: List[Term] = []
    for goal in body_goals(clause.body):
        goal = deref(goal)
        if isinstance(goal, Var):
            reasons.append("variable body goal")
            continue
        if isinstance(goal, Atom):
            if goal.name == "true":
                continue
            if goal.name in _CONTROL_ATOMS:
                reasons.append(f"control construct {goal.name}/0")
                continue
            if lookup((goal.name, 0)) is not None:
                reasons.append(f"builtin {goal.name}/0")
                continue
            positives.append(goal)
            continue
        assert isinstance(goal, Struct)
        indicator = goal.indicator
        if goal.name in _CONTROL_STRUCTS:
            reasons.append(f"control construct {goal.name}/{goal.arity}")
            continue
        if goal.name in ("\\+", "not") and goal.arity == 1:
            inner = deref(goal.args[0])
            if not isinstance(inner, (Atom, Struct)):
                reasons.append("non-callable negated goal")
                continue
            if lookup(functor_indicator(inner)) is not None or (
                isinstance(inner, Struct) and inner.name in _CONTROL_STRUCTS
            ):
                reasons.append("negated builtin or control goal")
                continue
            _flat_args(inner, "negated literal", reasons)
            negatives.append(inner)
            continue
        if lookup(indicator) is not None:
            reasons.append(f"builtin {goal.name}/{goal.arity}")
            continue
        _flat_args(goal, "body literal", reasons)
        positives.append(goal)
    # Range restriction: every head variable and every negated-literal
    # variable must be bound by some positive body literal.
    bound: Set[int] = set()
    for literal in positives:
        bound.update(id(v) for v in term_variables(literal))
    for literal in [head] + negatives:
        for var in term_variables(literal):
            if id(var) not in bound:
                where = "head" if literal is head else "negated literal"
                reasons.append(
                    f"not range-restricted: {where} variable {var.name} "
                    "unbound by any positive body literal"
                )
                break
    return ClauseInfo(clause, positives, negatives, reasons)


@dataclass
class StratumInfo:
    """One recursion component's bottom-up eligibility verdict."""

    #: The component's predicates, sorted.
    predicates: Tuple[Indicator, ...]
    #: Does the component call into itself (self- or mutual recursion)?
    recursive: bool
    #: May the semi-naive evaluator materialize it?
    eligible: bool
    #: Why not (empty when eligible); deduplicated, sorted.
    reasons: Tuple[str, ...]
    #: Ground facts / proper rules across the component's clauses.
    fact_count: int
    rule_count: int
    #: Does any clause negate a (lower-stratum) literal?
    uses_negation: bool


class Stratification:
    """All strata of a program, in callees-first evaluation order."""

    def __init__(self, strata: List[StratumInfo]):
        self.strata = strata
        self.by_predicate: Dict[Indicator, int] = {}
        for index, stratum in enumerate(strata):
            for indicator in stratum.predicates:
                self.by_predicate[indicator] = index

    def info(self, indicator: Indicator) -> Optional[StratumInfo]:
        """The stratum verdict covering ``indicator`` (None if unknown)."""
        index = self.by_predicate.get(indicator)
        return None if index is None else self.strata[index]

    def stratum_index(self, indicator: Indicator) -> Optional[int]:
        """Evaluation-order position of the stratum of ``indicator``."""
        return self.by_predicate.get(indicator)

    def eligible(self, indicator: Indicator) -> bool:
        """Is the predicate's stratum bottom-up eligible?"""
        info = self.info(indicator)
        return info is not None and info.eligible


def stratify(
    database: Database, callgraph: Optional[CallGraph] = None
) -> Stratification:
    """Classify every recursion component of ``database``.

    Components come back from Tarjan's algorithm callees-first, which
    is exactly the materialization order the bottom-up evaluator needs;
    eligibility propagates along it (a stratum depending on an
    ineligible one is ineligible), and negation into the component
    itself — the unstratifiable case — is refused explicitly.
    """
    graph = callgraph if callgraph is not None else CallGraph(database)
    components = strongly_connected_components(graph.callees)
    strata: List[StratumInfo] = []
    eligible_so_far: Set[Indicator] = set()
    for component in components:
        members = set(component)
        reasons: Set[str] = set()
        recursive = len(component) > 1
        fact_count = 0
        rule_count = 0
        uses_negation = False
        for indicator in component:
            callees = graph.callees.get(indicator, set())
            if not recursive and indicator in callees:
                recursive = True
            for clause in database.clauses(indicator):
                info = analyze_clause(clause)
                reasons.update(info.reasons)
                if info.is_fact:
                    fact_count += 1
                else:
                    rule_count += 1
                if info.negatives:
                    uses_negation = True
                for literal in info.negatives:
                    if functor_indicator(literal) in members:
                        reasons.add(
                            "negation inside its own recursion component "
                            "(unstratifiable)"
                        )
                for literal in info.positives + info.negatives:
                    target = functor_indicator(literal)
                    if target in members:
                        continue
                    if not database.defines(target):
                        reasons.add(
                            f"calls undefined predicate {target[0]}/{target[1]}"
                        )
                    elif target not in eligible_so_far:
                        reasons.add(
                            f"depends on ineligible stratum of {target[0]}/{target[1]}"
                        )
        eligible = not reasons
        if eligible:
            eligible_so_far.update(members)
        strata.append(
            StratumInfo(
                predicates=tuple(sorted(component)),
                recursive=recursive,
                eligible=eligible,
                reasons=tuple(sorted(reasons)),
                fact_count=fact_count,
                rule_count=rule_count,
                uses_negation=uses_negation,
            )
        )
    return Stratification(strata)
