"""Static analyses: call graph, recursion, fixity, semifixity, modes,
mode inference, and Warren-style domain estimation (paper §IV–§V)."""

from .builtin_modes import BUILTIN_TABLE, BuiltinModeEntry, BuiltinProfile, builtin_profile
from .calibration import CalibrationOptions, EmpiricalCalibrator
from .callgraph import CallGraph, iter_called_goals, iter_subgoal_indicators
from .declarations import CostDeclaration, Declarations, default_output_mode, parse_indicator
from .domains import DomainAnalysis
from .fixity import FixityAnalysis, side_effect_builtins
from .mode_inference import ModeInference, join_modes, structural_descent_positions
from .modes import (
    Inst,
    Mode,
    ModeItem,
    ModePair,
    all_input_modes,
    apply_output,
    argument_inst,
    bind_head_states,
    call_mode,
    item_accepts,
    mode_accepts,
    mode_from_term,
    mode_str,
    mode_to_term,
    parse_mode_string,
)
from .recursion import recursion_groups, recursive_predicates, strongly_connected_components
from .semifixity import SemifixityAnalysis
from .stratify import ClauseInfo, Stratification, StratumInfo, analyze_clause, stratify

__all__ = [
    "BUILTIN_TABLE",
    "BuiltinModeEntry",
    "BuiltinProfile",
    "CalibrationOptions",
    "CallGraph",
    "ClauseInfo",
    "EmpiricalCalibrator",
    "CostDeclaration",
    "Declarations",
    "DomainAnalysis",
    "FixityAnalysis",
    "Stratification",
    "StratumInfo",
    "Inst",
    "Mode",
    "ModeInference",
    "ModeItem",
    "ModePair",
    "SemifixityAnalysis",
    "all_input_modes",
    "analyze_clause",
    "apply_output",
    "argument_inst",
    "bind_head_states",
    "builtin_profile",
    "call_mode",
    "default_output_mode",
    "item_accepts",
    "iter_called_goals",
    "iter_subgoal_indicators",
    "join_modes",
    "mode_accepts",
    "mode_from_term",
    "mode_str",
    "mode_to_term",
    "parse_indicator",
    "parse_mode_string",
    "recursion_groups",
    "recursive_predicates",
    "side_effect_builtins",
    "stratify",
    "strongly_connected_components",
    "structural_descent_positions",
]
