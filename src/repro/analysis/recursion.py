"""Recursion detection (paper §IV-D-7).

"We can easily detect recursion automatically ... traverse the program
top-down, keeping a list of predicates being scanned, and check if each
new goal is a member of the list." We implement the equivalent (and more
efficient) strongly-connected-component computation with Tarjan's
algorithm, written iteratively so deep programs do not blow the Python
stack: a predicate is recursive iff it lies in an SCC of size > 1 or
calls itself directly.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .callgraph import CallGraph

__all__ = [
    "strongly_connected_components",
    "recursive_predicates",
    "recursion_groups",
    "affected_predicates",
]

Indicator = Tuple[str, int]


def strongly_connected_components(graph: Dict[Indicator, Set[Indicator]]) -> List[Set[Indicator]]:
    """Tarjan's SCC algorithm (iterative), in reverse topological order."""
    index_of: Dict[Indicator, int] = {}
    lowlink: Dict[Indicator, int] = {}
    on_stack: Set[Indicator] = set()
    stack: List[Indicator] = []
    components: List[Set[Indicator]] = []
    counter = [0]

    for root in graph:
        if root in index_of:
            continue
        # Each work item: (node, iterator over remaining successors).
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in graph:
                    continue  # builtin or undefined: not a graph node
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph.get(successor, ())))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: Set[Indicator] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def recursion_groups(callgraph: CallGraph) -> List[Set[Indicator]]:
    """SCCs that constitute (mutual) recursions."""
    components = strongly_connected_components(callgraph.callees)
    groups = []
    for component in components:
        if len(component) > 1:
            groups.append(component)
        else:
            (only,) = component
            if only in callgraph.callees.get(only, set()):
                groups.append(component)
    return groups


def recursive_predicates(callgraph: CallGraph) -> Set[Indicator]:
    """All predicates that participate in any recursion."""
    recursive: Set[Indicator] = set()
    for group in recursion_groups(callgraph):
        recursive.update(group)
    return recursive


def affected_predicates(
    callgraph: CallGraph, dirty: Set[Indicator]
) -> Set[Indicator]:
    """The invalidation closure of an edited predicate set.

    A change to one predicate can shift the reordering decisions of its
    whole strongly-connected component (mutual recursion evaluates as a
    unit) and, because version statistics propagate callees-first, of
    every transitive caller of that component. Predicates outside this
    closure keep byte-identical reorder output, so incremental
    consumers (the reorderer's AnalysisContext) may serve them from
    cache.
    """
    if not dirty:
        return set()
    component_of: Dict[Indicator, Set[Indicator]] = {}
    for component in strongly_connected_components(callgraph.callees):
        for indicator in component:
            component_of[indicator] = component
    affected: Set[Indicator] = set()
    queue: List[Indicator] = list(dirty)
    while queue:
        indicator = queue.pop()
        members = component_of.get(indicator, {indicator})
        for member in members:
            if member in affected:
                continue
            affected.add(member)
            queue.extend(
                caller
                for caller in callgraph.callers.get(member, ())
                if caller not in affected
            )
    return affected
