"""The legal-mode system (paper §V).

A *mode* is a tuple of mode items, one per argument:

* ``+`` — the argument is instantiated (ground, in our conservative
  abstraction);
* ``-`` — the argument is an uninstantiated variable;
* ``?`` — either, or a partly-instantiated structure.

Following §V-C, predicates carry *legal mode pairs*: an input mode in
which the predicate may safely be called, and the output mode it leaves
behind on success ("at least as instantiated as its input mode").

The module also defines the abstract instantiation lattice used by the
legality checker and the mode-inference analysis::

        ANY            ('?': unknown / partial)
       /   \\
    FREE   GROUND      ('-')    ('+')

and the translation between argument terms, variable states, and mode
items. The key asymmetry (paper's ``build/4`` example, §V-D): a ``+``
*demand* is satisfied only by GROUND, never by ANY — "we must forego
the first rather than risk the second".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import DeclarationError
from ..prolog.terms import Atom, Struct, Term, Var, deref, is_number, term_variables

__all__ = [
    "ModeItem",
    "Mode",
    "ModePair",
    "Inst",
    "VarState",
    "mode_from_term",
    "mode_to_term",
    "mode_str",
    "parse_mode_string",
    "all_input_modes",
    "item_accepts",
    "mode_accepts",
    "item_to_inst",
    "inst_to_item",
    "join_inst",
    "argument_inst",
    "call_mode",
    "apply_output",
    "bind_head_states",
]


class ModeItem(Enum):
    """One argument's mode: ``+`` (instantiated), ``-`` (free), ``?``."""

    PLUS = "+"
    MINUS = "-"
    ANY = "?"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def from_symbol(cls, symbol: str) -> "ModeItem":
        for item in cls:
            if item.value == symbol:
                return item
        raise DeclarationError(f"unknown mode symbol: {symbol!r}")


Mode = Tuple[ModeItem, ...]


@dataclass(frozen=True)
class ModePair:
    """A legal (input, output) mode pair for a predicate."""

    input: Mode
    output: Mode

    def __post_init__(self):
        if len(self.input) != len(self.output):
            raise DeclarationError("mode pair arity mismatch")
        for item_in, item_out in zip(self.input, self.output):
            if item_in is ModeItem.PLUS and item_out is not ModeItem.PLUS:
                raise DeclarationError(
                    "output mode must be at least as instantiated as input"
                )

    def __str__(self) -> str:
        return f"{mode_str(self.input)} -> {mode_str(self.output)}"

    @property
    def arity(self) -> int:
        return len(self.input)


class Inst(Enum):
    """Abstract instantiation state of a variable or argument."""

    FREE = "free"
    GROUND = "ground"
    ANY = "any"


#: Mutable mapping from variable identity to abstract state.
VarState = Dict[int, Inst]


def join_inst(left: Inst, right: Inst) -> Inst:
    """Least upper bound in the FREE/GROUND/ANY lattice."""
    if left is right:
        return left
    return Inst.ANY


def item_to_inst(item: ModeItem) -> Inst:
    """The abstract state a mode item denotes."""
    return {
        ModeItem.PLUS: Inst.GROUND,
        ModeItem.MINUS: Inst.FREE,
        ModeItem.ANY: Inst.ANY,
    }[item]


def inst_to_item(inst: Inst) -> ModeItem:
    """The mode item describing an abstract state."""
    return {
        Inst.GROUND: ModeItem.PLUS,
        Inst.FREE: ModeItem.MINUS,
        Inst.ANY: ModeItem.ANY,
    }[inst]


def item_accepts(required: ModeItem, actual: ModeItem) -> bool:
    """Does an argument in state ``actual`` satisfy the demand ``required``?

    ``+`` demands GROUND; ``-`` demands FREE; ``?`` accepts anything.
    ANY satisfies neither ``+`` nor ``-`` (conservative, per §V-D).
    """
    if required is ModeItem.ANY:
        return True
    return required is actual


def mode_accepts(required: Mode, actual: Mode) -> bool:
    """Pointwise :func:`item_accepts` over whole modes."""
    if len(required) != len(actual):
        return False
    return all(item_accepts(r, a) for r, a in zip(required, actual))


def mode_str(mode: Mode) -> str:
    """Render e.g. ``(+, -, ?)``; ``()`` for arity 0."""
    return "(" + ", ".join(str(item) for item in mode) + ")"


def parse_mode_string(text: str) -> Mode:
    """Parse ``(+, -)`` / ``+-`` / ``ui`` style mode spellings.

    Accepts the paper's terminal-letter convention too: ``u`` for
    uninstantiated (``-``) and ``i`` for instantiated (``+``).
    """
    cleaned = text.strip().strip("()").replace(",", "").replace(" ", "")
    items = []
    for char in cleaned:
        if char in "+i":
            items.append(ModeItem.PLUS)
        elif char in "-u":
            items.append(ModeItem.MINUS)
        elif char == "?":
            items.append(ModeItem.ANY)
        else:
            raise DeclarationError(f"bad mode character {char!r} in {text!r}")
    return tuple(items)


def mode_from_term(term: Term) -> Mode:
    """Extract a mode from a term like ``f(+, -, ?)`` or a list ``[+, -]``."""
    term = deref(term)
    if isinstance(term, Atom):
        if term.name == "[]":
            return ()
        raise DeclarationError(f"cannot read mode from atom {term.name!r}")
    if not isinstance(term, Struct):
        raise DeclarationError(f"cannot read mode from {term!r}")
    if term.name == "." and term.arity == 2:
        from ..prolog.terms import list_to_python

        elements = list_to_python(term)
    else:
        elements = list(term.args)
    items = []
    for element in elements:
        element = deref(element)
        if not isinstance(element, Atom):
            raise DeclarationError(f"mode item must be an atom: {element!r}")
        items.append(ModeItem.from_symbol(element.name))
    return tuple(items)


def mode_to_term(name: str, mode: Mode) -> Term:
    """Build the term ``name(+, -, ...)`` for a mode (an atom if arity 0)."""
    if not mode:
        return Atom(name)
    return Struct(name, tuple(Atom(item.value) for item in mode))


def all_input_modes(arity: int) -> Iterator[Mode]:
    """Every {+, -} input mode of the given arity (2^arity of them)."""
    for combo in itertools.product((ModeItem.PLUS, ModeItem.MINUS), repeat=arity):
        yield combo


# -- argument/variable state translation ------------------------------------


def argument_inst(term: Term, states: VarState) -> Inst:
    """Abstract state of an argument term under variable states."""
    term = deref(term)
    if isinstance(term, Var):
        return states.get(id(term), Inst.FREE)
    if isinstance(term, Atom) or is_number(term):
        return Inst.GROUND
    assert isinstance(term, Struct)
    variables = term_variables(term)
    if not variables:
        return Inst.GROUND
    if all(states.get(id(v), Inst.FREE) is Inst.GROUND for v in variables):
        return Inst.GROUND
    return Inst.ANY  # partly instantiated structure


def call_mode(goal: Term, states: VarState) -> Mode:
    """The mode in which ``goal`` would be called given variable states."""
    goal = deref(goal)
    if isinstance(goal, Atom):
        return ()
    assert isinstance(goal, Struct)
    return tuple(inst_to_item(argument_inst(arg, states)) for arg in goal.args)


def _set_ground(term: Term, states: VarState) -> None:
    for variable in term_variables(term):
        states[id(variable)] = Inst.GROUND


def _raise_to_any(term: Term, states: VarState) -> None:
    for variable in term_variables(term):
        if states.get(id(variable), Inst.FREE) is Inst.FREE:
            states[id(variable)] = Inst.ANY


def apply_output(goal: Term, output: Mode, states: VarState) -> None:
    """Update variable states after ``goal`` succeeds with ``output`` mode."""
    goal = deref(goal)
    if isinstance(goal, Atom):
        return
    assert isinstance(goal, Struct)
    if len(output) != goal.arity:
        raise DeclarationError(
            f"output mode arity {len(output)} does not match goal {goal.name}/{goal.arity}"
        )
    for arg, item in zip(goal.args, output):
        if item is ModeItem.PLUS:
            _set_ground(arg, states)
        elif item is ModeItem.ANY:
            _raise_to_any(arg, states)
        # '-' leaves the argument untouched.


def bind_head_states(head: Term, input_mode: Mode, states: VarState) -> None:
    """Initialise variable states from the head and an input mode.

    A ``+`` argument grounds every variable in that head position; a
    ``-`` argument leaves a bare variable free (a structured head
    position called with ``-`` leaves its variables free too — the
    caller's variable gets the structure, not vice versa); ``?`` makes
    the position's variables ANY. Variables appearing in several
    positions take the most instantiated state.
    """
    head = deref(head)
    if isinstance(head, Atom):
        return
    assert isinstance(head, Struct)
    if len(input_mode) != head.arity:
        raise DeclarationError(
            f"mode arity {len(input_mode)} does not match head {head.name}/{head.arity}"
        )
    for arg, item in zip(head.args, input_mode):
        if item is ModeItem.PLUS:
            _set_ground(arg, states)
    for arg, item in zip(head.args, input_mode):
        if item is ModeItem.ANY:
            _raise_to_any(arg, states)
    # '-' positions: leave any not-yet-seen variables implicitly FREE.
