"""Semifixity analysis (paper §IV-C).

A *semifixed* predicate returns very different results in different
modes — ``var/1`` is the canonical example; a predicate whose clause
selection is controlled by a cut plus an instantiation test is the user
level one. Reordering must preserve the instantiation state of the
*culprit variables*: the variables occupying the culprit argument
positions of a semifixed goal.

We compute, for each predicate, the set of culprit argument positions
(1-based). For builtins this comes from the registry's ``semifixed``
flag (all positions are culprits). For user predicates, culpritness
propagates: if a clause body calls a semifixed goal whose culprit
variable also appears in the clause head at position *i*, then the
predicate is semifixed in position *i* ("semifixity propagates to
ancestors if a culprit variable also appears in the head of a clause").

A predicate guarded by cuts whose clause choice depends on head
instantiation (the paper's ``a(X, Y, b) :- !.`` example) is also
semifixed; we detect the syntactic pattern: a clause with a cut whose
head has a non-variable argument in some position makes that position a
culprit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..prolog.builtins import BUILTINS
from ..prolog.database import Database, body_goals
from ..prolog.terms import (
    Atom,
    Struct,
    Term,
    Var,
    deref,
    functor_indicator,
    term_variables,
)
from .callgraph import CallGraph, iter_called_goals

__all__ = ["SemifixityAnalysis"]

Indicator = Tuple[str, int]


def _builtin_culprits() -> Dict[Indicator, Set[int]]:
    culprits: Dict[Indicator, Set[int]] = {}
    for indicator, registered in BUILTINS.items():
        if registered.semifixed:
            culprits[indicator] = set(range(1, indicator[1] + 1))
    return culprits


def _semifix_goals(body: Term):
    """Goals of a body for culprit collection.

    Unlike :func:`~repro.analysis.callgraph.iter_called_goals`, this
    yields negation / meta-call / set-predicate goals *whole* — their
    semifixity flag lives on the wrapper, and its culprit variables are
    the variables of the wrapped goal — while still descending into
    plain conjunction/disjunction/if-then-else structure.
    """
    stack = [body]
    while stack:
        goal = deref(stack.pop())
        if isinstance(goal, Struct) and goal.arity == 2 and goal.name in (",", ";", "->"):
            stack.append(goal.args[1])
            stack.append(goal.args[0])
            continue
        if isinstance(goal, (Atom, Struct)):
            yield goal


def _has_cut(body: Term) -> bool:
    for goal in body_goals(body):
        goal = deref(goal)
        if isinstance(goal, Atom) and goal.name == "!":
            return True
    return False


class SemifixityAnalysis:
    """Culprit argument positions per predicate.

    Declared legal modes *release* culprit positions: when every
    declared input mode demands the same instantiation at a position
    (e.g. ``:- legal_mode(unequal(+, +))``), the legality checker
    already guarantees reordering cannot change that position's state,
    so no semifixity constraint is needed — this is how annotations buy
    reordering freedom (§V-A).
    """

    def __init__(
        self,
        database: Database,
        callgraph: Optional[CallGraph] = None,
        declarations=None,
    ):
        self.database = database
        self.callgraph = callgraph or CallGraph(database)
        self.declarations = declarations
        self._pins = self._declared_pins()
        self.culprits: Dict[Indicator, Set[int]] = {}
        for indicator, positions in _builtin_culprits().items():
            effective = positions - self._pins.get(indicator, set())
            if effective:
                self.culprits[indicator] = effective
        self._add_cut_guarded()
        self._propagate()

    def _declared_pins(self) -> Dict[Indicator, Set[int]]:
        """Positions whose instantiation is fixed by declared legal modes."""
        if self.declarations is None:
            return {}
        from .modes import ModeItem

        pins: Dict[Indicator, Set[int]] = {}
        for indicator, pairs in self.declarations.legal_modes.items():
            if not pairs:
                continue
            pinned = {
                position
                for position in range(1, indicator[1] + 1)
                if len({pair.input[position - 1] for pair in pairs}) == 1
                and pairs[0].input[position - 1] is not ModeItem.ANY
            }
            if pinned:
                pins[indicator] = pinned
        return pins

    # -- seeds ---------------------------------------------------------------

    def _add_cut_guarded(self) -> None:
        """Mark cut-guarded, head-discriminated predicates (§IV-C example)."""
        for indicator in self.database.predicates():
            clauses = self.database.clauses(indicator)
            if len(clauses) < 2:
                continue  # one clause: the cut cannot change selection
            positions: Set[int] = set()
            for clause in clauses:
                if not _has_cut(clause.body):
                    continue
                head = deref(clause.head)
                if not isinstance(head, Struct):
                    continue
                for index, arg in enumerate(head.args, start=1):
                    if not isinstance(deref(arg), Var):
                        positions.add(index)
            positions -= self._pins.get(indicator, set())
            if positions:
                self.culprits.setdefault(indicator, set()).update(positions)

    # -- propagation -----------------------------------------------------------

    def _propagate(self) -> None:
        changed = True
        while changed:
            changed = False
            for indicator in self.database.predicates():
                for clause in self.database.clauses(indicator):
                    new_positions = self._clause_culprit_positions(clause)
                    new_positions -= self._pins.get(indicator, set())
                    if not new_positions:
                        continue
                    existing = self.culprits.setdefault(indicator, set())
                    if not new_positions <= existing:
                        existing.update(new_positions)
                        changed = True

    def _clause_culprit_positions(self, clause) -> Set[int]:
        head = deref(clause.head)
        if not isinstance(head, Struct):
            return set()
        culprit_vars = {
            id(v) for goal in _semifix_goals(clause.body)
            for v in self.culprit_variables(goal)
        }
        if not culprit_vars:
            return set()
        positions: Set[int] = set()
        for index, arg in enumerate(head.args, start=1):
            if any(id(v) in culprit_vars for v in term_variables(arg)):
                positions.add(index)
        return positions

    # -- queries ---------------------------------------------------------------

    def positions(self, indicator: Indicator) -> Set[int]:
        """Culprit argument positions of a predicate (empty if none)."""
        return set(self.culprits.get(indicator, ()))

    def is_semifixed(self, indicator: Indicator) -> bool:
        """Does the predicate have any culprit positions?"""
        return bool(self.culprits.get(indicator))

    def culprit_variables(self, goal: Term) -> List[Var]:
        """The variables in culprit positions of this goal."""
        goal = deref(goal)
        if not isinstance(goal, (Atom, Struct)):
            return []
        indicator = functor_indicator(goal)
        positions = self.culprits.get(indicator)
        if not positions or isinstance(goal, Atom):
            return []
        variables: List[Var] = []
        seen: Set[int] = set()
        for index in sorted(positions):
            if index <= goal.arity:
                for variable in term_variables(goal.args[index - 1]):
                    if id(variable) not in seen:
                        seen.add(id(variable))
                        variables.append(variable)
        return variables
