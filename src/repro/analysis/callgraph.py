"""Call-graph construction (paper §IV-B: the top-down scan).

:func:`iter_called_goals` walks a clause body and yields every goal it
can call, looking through the control constructs (conjunction,
disjunction, if-then-else, negation, the set predicates' goal
arguments, ``call/1``, ``once/1``, ``forall/2``). :class:`CallGraph`
aggregates this per predicate and derives callers, callees, and entry
points (predicates no other predicate calls).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..prolog.database import Database
from ..prolog.terms import Atom, Struct, Term, Var, deref, functor_indicator

__all__ = ["iter_called_goals", "iter_subgoal_indicators", "CallGraph"]

Indicator = Tuple[str, int]

#: Control constructs whose arguments are all goals.
_TRANSPARENT = {
    (",", 2): (0, 1),
    (";", 2): (0, 1),
    ("->", 2): (0, 1),
    ("\\+", 1): (0,),
    ("not", 1): (0,),
    ("call", 1): (0,),
    ("once", 1): (0,),
    ("forall", 2): (0, 1),
}

#: Builtins with goals in specific argument positions (yielded whole,
#: then descended into).
_GOAL_ARGUMENT = {
    ("findall", 3): (1,),
    ("bagof", 3): (1,),
    ("setof", 3): (1,),
    ("catch", 3): (0, 2),
}


def _strip_carets(term: Term) -> Term:
    term = deref(term)
    while isinstance(term, Struct) and term.name == "^" and term.arity == 2:
        term = deref(term.args[1])
    return term


def iter_called_goals(body: Term) -> Iterator[Term]:
    """Yield the callable goals reachable in a clause body.

    Control constructs are traversed, not yielded; ``!``/``true``/
    ``fail`` are skipped; variable goals are skipped (the paper forbids
    them, §I-C, and the engine raises on them at run time).
    """
    stack = [body]
    while stack:
        goal = deref(stack.pop())
        if isinstance(goal, Var):
            continue
        if isinstance(goal, Atom):
            if goal.name not in ("!", "true", "fail", "false"):
                yield goal
            continue
        if not isinstance(goal, Struct):
            continue
        indicator = goal.indicator
        positions = _TRANSPARENT.get(indicator)
        if positions is not None:
            for position in reversed(positions):
                stack.append(goal.args[position])
            continue
        goal_positions = _GOAL_ARGUMENT.get(indicator)
        if goal_positions is not None:
            yield goal
            for goal_position in reversed(goal_positions):
                stack.append(_strip_carets(goal.args[goal_position]))
            continue
        yield goal


def iter_subgoal_indicators(body: Term) -> Iterator[Indicator]:
    """Indicators of every goal :func:`iter_called_goals` finds."""
    for goal in iter_called_goals(body):
        yield functor_indicator(goal)


class CallGraph:
    """Who-calls-whom over the user predicates of a database."""

    def __init__(self, database: Database):
        self.database = database
        self.callees: Dict[Indicator, Set[Indicator]] = {}
        self.callers: Dict[Indicator, Set[Indicator]] = {}
        for indicator in database.predicates():
            self.callees.setdefault(indicator, set())
            for clause in database.clauses(indicator):
                for callee in iter_subgoal_indicators(clause.body):
                    self.callees[indicator].add(callee)
                    self.callers.setdefault(callee, set()).add(indicator)

    def predicates(self) -> List[Indicator]:
        """All user predicates appearing as callers."""
        return list(self.callees)

    def calls(self, caller: Indicator) -> Set[Indicator]:
        """Direct callees of a predicate (builtins included)."""
        return set(self.callees.get(caller, ()))

    def called_by(self, callee: Indicator) -> Set[Indicator]:
        """Direct callers of a predicate."""
        return set(self.callers.get(callee, ()))

    def entry_points(self, declared: Optional[List[Indicator]] = None) -> List[Indicator]:
        """Predicates not called by any user predicate (§IV-B), plus any
        declared entries, in definition order without duplicates."""
        result: List[Indicator] = []
        seen: Set[Indicator] = set()
        for indicator in declared or ():
            if indicator not in seen:
                seen.add(indicator)
                result.append(indicator)
        for indicator in self.callees:
            callers = self.callers.get(indicator, set()) - {indicator}
            if not callers and indicator not in seen:
                seen.add(indicator)
                result.append(indicator)
        return result

    def reachable_from(self, roots: List[Indicator]) -> Set[Indicator]:
        """User predicates reachable from the given roots (roots included)."""
        seen: Set[Indicator] = set()
        stack = [root for root in roots if root in self.callees]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for callee in self.callees.get(current, ()):
                if callee in self.callees and callee not in seen:
                    stack.append(callee)
        return seen
