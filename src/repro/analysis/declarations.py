"""Programmer declarations feeding the reordering system (paper Fig. 3
and §VI-B-2).

The reorderer reads these from ``:- ...`` directives in the program
source:

* ``:- entry(name/arity).`` — a top-level predicate (queries start here).
* ``:- legal_mode(pred(+, -), pred(+, +)).`` — a legal input/output mode
  pair. The one-argument form ``:- legal_mode(pred(+, -)).`` (and the
  classic DEC-10 ``:- mode(pred(+, -)).``) defaults the output mode to
  the input with every ``-`` promoted to ``+`` — "the predicate grounds
  what it is asked to compute", which holds for all database-style
  predicates; declare the pair explicitly when it does not.
* ``:- recursive(name/arity).`` — declare a predicate recursive (also
  detected automatically; the declaration additionally marks the
  predicate as one whose clause bodies must not be reordered unless its
  legal modes are declared).
* ``:- fixed(name/arity).`` — force fixity (side-effects the analysis
  cannot see).
* ``:- cost(name/arity, [+, -], Cost, Prob).`` — expected cost and
  success probability for calls in the given mode (needed for recursive
  predicates, §VI-B-2).
* ``:- match_prob(name/arity, Prob).`` — probability that a call
  unifies with a (non-variable) clause head of this predicate.
* ``:- domain_size(name/arity, ArgIndex, N).`` — Warren-style domain
  size of an argument position.

Names accept ``name/arity`` terms; mode tuples accept both ``f(+, -)``
terms and ``[+, -]`` lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import DeclarationError
from ..prolog.database import Database
from ..prolog.terms import Atom, Struct, Term, deref, functor_indicator
from .modes import Mode, ModeItem, ModePair, mode_from_term

__all__ = ["CostDeclaration", "Declarations", "parse_indicator", "default_output_mode"]

Indicator = Tuple[str, int]


@dataclass(frozen=True)
class CostDeclaration:
    """Declared cost/probability of a predicate in one input mode."""

    indicator: Indicator
    mode: Mode
    cost: float
    prob: float
    #: Expected solutions; None defaults to ``prob`` (at most one answer).
    solutions: Optional[float] = None

    @property
    def expected_solutions(self) -> float:
        return self.prob if self.solutions is None else self.solutions


def parse_indicator(term: Term) -> Indicator:
    """Read a ``name/arity`` term."""
    term = deref(term)
    if (
        isinstance(term, Struct)
        and term.name == "/"
        and term.arity == 2
    ):
        name = deref(term.args[0])
        arity = deref(term.args[1])
        if isinstance(name, Atom) and isinstance(arity, int):
            return (name.name, arity)
    raise DeclarationError(f"expected name/arity, got {term!r}")


def default_output_mode(input_mode: Mode) -> Mode:
    """Input with every ``-`` promoted to ``+`` (see module docstring)."""
    return tuple(
        ModeItem.PLUS if item is ModeItem.MINUS else item for item in input_mode
    )


class Declarations:
    """All directive-supplied information for one program."""

    def __init__(self) -> None:
        self.entries: List[Indicator] = []
        self.legal_modes: Dict[Indicator, List[ModePair]] = {}
        self.recursive: Set[Indicator] = set()
        self.fixed: Set[Indicator] = set()
        self.costs: Dict[Tuple[Indicator, Mode], CostDeclaration] = {}
        self.match_probs: Dict[Indicator, float] = {}
        self.domain_sizes: Dict[Tuple[Indicator, int], int] = {}
        #: Predicates declared ``:- table name/arity`` (the engine keeps
        #: its own copy on the Database; this one feeds the cost model).
        self.tabled: Set[Indicator] = set()
        #: Directives we did not understand (reported, not fatal).
        self.unknown: List[Term] = []

    # -- construction ------------------------------------------------------

    @classmethod
    def from_database(cls, database: Database) -> "Declarations":
        """Collect declarations from a database's directives."""
        declarations = cls()
        for directive in database.directives:
            declarations.add_directive(directive)
        declarations.validate(database)
        return declarations

    def add_directive(self, directive: Term) -> None:
        """Record one directive term (unknown ones are collected)."""
        directive = deref(directive)
        indicator = functor_indicator(directive)
        handler = {
            ("entry", 1): self._on_entry,
            ("legal_mode", 1): self._on_legal_mode1,
            ("legal_mode", 2): self._on_legal_mode2,
            ("mode", 1): self._on_legal_mode1,
            ("recursive", 1): self._on_recursive,
            ("fixed", 1): self._on_fixed,
            ("cost", 4): self._on_cost,
            ("cost", 5): self._on_cost,
            ("match_prob", 2): self._on_match_prob,
            ("domain_size", 3): self._on_domain_size,
            ("table", 1): self._on_table,
            ("op", 3): self._on_noop,
            ("dynamic", 1): self._on_noop,
            ("discontiguous", 1): self._on_noop,
            ("multifile", 1): self._on_noop,
        }.get(indicator)
        if handler is None:
            self.unknown.append(directive)
            return
        handler(directive.args if isinstance(directive, Struct) else ())

    # -- handlers ------------------------------------------------------------

    def _on_entry(self, args) -> None:
        self.entries.append(parse_indicator(args[0]))

    @staticmethod
    def _mode_spec(term: Term) -> Tuple[Indicator, Mode]:
        term = deref(term)
        if isinstance(term, Atom):
            return (term.name, 0), ()
        if not isinstance(term, Struct):
            raise DeclarationError(f"bad mode specification: {term!r}")
        return (term.name, term.arity), mode_from_term(term)

    def _on_legal_mode1(self, args) -> None:
        indicator, input_mode = self._mode_spec(args[0])
        pair = ModePair(input_mode, default_output_mode(input_mode))
        self.legal_modes.setdefault(indicator, []).append(pair)

    def _on_legal_mode2(self, args) -> None:
        in_indicator, input_mode = self._mode_spec(args[0])
        out_indicator, output_mode = self._mode_spec(args[1])
        if in_indicator != out_indicator:
            raise DeclarationError(
                f"legal_mode pair mixes predicates: {in_indicator} vs {out_indicator}"
            )
        pair = ModePair(input_mode, output_mode)
        self.legal_modes.setdefault(in_indicator, []).append(pair)

    def _on_recursive(self, args) -> None:
        self.recursive.add(parse_indicator(args[0]))

    def _on_fixed(self, args) -> None:
        self.fixed.add(parse_indicator(args[0]))

    def _on_table(self, args) -> None:
        stack = [args[0]]
        while stack:
            spec = deref(stack.pop())
            if (
                isinstance(spec, Struct)
                and spec.name in (",", ".")
                and spec.arity == 2
            ):
                stack.append(spec.args[1])
                stack.append(spec.args[0])
                continue
            if isinstance(spec, Atom) and spec.name == "[]":
                continue
            self.tabled.add(parse_indicator(spec))

    def _on_noop(self, args) -> None:
        # Understood but irrelevant to the cost model (op/3 is applied
        # by the reader; dynamic/discontiguous/multifile are accepted
        # for compatibility).
        pass

    def _on_cost(self, args) -> None:
        indicator = parse_indicator(args[0])
        mode = mode_from_term(args[1])
        cost = self._number(args[2], "cost")
        prob = self._number(args[3], "probability")
        solutions = self._number(args[4], "solutions") if len(args) > 4 else None
        if not 0.0 <= prob <= 1.0:
            raise DeclarationError(f"probability out of range: {prob}")
        if len(mode) != indicator[1]:
            raise DeclarationError(
                f"cost mode arity mismatch for {indicator[0]}/{indicator[1]}"
            )
        self.costs[(indicator, mode)] = CostDeclaration(
            indicator, mode, cost, prob, solutions
        )

    def _on_match_prob(self, args) -> None:
        indicator = parse_indicator(args[0])
        prob = self._number(args[1], "probability")
        if not 0.0 <= prob <= 1.0:
            raise DeclarationError(f"probability out of range: {prob}")
        self.match_probs[indicator] = prob

    def _on_domain_size(self, args) -> None:
        indicator = parse_indicator(args[0])
        position = deref(args[1])
        size = deref(args[2])
        if not isinstance(position, int) or not isinstance(size, int):
            raise DeclarationError("domain_size expects integer position and size")
        if not 1 <= position <= indicator[1]:
            raise DeclarationError(
                f"domain_size position {position} out of range for "
                f"{indicator[0]}/{indicator[1]}"
            )
        self.domain_sizes[(indicator, position)] = size

    @staticmethod
    def _number(term: Term, what: str) -> float:
        term = deref(term)
        if isinstance(term, (int, float)) and not isinstance(term, bool):
            return float(term)
        raise DeclarationError(f"expected a number for {what}, got {term!r}")

    # -- validation & lookup -------------------------------------------------------

    def validate(self, database: Database) -> None:
        """Check declared predicates exist and mode arities line up."""
        for indicator, pairs in self.legal_modes.items():
            for pair in pairs:
                if pair.arity != indicator[1]:
                    raise DeclarationError(
                        f"legal_mode arity mismatch for "
                        f"{indicator[0]}/{indicator[1]}: {pair}"
                    )
        from ..prolog.builtins import is_builtin

        for indicator in self.entries:
            if not database.defines(indicator) and not is_builtin(indicator):
                raise DeclarationError(
                    f"entry {indicator[0]}/{indicator[1]} is not defined"
                )

    def declared_pairs(self, indicator: Indicator) -> List[ModePair]:
        """Declared legal mode pairs of a predicate (maybe empty)."""
        return list(self.legal_modes.get(indicator, ()))

    def cost_for(self, indicator: Indicator, mode: Mode) -> Optional[CostDeclaration]:
        """The cost declaration matching a call mode.

        Exact declared mode first; otherwise the first declaration whose
        mode (which may contain ``?``) accepts the actual mode.
        """
        from .modes import mode_accepts

        exact = self.costs.get((indicator, mode))
        if exact is not None:
            return exact
        for (declared_indicator, declared_mode), declaration in self.costs.items():
            if declared_indicator == indicator and mode_accepts(declared_mode, mode):
                return declaration
        return None
