"""The paper's worked figures, regenerated exactly.

* Fig. 1 — reordering a predicate's clauses: p = (.7, .8, .5, .9),
  c = (100, 80, 100, 40); expected single-solution cost 130.24 before,
  49.64 after ordering by decreasing p/c.
* Fig. 2 — reordering a clause's goals: q = (.8, .1, .3, .6),
  c = (70, 100, 100, 60); expected failure cost 98.928 before, 78.968
  after ordering by decreasing q/c.
* Figs. 4–5 — the Markov chains of ``k :- a, b, c, d``: the transition
  matrices in the paper's state layout and the derived quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..markov.chain import (
    all_solutions_analysis,
    all_solutions_matrix,
    single_solution_analysis,
    single_solution_matrix,
)
from ..markov.formulas import (
    expected_cost_until_failure,
    expected_cost_until_success,
    order_by_failure_ratio,
    order_by_success_ratio,
)

__all__ = ["Figure1Result", "Figure2Result", "figure1", "figure2", "figures_4_5"]

#: Fig. 1 inputs (clauses): success probabilities and costs.
FIG1_PROBS = (0.7, 0.8, 0.5, 0.9)
FIG1_COSTS = (100.0, 80.0, 100.0, 40.0)

#: Fig. 2 inputs (goals): failure probabilities and costs.
FIG2_FAIL_PROBS = (0.8, 0.1, 0.3, 0.6)
FIG2_COSTS = (70.0, 100.0, 100.0, 60.0)


@dataclass
class Figure1Result:
    original_cost: float        # paper: 130.24
    reordered_cost: float       # paper: 49.64
    order: List[int]            # clause indices, best first

    def format(self) -> str:
        """Human-readable summary with the paper's reference values."""
        return (
            "Figure 1 - reordering a predicate (expected single-solution cost)\n"
            f"  original order : {self.original_cost:.2f}   (paper: 130.24)\n"
            f"  p/c order {self.order}: {self.reordered_cost:.2f}   (paper: 49.64)"
        )


@dataclass
class Figure2Result:
    original_cost: float        # paper: 98.928
    reordered_cost: float       # paper: 78.968
    order: List[int]            # goal indices, best first

    def format(self) -> str:
        """Human-readable summary with the paper's reference values."""
        return (
            "Figure 2 - reordering a clause (expected cost of a failure)\n"
            f"  original order : {self.original_cost:.3f}   (paper: 98.928)\n"
            f"  q/c order {self.order}: {self.reordered_cost:.3f}   (paper: 78.968)"
        )


def figure1() -> Figure1Result:
    """Reproduce Fig. 1's 130.24 → 49.64 clause-reordering example."""
    order = order_by_success_ratio(FIG1_PROBS, FIG1_COSTS)
    return Figure1Result(
        original_cost=expected_cost_until_success(FIG1_PROBS, FIG1_COSTS),
        reordered_cost=expected_cost_until_success(
            [FIG1_PROBS[i] for i in order], [FIG1_COSTS[i] for i in order]
        ),
        order=order,
    )


def figure2() -> Figure2Result:
    """Reproduce Fig. 2's 98.928 → 78.968 goal-reordering example."""
    order = order_by_failure_ratio(FIG2_FAIL_PROBS, FIG2_COSTS)
    return Figure2Result(
        original_cost=expected_cost_until_failure(FIG2_FAIL_PROBS, FIG2_COSTS),
        reordered_cost=expected_cost_until_failure(
            [FIG2_FAIL_PROBS[i] for i in order], [FIG2_COSTS[i] for i in order]
        ),
        order=order,
    )


def figures_4_5(
    probs: Tuple[float, ...] = (0.9, 0.6, 0.7, 0.8),
    costs: Tuple[float, ...] = (5.0, 3.0, 4.0, 2.0),
) -> Dict[str, object]:
    """The Fig. 4/Fig. 5 chains of ``k :- a, b, c, d`` for concrete
    probabilities: the transition matrices (paper state layout) and the
    derived visit counts / costs from ``N = (I − Q)^{-1}``."""
    single = single_solution_analysis(probs, costs)
    multiple = all_solutions_analysis(probs, costs)
    return {
        "single_matrix": single_solution_matrix(probs),
        "all_matrix": all_solutions_matrix(probs),
        "p_body": single.p_success,
        "single_visits": single.visits,
        "c_single": single.expected_cost,
        "all_visits": multiple.visits,
        "v_success": multiple.success_visits,
        "c_multiple": multiple.cost_per_solution,
    }
