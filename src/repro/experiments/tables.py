"""Regenerating the paper's Tables I–IV.

Each ``tableN`` function runs the full pipeline — build the program,
analyse, reorder, execute original and reordered versions, count
predicate calls — and returns a :class:`~repro.experiments.harness.Table`
whose rows mirror the paper's rows. Expected shapes are recorded in
EXPERIMENTS.md; the benchmark suite asserts them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.callgraph import CallGraph
from ..analysis.declarations import Declarations
from ..analysis.fixity import FixityAnalysis
from ..analysis.mode_inference import ModeInference
from ..analysis.modes import parse_mode_string
from ..analysis.recursion import recursive_predicates
from ..analysis.semifixity import SemifixityAnalysis
from ..prolog.database import Database
from ..prolog.engine import Engine
from ..reorder.restrictions import partition_body
from ..reorder.system import ReorderedProgram, Reorderer
from ..programs import corporate, family_tree, kmbench, meal, p58, team
from .harness import Row, Table, count_calls, label_to_mode, mode_queries

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "reorder_program",
    "compare_labelled_queries",
]


def reorder_program(database: Database, **options) -> ReorderedProgram:
    """Reorder a database with default options (convenience wrapper)."""
    from ..reorder.system import ReorderOptions

    return Reorderer(database, ReorderOptions(**options)).reorder()


# -- Table I -----------------------------------------------------------------

_TABLE1_PROBE = """
:- entry(top/0).
top :- logger(x), looper(L), chooser(a, R), tester(V), builder(T).

logger(X) :- write(X), nl.                     % fixity
looper([]).                                    % recursion
looper([_ | T]) :- looper(T).
chooser(X, R) :- ( X = a -> R = left ; R = right ).   % implication
either(X) :- ( one(X) ; two(X) ).              % disjunction
one(1).  two(2).
tester(V) :- var(V).                           % semifixity
builder(T) :- functor(T, f, 2).                % mode demand
cutter(X) :- gen(X), test(X), !, use(X).       % the cut
gen(1). gen(2).  test(2).  use(_).
"""


def table1() -> Table:
    """Table I — detected restrictions on reordering, per construct.

    Qualitative: for each of the paper's seven restriction classes the
    row reports what our analyses detected on a probe program that
    exercises it. 'reordered'=1 / 'original'=1 keep the Row shape; the
    finding lives in the label.
    """
    database = Database.from_source(_TABLE1_PROBE)
    declarations = Declarations.from_database(database)
    callgraph = CallGraph(database)
    fixity = FixityAnalysis(database, callgraph, declarations)
    semifixity = SemifixityAnalysis(database, callgraph, declarations)
    inference = ModeInference(database, declarations, callgraph)
    recursive = recursive_predicates(callgraph)

    findings: List[Tuple[str, bool]] = []
    findings.append((
        "mode demand: builder/1 illegal with free name+arity (functor/3)",
        inference.output_mode(("builder", 1), parse_mode_string("-")) is not None
        and not inference.is_legal(("functor", 3), parse_mode_string("---")),
    ))
    findings.append((
        "fixity: logger/1 fixed by write/1; ancestor top/0 contaminated",
        fixity.is_fixed(("logger", 1)) and fixity.is_fixed(("top", 0)),
    ))
    findings.append((
        "semifixity: tester/1 semifixed via var/1 culprit propagation",
        semifixity.is_semifixed(("tester", 1)),
    ))
    cutter_clause = database.clauses(("cutter", 1))[0]
    partition = partition_body(cutter_clause.body, fixity)
    pre_cut_blocks = [b for b in partition.blocks if not b.multi_solution]
    findings.append((
        "cut: goals before ! immobilised (one-solution chain)",
        len(pre_cut_blocks) >= 1 and all(not b.mobile for b in pre_cut_blocks),
    ))
    either_clause = database.clauses(("either", 1))[0]
    either_partition = partition_body(either_clause.body, fixity)
    findings.append((
        "disjunction: (a ; b) kept whole, halves confined",
        len(either_partition.blocks) == 1
        and len(either_partition.blocks[0]) == 1,
    ))
    chooser_clause = database.clauses(("chooser", 2))[0]
    chooser_partition = partition_body(chooser_clause.body, fixity)
    findings.append((
        "implication: if-then-else kept whole, premise immobile",
        len(chooser_partition.blocks) == 1,
    ))
    findings.append((
        "recursion: looper/2 detected; unsafe modes rejected",
        ("looper", 1) in recursive
        and not inference.is_legal(("looper", 1), parse_mode_string("-")),
    ))

    rows = [
        Row(label=text, original=1, reordered=1 if detected else 0)
        for text, detected in findings
    ]
    return Table(
        title="Table I - restrictions on reordering (detected on probe program)",
        rows=rows,
        note="ratio 1.00 = restriction detected as the paper describes",
    )


# -- Table II -----------------------------------------------------------------

def table2(
    include_fully_instantiated: bool = True, include_best: bool = False
) -> Table:
    """Table II — the family-tree program, every predicate × mode.

    One call per possible instantiation: 1 for (-,-), 55 for each
    half-instantiated mode, 3025 for (+,+) (skippable for speed).
    ``include_best`` adds the paper's "cheapest reordering possible"
    column by exhaustive enumeration where practical.
    """
    from .harness import best_order_by_enumeration

    database = family_tree.database()
    reordered = reorder_program(database)
    modes = ["--", "-+", "+-"] + (["++"] if include_fully_instantiated else [])
    rows: List[Row] = []
    for name, arity in family_tree.TESTED_PREDICATES:
        for mode_text in modes:
            mode = parse_mode_string(mode_text)
            original_queries = mode_queries(name, mode, family_tree.PERSONS)
            version = reordered.version_name((name, arity), mode) or name
            new_queries = mode_queries(version, mode, family_tree.PERSONS)
            extras = {}
            if include_best:
                extras["best"] = best_order_by_enumeration(
                    reordered, (name, arity), mode, family_tree.PERSONS
                )
            rows.append(
                Row(
                    label=f"{name}({','.join(mode_text)})",
                    original=count_calls(lambda: Engine(database), original_queries),
                    reordered=count_calls(
                        lambda: reordered.engine(), new_queries
                    ),
                    extras=extras,
                )
            )
    return Table(
        title="Table II - results of reordering a family-tree program "
        "(number of calls)",
        rows=rows,
        note="55 persons; 10 girl/1, 19 wife/2, 34 mother/2 facts, rules "
        "of Fig. 6; synthetic pedigree (see DESIGN.md)",
    )


# -- Tables III & IV ---------------------------------------------------------------

def compare_labelled_queries(
    database: Database,
    reordered: ReorderedProgram,
    labelled: Sequence[Tuple[str, Sequence[str]]],
) -> List[Row]:
    """Rows for (label, query list) pairs, rewriting each query's head
    predicate to the reordered program's version for the label's mode."""
    rows = []
    for label, queries in labelled:
        new_queries = []
        for query in queries:
            if "(" in label:
                name = query[: query.index("(")]
                mode = label_to_mode(label)
                version = reordered.version_name((name, len(mode)), mode) or name
                new_queries.append(version + query[len(name):])
            else:
                new_queries.append(query)
        rows.append(
            Row(
                label=label,
                original=count_calls(lambda: Engine(database), queries),
                reordered=count_calls(lambda: reordered.engine(), new_queries),
            )
        )
    return rows


def table3() -> Table:
    """Table III — the corporate-database rules."""
    database = corporate.database()
    reordered = reorder_program(database)
    labelled = [(label, [query]) for label, query in corporate.TABLE3_QUERIES]
    return Table(
        title="Table III - results of reordering a corporate database program",
        rows=compare_labelled_queries(database, reordered, labelled),
        note=f"{corporate.EMPLOYEE_COUNT} employees, facts indexed on the id",
    )


def table4() -> Table:
    """Table IV — p58, meal, team, kmbench."""
    rows: List[Row] = []
    for module in (p58, meal, team, kmbench):
        database = module.database()
        reordered = reorder_program(database)
        rows.extend(
            compare_labelled_queries(database, reordered, module.TABLE4_QUERIES)
        )
    return Table(
        title="Table IV - results of reordering several programs",
        rows=rows,
        note="p58 / meal / team / kmbench reconstructions (see DESIGN.md)",
    )
