"""Shared experiment machinery: call-counting drivers and table layout.

The paper's methodology (§VII): "We called each predicate in each mode,
with one call for each possible instantiation. Therefore, testing mode
(-,-) required one call, modes (-,+) and (+,-) required 55 apiece, and
modes (+,+) required 3025." Costs are *predicate calls* counted by the
engine's instrumentation; reordered programs are queried through their
mode-specialised entry points (as the paper does — the dispatcher "needs
merely to test two tag bits" and is not part of the measured work).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.modes import Mode, ModeItem, parse_mode_string
from ..prolog.database import Database
from ..prolog.engine import Engine
from ..reorder.system import ReorderedProgram

__all__ = [
    "Row",
    "Table",
    "mode_queries",
    "count_calls",
    "compare_modes",
    "label_to_mode",
]

Indicator = Tuple[str, int]


@dataclass
class Row:
    """One table row: a predicate/mode with its measured call counts."""

    label: str
    original: int
    reordered: int
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        if self.reordered <= 0:
            return float("inf")
        return self.original / self.reordered


@dataclass
class Table:
    """A formatted experiment table (one per paper table)."""

    title: str
    rows: List[Row]
    note: str = ""

    def format(self) -> str:
        """Render the table in the fixed-width layout of EXPERIMENTS.md."""
        label_width = max(12, max((len(r.label) for r in self.rows), default=12))
        has_best = any("best" in row.extras for row in self.rows)
        lines = [self.title, "=" * len(self.title)]
        header = (
            f"{'predicate & mode':<{label_width}}  {'original':>10}  "
            f"{'reordered':>10}  {'ratio':>7}"
        )
        if has_best:
            header += f"  {'best':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            line = (
                f"{row.label:<{label_width}}  {row.original:>10}  "
                f"{row.reordered:>10}  {row.ratio:>7.2f}"
            )
            if has_best:
                best = row.extras.get("best")
                line += f"  {best if best is not None else '-':>10}"
            lines.append(line)
        if self.note:
            lines.append("")
            lines.append(self.note)
        return "\n".join(lines)

    def row(self, label: str) -> Row:
        """The row with the given label (KeyError if absent)."""
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)


def label_to_mode(label: str) -> Mode:
    """Mode of a Table III style label: ``pay(-,jane,-)`` → (-,+,-)."""
    inner = label[label.index("(") + 1 : label.rindex(")")]
    return parse_mode_string(
        "".join("-" if part.strip() == "-" else "+" for part in inner.split(","))
    )


def mode_queries(
    name: str, mode: Mode, constants: Sequence[str]
) -> List[str]:
    """Every instantiation of a call in ``mode`` over ``constants``.

    ``(-,-)`` gives one open query; each ``+`` position ranges over all
    constants (so two ``+`` positions give ``len(constants)**2`` calls),
    reproducing the paper's Table II methodology.
    """
    plus_positions = [i for i, item in enumerate(mode) if item is ModeItem.PLUS]
    queries = []
    for combo in itertools.product(constants, repeat=len(plus_positions)):
        arguments = []
        free_counter = 0
        combo_iter = iter(combo)
        for index, item in enumerate(mode):
            if item is ModeItem.PLUS:
                arguments.append(next(combo_iter))
            else:
                arguments.append(f"V{free_counter}")
                free_counter += 1
        queries.append(f"{name}({', '.join(arguments)})")
    return queries


def count_calls(make_engine: Callable[[], Engine], queries: Sequence[str]) -> int:
    """Total predicate calls to answer every query (fresh metrics)."""
    engine = make_engine()
    total = 0
    for query in queries:
        _, metrics = engine.run(query)
        total += metrics.calls
    return total


def compare_modes(
    original: Database,
    reordered: ReorderedProgram,
    indicator: Indicator,
    modes: Sequence[str],
    constants: Sequence[str],
) -> List[Row]:
    """Original vs reordered call counts for each mode of one predicate."""
    rows = []
    name, _arity = indicator
    for mode_text in modes:
        mode = parse_mode_string(mode_text)
        original_queries = mode_queries(name, mode, constants)
        version = reordered.version_name(indicator, mode) or name
        reordered_queries = mode_queries(version, mode, constants)
        rows.append(
            Row(
                label=f"{name}{_mode_label(mode)}",
                original=count_calls(lambda: Engine(original), original_queries),
                reordered=count_calls(
                    lambda: reordered.engine(), reordered_queries
                ),
            )
        )
    return rows


def _mode_label(mode: Mode) -> str:
    return "(" + ",".join(str(item) for item in mode) + ")"


def best_order_by_enumeration(
    reordered: ReorderedProgram,
    indicator: Indicator,
    mode: Mode,
    constants: Sequence[str],
    combo_limit: int = 48,
    query_limit: int = 64,
) -> Optional[int]:
    """Table II's "cheapest reordering possible" column.

    Exhaustively executes every combination of goal permutations of the
    target predicate's clauses (callees stay at their reordered tuning),
    keeping only combinations whose answer multiset matches, and returns
    the minimum call count — "found by exhaustive enumeration when
    practical": combinations beyond ``combo_limit`` (or query sweeps
    beyond ``query_limit``) return None.
    """
    import itertools as it
    import math

    from ..errors import PrologError
    from ..prolog.database import Clause, body_goals, goals_to_body

    version = reordered.version_name(indicator, mode) or indicator[0]
    version_indicator = (version, indicator[1])
    clauses = reordered.database.clauses(version_indicator)
    if not clauses:
        return None
    goal_lists = [body_goals(clause.body) for clause in clauses]
    combos = math.prod(math.factorial(len(goals)) for goals in goal_lists)
    queries = mode_queries(version, mode, constants)
    if combos > combo_limit or len(queries) > query_limit:
        return None

    def sweep(database: Database):
        engine = Engine(database, call_budget=2_000_000)
        total = 0
        keys = []
        for query in queries:
            solutions, metrics = engine.run(query)
            total += metrics.calls
            keys.append(sorted(s.key() for s in solutions))
        return total, keys

    _, reference_keys = sweep(reordered.database)
    best: Optional[int] = None
    for permutation_set in it.product(
        *(it.permutations(range(len(goals))) for goals in goal_lists)
    ):
        candidate = reordered.database.copy()
        new_clauses = [
            Clause(clause.head, goals_to_body([goals[i] for i in order]))
            for clause, goals, order in zip(clauses, goal_lists, permutation_set)
        ]
        candidate.replace_predicate(version_indicator, new_clauses)
        try:
            total, keys = sweep(candidate)
        except PrologError:
            continue  # this order errors at run time: not a valid best
        if keys != reference_keys:
            continue  # changes the answers: not set-equivalent
        if best is None or total < best:
            best = total
    return best
