"""Experiment harness: regenerates every table and figure of the paper."""

from .figures import Figure1Result, Figure2Result, figure1, figure2, figures_4_5
from .harness import Row, Table, compare_modes, count_calls, label_to_mode, mode_queries
from .tables import (
    compare_labelled_queries,
    reorder_program,
    table1,
    table2,
    table3,
    table4,
)

__all__ = [
    "Figure1Result",
    "Figure2Result",
    "Row",
    "Table",
    "compare_labelled_queries",
    "compare_modes",
    "count_calls",
    "figure1",
    "figure2",
    "figures_4_5",
    "label_to_mode",
    "mode_queries",
    "reorder_program",
    "table1",
    "table2",
    "table3",
    "table4",
]
