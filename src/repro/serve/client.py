"""A small blocking client for the ``repro serve`` protocol.

Used by ``repro client`` (one-shot CLI requests), the serve test suite,
and ``benchmarks/serve_bench.py``'s load generator. Deliberately plain
``socket`` + ``makefile`` line I/O — the client needs no concurrency of
its own, and keeping it synchronous means benchmark worker threads
exercise the *server's* concurrency rather than the client's.

Addresses take three spellings::

    host:port          TCP (``localhost:7878``)
    unix:/path/sock    UNIX socket, explicit scheme
    /path/sock         UNIX socket, bare absolute path

Connection failures (refused, missing socket file, reset mid-request)
raise :class:`ServerUnavailable`, which the CLI maps to
``EXIT_UNAVAILABLE`` — the same exit code as an admission rejection,
because both mean "this replica cannot take the work right now".

Both conditions are *transient* by contract (a shed happens under
momentary saturation, a drain ends when the replica restarts), so
:func:`request_with_retries` wraps one logical request in an
exponential-backoff retry loop (``repro client --retry N
--retry-backoff SECS``): each attempt opens a fresh connection, and
only ``rejected``/``unavailable`` responses or unreachable-server
failures are retried — real errors and timeouts surface immediately.
"""

from __future__ import annotations

import socket
import time
from typing import Callable, Dict, List, Optional

from ..errors import ReproError
from .protocol import STATUS_REJECTED, STATUS_UNAVAILABLE, encode

__all__ = [
    "ServerUnavailable",
    "ServeClient",
    "parse_address",
    "RETRYABLE_STATUSES",
    "retry_delays",
    "request_with_retries",
]

#: Response statuses worth retrying: the server is alive but cannot
#: take the work *right now*. Everything else (ok, error, timeout,
#: exhausted, cancelled) is a verdict on the request itself.
RETRYABLE_STATUSES = (STATUS_REJECTED, STATUS_UNAVAILABLE)


class ServerUnavailable(ReproError):
    """The server could not be reached (or vanished mid-request)."""


def parse_address(address: str):
    """``(family, target)`` for an address spelling (see module doc)."""
    if address.startswith("unix:"):
        return socket.AF_UNIX, address[len("unix:"):]
    if address.startswith("/"):
        return socket.AF_UNIX, address
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ServerUnavailable(
            f"bad server address {address!r} (want host:port or a "
            f"UNIX-socket path)"
        )
    return socket.AF_INET, (host or "127.0.0.1", int(port))


class ServeClient:
    """One blocking connection; requests are sent and awaited in order."""

    def __init__(self, address: str, connect_timeout: float = 5.0):
        self.address = address
        family, target = parse_address(address)
        try:
            self._sock = socket.socket(family, socket.SOCK_STREAM)
            self._sock.settimeout(connect_timeout)
            self._sock.connect(target)
            self._sock.settimeout(None)
        except OSError as exc:
            raise ServerUnavailable(
                f"cannot reach server at {address}: {exc}"
            ) from exc
        self._reader = self._sock.makefile("rb")
        self._sequence = 0

    # -- plumbing ---------------------------------------------------------

    def request(self, message: Dict[str, object]) -> Dict[str, object]:
        """Send one request and block for its response."""
        import json

        self._sequence += 1
        message.setdefault("id", self._sequence)
        try:
            self._sock.sendall(encode(message))
            line = self._reader.readline()
        except OSError as exc:
            raise ServerUnavailable(
                f"connection to {self.address} lost: {exc}"
            ) from exc
        if not line:
            raise ServerUnavailable(
                f"server at {self.address} closed the connection"
            )
        return json.loads(line.decode("utf-8"))

    # -- operations -------------------------------------------------------

    def query(
        self,
        query: str,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
        **extra: object,
    ) -> Dict[str, object]:
        """Run one query; ``limit``/``timeout`` override server defaults
        when given (the server's own defaults apply when omitted)."""
        message: Dict[str, object] = {"op": "query", "query": query}
        if limit is not None:
            message["limit"] = limit
        if timeout is not None:
            message["timeout"] = timeout
        message.update(extra)
        return self.request(message)

    def update(
        self,
        asserts: Optional[List[str]] = None,
        retracts: Optional[List[str]] = None,
    ) -> Dict[str, object]:
        """Publish the next program generation (assert/retract chunks)."""
        message: Dict[str, object] = {"op": "update"}
        if asserts:
            message["assert"] = list(asserts)
        if retracts:
            message["retract"] = list(retracts)
        return self.request(message)

    def ping(self) -> Dict[str, object]:
        """Liveness probe; the response carries the current generation."""
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, object]:
        """Fetch the server's admission/load counters."""
        return self.request({"op": "stats"})

    def close(self) -> None:
        """Close the connection (idempotent; errors are swallowed)."""
        try:
            self._reader.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def retry_delays(retries: int, backoff: float) -> List[float]:
    """The exponential backoff schedule: ``backoff * 2**attempt``.

    One entry per retry — the pause *before* attempt ``n + 1``. Pinned
    by ``tests/serve/test_protocol.py`` so the CLI contract
    (``--retry 3 --retry-backoff 0.5`` waits 0.5s, 1s, 2s) cannot
    drift silently.
    """
    return [backoff * (2 ** attempt) for attempt in range(max(0, retries))]


def request_with_retries(
    address: str,
    message: Dict[str, object],
    retries: int = 0,
    backoff: float = 0.25,
    sleep: Callable[[float], None] = time.sleep,
    client_factory: Callable[[str], "ServeClient"] = None,
) -> Dict[str, object]:
    """One logical request, retried on shed/drain/unreachable replicas.

    Opens a **fresh connection per attempt** (an unreachable server
    leaves no connection to reuse, and a draining one closes its
    listener). Responses with a status outside
    :data:`RETRYABLE_STATUSES` return immediately; after the final
    attempt the last retryable response is returned as-is (the caller
    maps it to exit 4), or the final :class:`ServerUnavailable` is
    re-raised. ``sleep``/``client_factory`` exist for the tests.
    """
    factory = client_factory if client_factory is not None else ServeClient
    delays = retry_delays(retries, backoff)
    response: Optional[Dict[str, object]] = None
    for attempt in range(retries + 1):
        try:
            with factory(address) as client:
                response = client.request(dict(message))
        except ServerUnavailable:
            if attempt >= retries:
                raise
            response = None
        if (
            response is not None
            and response.get("status") not in RETRYABLE_STATUSES
        ):
            return response
        if attempt < retries:
            sleep(delays[attempt])
    return response
