"""The serving backends: where admitted engine work actually runs.

The event loop must never run a query itself — engine execution is
arbitrarily long, and one slow request would freeze every connection.
Admitted work therefore goes through an :class:`Executor`, a minimal
awaitable-submission interface with exactly the surface the server
needs. Two backends implement it:

* :class:`ThreadedExecutor` (the default) — a thread pool in the
  server process. Engine state is fully per-request (a fresh
  :class:`~repro.prolog.engine.Engine` over a pinned snapshot, its own
  trail/metrics/tables), so threads need no locking, and cooperative
  :class:`~repro.robustness.Budget` checks keep well-behaved queries
  cancellable. Its weakness is the wedged request: code that never
  reaches a budget check (a blocking C call, a pathological builtin
  loop) is *answered* at its deadline but its thread is merely
  abandoned — enough of them and the pool starves.
* :class:`ProcessExecutor` — a supervised worker-process pool
  (:class:`~repro.robustness.watchdog.WorkerPool`). Each query runs in
  a subprocess against a **pickled copy** of its pinned snapshot's
  database (warm workers cache the program per generation, so only the
  first query after an ``update`` re-ships it); a request that blows
  its deadline gets its worker **killed with SIGKILL** and respawned,
  so a wedged query costs one process restart instead of a leaked
  thread. A worker that crashes mid-query (segfault, OOM kill,
  injected ``os._exit``) is retried once on a fresh worker; if that
  also fails the request **degrades** to an embedded
  :class:`ThreadedExecutor` (the response carries a ``degraded``
  marker), and repeated crashes quarantine the process backend
  entirely — the server keeps serving, threaded, with a warning in
  ``stats``. See docs/SERVING.md for the trade-offs.

Both backends speak :class:`QueryJob` — everything one admitted query
needs — through :meth:`Executor.run_query`; the generic
:meth:`Executor.run` stays for work that must run in the server
process (snapshot builds for ``update``).
"""

from __future__ import annotations

import asyncio
import pickle
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from time import perf_counter
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from ..errors import (
    BudgetExceededError,
    DeadlineExceeded,
    ReproError,
)
from ..observability.streaming.recorder import (
    StreamingRecorder,
    attach_recorder,
    detach_recorder,
)
from ..prolog.engine import Engine
from ..prolog.writer import term_to_string
from ..robustness import faults
from ..robustness.budget import Budget
from ..robustness.watchdog import (
    WatchdogOptions,
    WatchdogUnavailable,
    WorkerCrashed,
    WorkerPool,
    WorkerTaskError,
    WorkerTimeout,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .snapshots import Snapshot

__all__ = [
    "Executor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "QueryJob",
    "execute_query",
]

#: Serializes StreamingRecorder attach/detach across request threads
#: (the recorder's binding list is rebuilt on unbind; two concurrent
#: detaches must not resurrect each other's removed binding).
_RECORDER_LOCK = threading.Lock()


@dataclass
class QueryJob:
    """Everything one admitted query carries to its backend."""

    snapshot: "Snapshot"
    query: str
    #: Wall-clock deadline in seconds (None = none). The backend also
    #: receives the server-built :class:`Budget` (which encodes the
    #: same bounds plus the server-held cancel token) for in-process
    #: execution; the process backend rebuilds an equivalent budget
    #: inside the worker instead, since a token cannot cross the pipe.
    timeout: Optional[float]
    limit: Optional[int]
    max_calls: Optional[int]
    table_all: bool
    max_depth: int
    eval_strategy: str
    budget: Budget
    recorder: Optional[StreamingRecorder] = None


def execute_query(job: QueryJob) -> Dict[str, object]:
    """Run one admitted query in-process; returns the response payload.

    Everything mutable is request-private (fresh engine, trail,
    metrics, tables) except the pinned snapshot's database, which is
    read-only after publication, and the shared recorder, whose
    attach/detach is serialized and detached in a ``finally`` so a
    faulted or cancelled request never leaves a stale binding.
    """
    if faults.ACTIVE is not None:
        faults.ACTIVE.hit("serve.request")
    engine = Engine(
        job.snapshot.database,
        max_depth=job.max_depth,
        table_all=job.table_all,
        budget=job.budget,
        adjust_recursion_limit=False,
        eval_strategy=job.eval_strategy,
    )
    if job.recorder is not None:
        with _RECORDER_LOCK:
            attach_recorder(engine, job.recorder)
    try:
        started = perf_counter()
        solutions = engine.ask(job.query)
        operators = job.snapshot.database.operators
        return {
            "solutions": [
                {
                    name: term_to_string(term, operators)
                    for name, term in solution.bindings.items()
                }
                for solution in solutions
            ],
            "count": len(solutions),
            "calls": engine.metrics.calls,
            "elapsed_ms": round((perf_counter() - started) * 1e3, 3),
        }
    finally:
        if job.recorder is not None:
            with _RECORDER_LOCK:
                detach_recorder(engine)


class Executor:
    """Abstract backend: run admitted work off the event loop."""

    async def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Execute ``fn(*args)`` off-loop **in the server process**;
        return (or raise) its result. Used for snapshot builds and
        other work that must see server-side state."""
        raise NotImplementedError

    async def run_query(self, job: QueryJob) -> Dict[str, object]:
        """Execute one admitted query; returns the response payload or
        raises the same error family :func:`execute_query` does."""
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        """Backend counters for the server's ``stats`` payload."""
        return {}

    def capacity_warning(self, max_inflight: int) -> Optional[str]:
        """A warning string when this backend cannot actually run
        ``max_inflight`` requests concurrently (None = fine)."""
        return None

    def shutdown(self) -> None:
        """Release backend resources; no new calls after."""


class ThreadedExecutor(Executor):
    """Thread-pool backend (the default, single-process).

    ``max_workers`` should be at least the server's ``max_inflight`` —
    a smaller pool would silently re-queue admitted requests behind the
    admission controller's back and distort its latency accounting.
    The server checks exactly that through :meth:`capacity_warning`
    and surfaces the mismatch in ``stats`` instead of hiding it.
    """

    def __init__(self, max_workers: int = 8):
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )

    async def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` on the pool without blocking the loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, partial(fn, *args))

    async def run_query(self, job: QueryJob) -> Dict[str, object]:
        """Run the query as :func:`execute_query` on a pool thread."""
        return await self.run(execute_query, job)

    def stats(self) -> Dict[str, object]:
        """Thread-backend block for the server's ``stats`` payload."""
        return {"kind": "thread", "max_workers": self.max_workers}

    def capacity_warning(self, max_inflight: int) -> Optional[str]:
        """Warn when the pool is smaller than the admission window."""
        if self.max_workers < max_inflight:
            return (
                f"thread backend has {self.max_workers} workers for "
                f"{max_inflight} admission slots: admitted requests will "
                f"re-queue inside the thread pool, distorting admission "
                f"latency accounting (raise max_workers or lower "
                f"max_inflight)"
            )
        return None

    def shutdown(self) -> None:
        """Release the pool without waiting for abandoned threads.

        A request answered at its deadline may leave a thread still
        unwinding cooperatively; it must not block process exit.
        """
        self._pool.shutdown(wait=False)


# -- the process backend ---------------------------------------------------

#: Worker-side program cache: the last (generation, database) this
#: worker unpickled. One entry is enough — the parent tracks what each
#: worker holds and re-ships whenever the pinned generation differs, so
#: a warm worker can never answer generation G with an older program.
_WORKER_PROGRAM: Dict[str, Any] = {"generation": None, "database": None}


def _process_worker_init(max_depth: int) -> None:
    """Per-worker initialization (runs once, in the worker process)."""
    Engine.ensure_recursion_capacity(max_depth)


def _process_worker_task(index: int, payload: tuple) -> tuple:
    """Run one query inside a worker process.

    Returns a plain tuple so every outcome crosses the pipe:
    ``(kind, data, cached_generation)`` where ``kind`` is ``"ok"``
    (``data`` is the response payload), ``"budget"`` (``data`` is
    ``(type_name, message)`` — the parent re-raises the matching
    cooperative-budget class), or ``"error"`` (``data`` is the message
    of an engine/program error or an injected ``raise``/``exhaust``
    fault). ``cached_generation`` is what :data:`_WORKER_PROGRAM`
    actually holds afterwards — the parent trusts *that*, not its own
    bookkeeping, so a fault firing before the program loads cannot
    mark the worker warm. An injected ``crash`` is ``os._exit`` — the
    parent sees the pipe die, exactly like a segfault.
    """
    (
        generation,
        blob,
        query,
        timeout,
        limit,
        max_calls,
        table_all,
        max_depth,
        eval_strategy,
    ) = payload
    try:
        if faults.ACTIVE is not None:
            faults.ACTIVE.hit("serve.worker")
        if generation == _WORKER_PROGRAM["generation"] and (
            _WORKER_PROGRAM["database"] is not None
        ):
            database = _WORKER_PROGRAM["database"]
        elif blob is None:
            raise ReproError(
                f"worker holds generation {_WORKER_PROGRAM['generation']} "
                f"but generation {generation} was not shipped"
            )
        else:
            database = pickle.loads(blob)
            _WORKER_PROGRAM["generation"] = generation
            _WORKER_PROGRAM["database"] = database
        budget = Budget(deadline=timeout, calls=max_calls, solutions=limit)
        engine = Engine(
            database,
            max_depth=max_depth,
            table_all=table_all,
            budget=budget,
            adjust_recursion_limit=False,
            eval_strategy=eval_strategy,
        )
        started = perf_counter()
        solutions = engine.ask(query)
        payload_out = {
            "solutions": [
                {
                    name: term_to_string(term, database.operators)
                    for name, term in solution.bindings.items()
                }
                for solution in solutions
            ],
            "count": len(solutions),
            "calls": engine.metrics.calls,
            "elapsed_ms": round((perf_counter() - started) * 1e3, 3),
        }
        outcome = ("ok", payload_out)
    except BudgetExceededError as exc:
        outcome = ("budget", (type(exc).__name__, str(exc)))
    except ReproError as exc:
        outcome = ("error", str(exc))
    return outcome + (_WORKER_PROGRAM["generation"],)


class ProcessExecutor(Executor):
    """Supervised worker-process backend: true kill-on-deadline.

    Queries run in subprocesses from a
    :class:`~repro.robustness.watchdog.WorkerPool`; the degradation
    ladder on failure is **kill → retry → threaded fallback →
    quarantine** (docs/ROBUSTNESS.md):

    1. a request that passes ``deadline + grace`` without answering
       gets its worker SIGKILLed and respawned; the client receives
       the ordinary ``timeout`` status and the admission slot frees
       immediately — nothing is leaked;
    2. a worker that *crashes* mid-query is retried once on a fresh
       worker;
    3. if the retry also crashes, the request runs to completion on
       the embedded :class:`ThreadedExecutor` and its response carries
       ``degraded: "thread"``;
    4. ``quarantine_after`` consecutive crashes take the process pool
       out of rotation entirely — every later request goes straight to
       the threaded fallback and ``stats()`` carries the warning.

    Snapshot shipping is generation-cached per worker: the pickled
    database travels only when the worker's cached generation differs
    from the request's pinned one, so warm workers pay one pipe write
    per query, not one program per query.
    """

    def __init__(
        self,
        workers: int = 8,
        grace: float = 0.5,
        max_depth: int = 1_000,
        fallback: Optional[ThreadedExecutor] = None,
        crash_retries: int = 1,
        quarantine_after: int = 3,
        options: Optional[WatchdogOptions] = None,
    ):
        self.workers = max(1, workers)
        self.grace = grace
        self.crash_retries = max(0, crash_retries)
        self.quarantine_after = max(1, quarantine_after)
        self.fallback = fallback or ThreadedExecutor(
            max_workers=self.workers + 4
        )
        self.quarantined = False
        self.quarantine_reason: Optional[str] = None
        self.degraded_requests = 0
        self._consecutive_crashes = 0
        self._lock = threading.Lock()
        #: Pickled databases keyed by generation (bounded; updates are
        #: rare compared to queries, so this is almost always one hot
        #: entry plus the stragglers pinned mid-update).
        self._blobs: Dict[int, bytes] = {}
        #: Dispatch threads: each blocks on one worker's pipe while its
        #: query runs (cheap — they hold no GIL while polling).
        self._dispatch = ThreadPoolExecutor(
            max_workers=self.workers + 2,
            thread_name_prefix="repro-serve-dispatch",
        )
        self._pool = WorkerPool(
            _process_worker_task,
            size=self.workers,
            initializer=_process_worker_init,
            initargs=(max_depth,),
            options=options
            or WatchdogOptions(task_timeout=30.0, poll_interval=0.02),
        )
        try:
            self._pool.start()
        except WatchdogUnavailable as exc:
            # Restricted environment: keep serving, threaded, and say so.
            self._quarantine(f"worker pool failed to start: {exc}")

    # -- Executor surface -------------------------------------------------

    async def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Server-process work (snapshot builds) runs on the fallback
        thread pool — it must see the server's own state."""
        return await self.fallback.run(fn, *args)

    async def run_query(self, job: QueryJob) -> Dict[str, object]:
        """Run the query on a worker subprocess, degrading on failure.

        The full ladder: a crashed worker already got one retry inside
        :meth:`_run_query_sync`; if that failed too the query re-runs
        on the threaded fallback (``degraded`` marker in the payload),
        and once quarantined every request goes straight to threads.
        """
        if self.quarantined:
            return await self._run_degraded(job)
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._dispatch, self._run_query_sync, job
            )
        except _ProcessBackendFailed as exc:
            with self._lock:
                self.degraded_requests += 1
            if self.quarantined:
                # This request's crashes crossed the threshold.
                pass
            return await self._run_degraded(job, marker=str(exc))

    def stats(self) -> Dict[str, object]:
        """Process-backend block: pool counters + degradation state."""
        pool_stats = self._pool.stats()
        with self._lock:
            payload: Dict[str, object] = {
                "kind": "process",
                "degraded_requests": self.degraded_requests,
                "quarantined": self.quarantined,
            }
            if self.quarantine_reason is not None:
                payload["quarantine_reason"] = self.quarantine_reason
        payload.update(pool_stats)
        return payload

    def capacity_warning(self, max_inflight: int) -> Optional[str]:
        """Warn when the pool is smaller than the admission window."""
        if self.workers < max_inflight:
            return (
                f"process backend has {self.workers} workers for "
                f"{max_inflight} admission slots: admitted requests will "
                f"wait for a free worker behind the admission controller's "
                f"back (raise --workers or lower --max-inflight)"
            )
        return None

    def shutdown(self) -> None:
        """Kill every worker (idle or busy) and release the fallback."""
        self._pool.shutdown()
        self._dispatch.shutdown(wait=False)
        self.fallback.shutdown()

    @property
    def worker_pids(self):
        """Live worker PIDs (tests assert a killed PID is truly gone)."""
        return self._pool.worker_pids

    # -- internals --------------------------------------------------------

    def _blob_for(self, snapshot: "Snapshot") -> bytes:
        generation = snapshot.generation
        with self._lock:
            blob = self._blobs.get(generation)
        if blob is None:
            blob = pickle.dumps(
                snapshot.database, protocol=pickle.HIGHEST_PROTOCOL
            )
            with self._lock:
                self._blobs[generation] = blob
                while len(self._blobs) > 4:
                    self._blobs.pop(min(self._blobs))
        return blob

    def _quarantine(self, reason: str) -> None:
        with self._lock:
            if not self.quarantined:
                self.quarantined = True
                self.quarantine_reason = reason
        self._pool.shutdown()

    def _note_crash(self, message: str) -> None:
        with self._lock:
            self._consecutive_crashes += 1
            crashes = self._consecutive_crashes
        if crashes >= self.quarantine_after:
            self._quarantine(
                f"{crashes} consecutive worker crashes (last: {message}); "
                f"process backend quarantined, serving threaded"
            )

    def _note_success(self) -> None:
        with self._lock:
            self._consecutive_crashes = 0

    def _run_query_sync(self, job: QueryJob) -> Dict[str, object]:
        """Dispatch one query to a worker (blocking; runs off-loop).

        Raises the same error family the threaded path does —
        :class:`DeadlineExceeded` when the worker had to be killed,
        the re-raised budget family for cooperative exhaustion inside
        the worker, :class:`ReproError` for program errors — or
        :class:`_ProcessBackendFailed` when crash retries ran out and
        the caller should degrade.
        """
        generation = job.snapshot.generation
        # Kill at deadline + grace: the in-worker cooperative budget
        # answers well-behaved queries *at* the deadline; SIGKILL is
        # reserved for workers that sail past it non-cooperatively.
        kill_after = (
            None if job.timeout is None else job.timeout + self.grace
        )
        last_crash = "worker process died"
        for attempt in range(1 + self.crash_retries):
            if self.quarantined:
                raise _ProcessBackendFailed(last_crash)
            try:
                worker = self._pool.checkout(
                    timeout=kill_after if kill_after is not None else 60.0
                )
            except WatchdogUnavailable as exc:
                raise _ProcessBackendFailed(str(exc))
            blob = (
                None
                if worker.cache_key == generation
                else self._blob_for(job.snapshot)
            )
            payload = (
                generation,
                blob,
                job.query,
                job.timeout,
                job.limit,
                job.max_calls,
                job.table_all,
                job.max_depth,
                job.eval_strategy,
            )
            try:
                outcome = self._pool.execute_on(worker, payload, kill_after)
            except WorkerTimeout:
                raise DeadlineExceeded(
                    f"deadline of {job.timeout:g}s exceeded "
                    f"(worker killed and respawned)"
                )
            except WorkerCrashed as exc:
                last_crash = str(exc)
                self._note_crash(last_crash)
                continue  # one retry on a fresh worker
            except WorkerTaskError as exc:
                # task_fn raised past its own handlers: the worker is
                # healthy but its cache state is unknown — treat it as
                # cold so the next query re-ships.
                worker.cache_key = None
                self._note_success()
                raise ReproError(str(exc))
            # The worker reports what it actually holds; trust that
            # rather than assuming the task got as far as loading.
            worker.cache_key = outcome[2]
            self._note_success()
            kind = outcome[0]
            if kind == "ok":
                return outcome[1]
            if kind == "budget":
                type_name, message = outcome[1]
                raise _budget_error(type_name, message)
            raise ReproError(outcome[1])  # kind == "error"
        raise _ProcessBackendFailed(last_crash)

    async def _run_degraded(
        self, job: QueryJob, marker: Optional[str] = None
    ) -> Dict[str, object]:
        """Threaded fallback; the payload carries the degraded marker."""
        payload = await self.fallback.run_query(job)
        payload["degraded"] = "thread"
        return payload


class _ProcessBackendFailed(ReproError):
    """Internal: the process backend gave out on this request (crash
    retries exhausted or pool unavailable); degrade to threads."""


def _budget_error(type_name: str, message: str) -> BudgetExceededError:
    """Re-raise the worker's budget exhaustion as its original class."""
    from .. import errors

    exc_class = getattr(errors, type_name, BudgetExceededError)
    if not (
        isinstance(exc_class, type)
        and issubclass(exc_class, BudgetExceededError)
    ):
        exc_class = BudgetExceededError
    return exc_class(message)
