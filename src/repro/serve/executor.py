"""The serving backend interface: where admitted engine work runs.

The event loop must never run a query itself — engine execution is
arbitrarily long, and one slow request would freeze every connection.
Admitted work therefore goes through an :class:`Executor`, a minimal
awaitable-submission interface with exactly the surface the server
needs. The default backend is a thread pool
(:class:`ThreadedExecutor`): engine state is fully per-request (a fresh
:class:`~repro.prolog.engine.Engine` over a pinned snapshot, its own
trail/metrics/tables), so threads need no locking, and cooperative
:class:`~repro.robustness.Budget` checks keep even a runaway query
cancellable.

The interface is deliberately narrow so the supervised worker pool in
:mod:`repro.robustness.watchdog` can slot in later as a multi-process
backend (serialize the snapshot's source text + the query, run in a
watchdogged subprocess, kill on deadline instead of waiting for a
cooperative check) without the server changing shape.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Callable, Optional

__all__ = ["Executor", "ThreadedExecutor"]


class Executor:
    """Abstract backend: run one callable off the event loop."""

    async def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Execute ``fn(*args)`` off-loop; return (or raise) its result."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release backend resources; no new :meth:`run` calls after."""


class ThreadedExecutor(Executor):
    """Thread-pool backend (the default, single-process).

    ``max_workers`` should be at least the server's ``max_inflight`` —
    a smaller pool would silently re-queue admitted requests behind the
    admission controller's back and distort its latency accounting.
    """

    def __init__(self, max_workers: int = 8):
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )

    async def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` on the pool without blocking the loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, partial(fn, *args))

    def shutdown(self) -> None:
        """Release the pool without waiting for abandoned threads.

        A request answered at its deadline may leave a thread still
        unwinding cooperatively; it must not block process exit.
        """
        self._pool.shutdown(wait=False)
