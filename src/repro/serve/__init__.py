"""``repro serve``: a concurrent query server over a shared program.

The serving layer turns the single-shot CLI engine into a long-lived
process: many concurrent queries over one database, snapshot-isolated
from live updates, behind bounded admission control. The pieces:

* :mod:`~repro.serve.snapshots` — immutable program generations and the
  copy-on-write store that builds and atomically publishes them;
* :mod:`~repro.serve.protocol` — the newline-delimited JSON wire format
  and the response-status / exit-code taxonomy;
* :mod:`~repro.serve.admission` — bounded concurrency + bounded queue,
  shedding load instead of queueing unboundedly;
* :mod:`~repro.serve.executor` — the backend interface engine work runs
  on: a thread pool (default) or the supervised worker-process pool
  with true kill-on-deadline (``--backend=process``);
* :mod:`~repro.serve.server` — the asyncio server tying it together;
* :mod:`~repro.serve.client` — a small blocking client for the CLI,
  tests, and the load-generator benchmark.

See docs/SERVING.md for the protocol and operational guidance.
"""

from .admission import AdmissionController, AdmissionDecision
from .client import (
    RETRYABLE_STATUSES,
    ServeClient,
    ServerUnavailable,
    parse_address,
    request_with_retries,
    retry_delays,
)
from .executor import Executor, ProcessExecutor, QueryJob, ThreadedExecutor
from .protocol import (
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    STATUS_CANCELLED,
    STATUS_ERROR,
    STATUS_EXHAUSTED,
    STATUS_EXIT,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    STATUS_UNAVAILABLE,
    status_exit_code,
)
from .server import QueryServer, ServeOptions, ServerThread
from .snapshots import Snapshot, SnapshotStore, UpdateResult

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "Executor",
    "ProcessExecutor",
    "QueryJob",
    "ThreadedExecutor",
    "RETRYABLE_STATUSES",
    "request_with_retries",
    "retry_delays",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "STATUS_CANCELLED",
    "STATUS_ERROR",
    "STATUS_EXHAUSTED",
    "STATUS_EXIT",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_TIMEOUT",
    "STATUS_UNAVAILABLE",
    "status_exit_code",
    "QueryServer",
    "ServeOptions",
    "ServerThread",
    "ServeClient",
    "ServerUnavailable",
    "parse_address",
    "Snapshot",
    "SnapshotStore",
    "UpdateResult",
]
