"""The ``repro serve`` query server: asyncio front, pooled engine back.

One long-lived process serves many concurrent queries over a shared
program. The moving parts, and where each concern lives:

* **Snapshot isolation** — every query is pinned at admission to the
  :class:`~repro.serve.snapshots.Snapshot` current at that moment;
  updates build the next generation in the background (serialized by
  one writer lock) and publish it atomically. A reader admitted before
  a swap finishes on its pinned generation — answers are never torn
  across program versions (see docs/SERVING.md).
* **Admission control** — the bounded
  :class:`~repro.serve.admission.AdmissionController` grants at most
  ``max_inflight`` execution slots with at most ``max_queue`` waiters;
  past that, requests are shed immediately with
  :data:`~repro.serve.protocol.STATUS_REJECTED` instead of queueing
  unboundedly.
* **Budgets** — each admitted query runs under its own
  :class:`~repro.robustness.Budget` (``--default-timeout``, overridable
  per request) with a :class:`~repro.robustness.CancelToken` the server
  side holds. The engine honours the deadline cooperatively; a wedged
  request (blocking sleep, injected ``serve.request`` hang) is answered
  by the event-loop watchdog at ``deadline + grace`` and its token
  cancelled, so one stuck thread never stalls its client or its slot
  beyond the allowance.
* **Off-loop execution** — engine work runs on an
  :class:`~repro.serve.executor.Executor` backend selected by
  ``--backend``: :class:`~repro.serve.executor.ThreadedExecutor` (the
  default) or the supervised
  :class:`~repro.serve.executor.ProcessExecutor`, whose watchdog
  SIGKILLs a worker that sails past its deadline, retries crashed
  queries on a fresh worker, and degrades to threads (then full
  quarantine) when workers keep dying. The event loop only parses
  lines, makes admission decisions, and writes responses.
* **Lifecycle telemetry** — every transition emits a
  :class:`~repro.observability.events.RequestEvent`
  (admitted/started/completed/rejected/cancelled, with queue depth and
  snapshot generation) on the server's event bus, optionally streamed
  to a JSONL log; a shared
  :class:`~repro.observability.streaming.StreamingRecorder` is attached
  to each request engine (and detached in a ``finally``) so live
  traffic feeds the same per-predicate aggregates the drift monitor
  consumes.
* **Graceful drain** — SIGINT/SIGTERM stop the listener, let in-flight
  requests finish for ``drain_timeout`` seconds, then cancel the
  stragglers' tokens; requests arriving mid-drain get
  :data:`~repro.serve.protocol.STATUS_UNAVAILABLE`.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import warnings as _warnings
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Set

from ..errors import (
    BudgetExceededError,
    DeadlineExceeded,
    QueryCancelled,
    ReproError,
)
from ..observability.events import EventBus, RequestEvent
from ..observability.streaming.recorder import StreamingRecorder
from ..prolog.database import Database
from ..prolog.engine import Engine
from .admission import AdmissionController
from ..robustness.budget import Budget, CancelToken
from .executor import (
    Executor,
    ProcessExecutor,
    QueryJob,
    ThreadedExecutor,
)
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    STATUS_CANCELLED,
    STATUS_ERROR,
    STATUS_EXHAUSTED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    STATUS_UNAVAILABLE,
    decode_line,
    error_response,
)
from .snapshots import SnapshotStore

__all__ = ["ServeOptions", "QueryServer", "ServerThread"]


@dataclass
class ServeOptions:
    """Everything ``repro serve`` is configured by (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (tests/benchmarks).
    port: int = 7878
    #: UNIX-socket path; set to serve on it instead of TCP.
    unix_path: Optional[str] = None
    #: Concurrent executing requests (executor slots).
    max_inflight: int = 8
    #: Admitted-but-waiting requests; past this, load is shed.
    max_queue: int = 16
    #: Default per-request wall-clock deadline, seconds (None = none).
    default_timeout: Optional[float] = 30.0
    #: Default per-request solution cap (a clean stop, not an error).
    max_solutions: Optional[int] = 10_000
    #: Optional per-request call budget (None = unlimited).
    max_calls: Optional[int] = None
    #: Seconds past a request's deadline before the event-loop watchdog
    #: stops waiting for its (cooperatively cancelled) worker thread.
    grace: float = 0.5
    #: Seconds in-flight requests get to finish after drain starts.
    drain_timeout: float = 5.0
    #: JSONL file receiving one record per request lifecycle event.
    log_path: Optional[str] = None
    #: Table every user predicate in request engines.
    table_all: bool = False
    #: Engine recursion depth per request (recursion capacity is
    #: reserved once, at server start, not per request).
    max_depth: int = 1_000
    #: Event-bus retention (lifecycle events; the JSONL log is unbounded).
    bus_limit: int = 100_000
    #: Evaluation strategy for request engines (``topdown`` |
    #: ``bottomup`` | ``auto``; see docs/EVALUATION.md). Bottom-up
    #: materializations are request-private and rebuilt per snapshot,
    #: so ``update`` invalidation falls out of snapshot isolation.
    eval_strategy: str = "topdown"
    #: Execution backend: ``thread`` (default — cooperative deadlines,
    #: shared process) or ``process`` (supervised worker pool with true
    #: kill-on-deadline and crash recovery; see docs/SERVING.md).
    backend: str = "thread"
    #: Backend worker count. ``None`` sizes the pool from
    #: ``max_inflight``: the process pool gets exactly ``max_inflight``
    #: workers, the thread pool ``max_inflight + 4`` (slack absorbs
    #: threads abandoned by the deadline watchdog).
    workers: Optional[int] = None
    #: Consecutive worker crashes before the process backend is
    #: quarantined (the server keeps serving on threads).
    quarantine_after: int = 3


class QueryServer:
    """One serving instance: snapshot store + admission + backend.

    Construct, ``await start()``, then ``await serve_forever()`` (or
    drive :meth:`initiate_drain` / :meth:`shutdown` yourself — the
    tests and :class:`ServerThread` do).
    """

    def __init__(
        self,
        database: Database,
        options: Optional[ServeOptions] = None,
        executor: Optional[Executor] = None,
    ):
        self.options = options or ServeOptions()
        self.store = SnapshotStore(database)
        self.admission = AdmissionController(
            self.options.max_inflight, self.options.max_queue
        )
        if executor is not None:
            self.executor = executor
        elif self.options.backend == "process":
            self.executor = ProcessExecutor(
                workers=self.options.workers or self.options.max_inflight,
                grace=self.options.grace,
                max_depth=self.options.max_depth,
                quarantine_after=self.options.quarantine_after,
            )
        elif self.options.backend == "thread":
            # Pool slack beyond max_inflight: a request abandoned by the
            # deadline watchdog frees its admission slot immediately but
            # its thread keeps a worker until the next cooperative budget
            # check — without headroom, one wedged thread would stall a
            # fresh, healthy request behind it.
            self.executor = ThreadedExecutor(
                max_workers=self.options.workers
                or self.options.max_inflight + 4
            )
        else:
            raise ValueError(
                f"unknown backend {self.options.backend!r} "
                f"(use thread|process)"
            )
        #: The backend capacity mismatch, surfaced rather than silently
        #: re-queueing admitted requests inside the backend pool.
        self.backend_warning = self.executor.capacity_warning(
            self.options.max_inflight
        )
        if self.backend_warning is not None:
            _warnings.warn(self.backend_warning, RuntimeWarning, stacklevel=2)
        self.events = EventBus(limit=self.options.bus_limit)
        self.recorder = StreamingRecorder()
        self.draining = False
        self._drain_requested = asyncio.Event()
        self._update_lock = asyncio.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._requests: Set[asyncio.Task] = set()
        self._connections: Set[asyncio.Task] = set()
        self._tokens: Set[CancelToken] = set()
        self._sequence = 0
        self._started_at = perf_counter()
        self._log = None
        # Reserve recursion capacity once; request engines opt out of
        # the per-construction adjustment.
        Engine.ensure_recursion_capacity(self.options.max_depth)

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener (TCP or UNIX socket) and start accepting."""
        if self.options.log_path:
            self._log = open(self.options.log_path, "a", encoding="utf-8")
        if self.options.unix_path:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self.options.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.options.host,
                port=self.options.port,
            )

    @property
    def address(self) -> str:
        """The bound address (``host:port`` or the UNIX-socket path)."""
        if self.options.unix_path:
            return self.options.unix_path
        assert self._server is not None, "server not started"
        host, port = self._server.sockets[0].getsockname()[:2]
        return f"{host}:{port}"

    async def serve_forever(self) -> None:
        """Serve until a signal (or :meth:`initiate_drain`) stops us.

        SIGINT/SIGTERM handlers are installed when the platform and
        thread allow it (the CLI path); otherwise callers trigger the
        drain programmatically.
        """
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.initiate_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread / unsupported platform
        await self._drain_requested.wait()
        await self.shutdown()

    def initiate_drain(self) -> None:
        """Begin a graceful drain (idempotent, signal-handler safe)."""
        if not self.draining:
            self.draining = True
            self._drain_requested.set()

    async def shutdown(self) -> None:
        """Drain: stop listening, let work finish, cancel stragglers."""
        self.draining = True
        self._drain_requested.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [task for task in self._requests if not task.done()]
        if pending:
            _done, late = await asyncio.wait(
                pending, timeout=self.options.drain_timeout
            )
            if late:
                for token in list(self._tokens):
                    token.cancel("server drain")
                _done, late = await asyncio.wait(
                    late, timeout=1.0 + self.options.grace
                )
                for task in late:  # truly wedged: abandon
                    task.cancel()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self.executor.shutdown()
        if self._log is not None:
            self._log.close()
            self._log = None

    # -- telemetry --------------------------------------------------------

    def _emit(
        self,
        action: str,
        request_id: str,
        op: str,
        generation: int,
        status: Optional[str] = None,
        seconds: Optional[float] = None,
    ) -> None:
        event = RequestEvent(
            action=action,
            request_id=request_id,
            op=op,
            generation=generation,
            queue_depth=self.admission.queued,
            inflight=self.admission.inflight,
            status=status,
            seconds=seconds,
        )
        self.events.emit(event)
        if self._log is not None:
            self._log.write(json.dumps(event.to_record()) + "\n")
            self._log.flush()

    def stats(self) -> Dict[str, object]:
        """The ``stats`` payload (also what the bench gate reads)."""
        backend: Dict[str, object] = dict(self.executor.stats())
        if self.backend_warning is not None:
            backend["capacity_warning"] = self.backend_warning
        payload: Dict[str, object] = {
            "generation": self.store.generation,
            "draining": self.draining,
            "uptime_s": round(perf_counter() - self._started_at, 3),
            "protocol": PROTOCOL_VERSION,
            "engine_calls": self.recorder.calls,
            "backend": backend,
        }
        payload.update(self.admission.snapshot())
        return payload

    # -- connection handling ----------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        conn_tasks: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._serve_line(line, writer, write_lock)
                )
                for registry in (self._requests, conn_tasks):
                    registry.add(task)
                    task.add_done_callback(registry.discard)
        finally:
            # A half-closed client (sent its requests, shut down its
            # write side) still deserves its responses: wait for this
            # connection's in-flight requests before closing.
            if conn_tasks:
                await asyncio.gather(*conn_tasks, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        response: Dict[str, object],
    ) -> None:
        from .protocol import encode

        try:
            async with lock:
                writer.write(encode(response))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; the work is already accounted

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            message = decode_line(line)
        except ProtocolError as exc:
            await self._send(
                writer, write_lock, error_response(None, STATUS_ERROR, str(exc))
            )
            return
        request_id = message.get("id")
        op = message["op"]
        try:
            if op == "query":
                response = await self._run_query(message)
            elif op == "update":
                response = await self._run_update(message)
            elif op == "ping":
                response = {
                    "status": STATUS_OK,
                    "generation": self.store.generation,
                    "protocol": PROTOCOL_VERSION,
                }
            else:  # stats
                response = {"status": STATUS_OK, **self.stats()}
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # a handler bug must not kill the connection
            response = error_response(
                request_id, STATUS_ERROR, f"internal error: {exc!r}"
            )
        response.setdefault("id", request_id)
        await self._send(writer, write_lock, response)

    # -- request ids / field validation -----------------------------------

    def _request_id(self, message: Dict[str, object]) -> str:
        self._sequence += 1
        client_id = message.get("id")
        return str(client_id) if client_id is not None else f"#{self._sequence}"

    @staticmethod
    def _number_field(
        message: Dict[str, object], name: str, default: Optional[float]
    ) -> Optional[float]:
        """A positive-number field; present-but-null disables the bound."""
        if name not in message:
            return default
        raw = message[name]
        if raw is None:
            return None
        if isinstance(raw, bool) or not isinstance(raw, (int, float)) or raw <= 0:
            raise ProtocolError(f"{name} must be a positive number or null")
        return float(raw)

    # -- query path -------------------------------------------------------

    async def _run_query(self, message: Dict[str, object]) -> Dict[str, object]:
        request_id = self._request_id(message)
        client_id = message.get("id")
        query = message.get("query")
        if not isinstance(query, str) or not query.strip():
            return error_response(
                client_id, STATUS_ERROR, "query must be a non-empty string"
            )
        try:
            timeout = self._number_field(
                message, "timeout", self.options.default_timeout
            )
            limit_raw = self._number_field(
                message, "limit", self.options.max_solutions
            )
        except ProtocolError as exc:
            return error_response(client_id, STATUS_ERROR, str(exc))
        limit = None if limit_raw is None else int(limit_raw)
        if self.draining:
            self._emit("rejected", request_id, "query",
                       self.store.generation, status=STATUS_UNAVAILABLE)
            return error_response(
                client_id, STATUS_UNAVAILABLE, "server is draining",
                generation=self.store.generation,
            )
        arrived = perf_counter()
        decision = await self.admission.acquire()
        if not decision.admitted:
            self._emit("rejected", request_id, "query",
                       self.store.generation, status=STATUS_REJECTED)
            return error_response(
                client_id, STATUS_REJECTED,
                f"saturated: {self.admission.max_inflight} in flight, "
                f"{decision.queue_depth} queued (shed rather than queue "
                f"unboundedly)",
                generation=self.store.generation,
            )
        # Pin the program version at admission: everything this request
        # sees comes from this snapshot, regardless of later updates.
        snapshot = self.store.current
        self._emit("admitted", request_id, "query", snapshot.generation)
        token = CancelToken()
        budget = Budget(
            deadline=timeout,
            calls=self.options.max_calls,
            solutions=limit,
            token=token,
        )
        self._tokens.add(token)
        cancelled = False
        try:
            self._emit("started", request_id, "query", snapshot.generation)
            job = QueryJob(
                snapshot=snapshot,
                query=query,
                timeout=timeout,
                limit=limit,
                max_calls=self.options.max_calls,
                table_all=self.options.table_all,
                max_depth=self.options.max_depth,
                eval_strategy=self.options.eval_strategy,
                budget=budget,
                recorder=self.recorder,
            )
            work = asyncio.ensure_future(self.executor.run_query(job))
            try:
                if timeout is None:
                    payload = await work
                else:
                    # The engine honours the deadline cooperatively; the
                    # watchdog only fires for wedged threads (blocking
                    # sleeps, injected hangs) and answers the client at
                    # deadline + grace while cancelling the token. The
                    # process backend kills its own worker at the same
                    # point and raises DeadlineExceeded before this
                    # backstop — the extra slack keeps the two watchdogs
                    # from racing each other.
                    backstop = timeout + self.options.grace
                    if isinstance(self.executor, ProcessExecutor):
                        backstop += self.options.grace + 5.0
                    payload = await asyncio.wait_for(
                        asyncio.shield(work), backstop
                    )
                if payload.get("degraded"):
                    self._emit(
                        "degraded", request_id, "query", snapshot.generation
                    )
                status = STATUS_OK
                response: Dict[str, object] = {
                    "id": client_id,
                    "status": STATUS_OK,
                    "generation": snapshot.generation,
                }
                response.update(payload)
            except asyncio.TimeoutError:
                token.cancel("deadline watchdog")
                work.add_done_callback(_swallow_task_error)
                cancelled = True
                status = STATUS_TIMEOUT
                response = error_response(
                    client_id, STATUS_TIMEOUT,
                    f"deadline of {timeout:g}s exceeded "
                    f"(request abandoned by watchdog)",
                    generation=snapshot.generation,
                )
            except DeadlineExceeded as exc:
                status = STATUS_TIMEOUT
                response = error_response(
                    client_id, STATUS_TIMEOUT, str(exc),
                    generation=snapshot.generation,
                )
            except QueryCancelled as exc:
                cancelled = True
                status = STATUS_CANCELLED
                response = error_response(
                    client_id, STATUS_CANCELLED, str(exc),
                    generation=snapshot.generation,
                )
            except BudgetExceededError as exc:
                status = STATUS_EXHAUSTED
                response = error_response(
                    client_id, STATUS_EXHAUSTED, str(exc),
                    generation=snapshot.generation,
                )
            except ReproError as exc:
                status = STATUS_ERROR
                response = error_response(
                    client_id, STATUS_ERROR, str(exc),
                    generation=snapshot.generation,
                )
        finally:
            self._tokens.discard(token)
            self.admission.release()
        self._emit(
            "cancelled" if cancelled else "completed",
            request_id, "query", snapshot.generation,
            status=status, seconds=perf_counter() - arrived,
        )
        return response

    # -- update path ------------------------------------------------------

    async def _run_update(self, message: Dict[str, object]) -> Dict[str, object]:
        request_id = self._request_id(message)
        client_id = message.get("id")
        asserts = message.get("assert", [])
        retracts = message.get("retract", [])
        for name, chunks in (("assert", asserts), ("retract", retracts)):
            if not isinstance(chunks, list) or not all(
                isinstance(chunk, str) for chunk in chunks
            ):
                return error_response(
                    client_id, STATUS_ERROR,
                    f"{name} must be a list of strings",
                )
        if not asserts and not retracts:
            return error_response(
                client_id, STATUS_ERROR,
                "update needs at least one assert or retract",
            )
        if self.draining:
            self._emit("rejected", request_id, "update",
                       self.store.generation, status=STATUS_UNAVAILABLE)
            return error_response(
                client_id, STATUS_UNAVAILABLE, "server is draining",
                generation=self.store.generation,
            )
        arrived = perf_counter()
        self._emit("admitted", request_id, "update", self.store.generation)
        # One writer at a time; readers are never blocked — they run on
        # their pinned snapshots while the next generation builds here.
        async with self._update_lock:
            base = self.store.current
            self._emit("started", request_id, "update", base.generation)
            try:
                result = await self.executor.run(
                    self.store.build, base, asserts, retracts
                )
            except ReproError as exc:
                self._emit("completed", request_id, "update", base.generation,
                           status=STATUS_ERROR,
                           seconds=perf_counter() - arrived)
                return error_response(
                    client_id, STATUS_ERROR, str(exc),
                    generation=base.generation,
                )
            snapshot = self.store.publish(result)
        self._emit("completed", request_id, "update", snapshot.generation,
                   status=STATUS_OK, seconds=perf_counter() - arrived)
        return {
            "id": client_id,
            "status": STATUS_OK,
            "generation": snapshot.generation,
            "asserted": result.asserted,
            "retracted": result.retracted,
        }


def _swallow_task_error(task: asyncio.Task) -> None:
    """Consume an abandoned worker's eventual exception (no loop noise)."""
    if not task.cancelled():
        task.exception()


class ServerThread:
    """Run a :class:`QueryServer` on a dedicated event-loop thread.

    The harness tests and ``benchmarks/serve_bench.py`` use — clients
    then drive the server with plain blocking sockets from the calling
    thread. ``start()`` returns the bound address; ``stop()`` drains
    and joins.
    """

    def __init__(self, database: Database, options: Optional[ServeOptions] = None):
        self.server = QueryServer(database, options)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> str:
        """Start the loop thread; returns the bound address once ready."""
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serve-loop",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server failed to start within 10s")
        return self.server.address

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.server.serve_forever()

    def initiate_drain(self) -> None:
        """Request a graceful drain from any thread."""
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self.server.initiate_drain)

    def stop(self, join_timeout: float = 15.0) -> None:
        """Drain the server and join the loop thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            return
        self.initiate_drain()
        self._thread.join(timeout=join_timeout)

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()
