"""Admission control: a bounded queue that sheds load when saturated.

Unbounded queueing is the classic failure mode of a saturated server —
latency grows without bound while every client still believes its
request is "in progress". The controller here enforces two small
numbers instead:

* ``max_inflight`` — requests actually executing (each occupies one
  backend executor slot);
* ``max_queue``    — requests admitted but waiting for a slot.

A request that arrives when both are full is **rejected immediately**
(:data:`~repro.serve.protocol.STATUS_REJECTED`, CLI exit 4) — the
client learns within one round-trip that it should back off or try
another replica, and the server's memory stays bounded no matter the
offered load.

Single-threaded by construction: every method runs on the server's
event loop, so plain counters suffice — no locks. Waiters are FIFO
futures; a waiter whose task was cancelled (client disconnected while
queued) is skipped at grant time.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, Optional

__all__ = ["AdmissionController", "AdmissionDecision"]


class AdmissionDecision:
    """What happened to one arrival: admitted (maybe after queueing) or
    rejected, plus the queue depth observed at arrival (telemetry)."""

    __slots__ = ("admitted", "queued", "queue_depth")

    def __init__(self, admitted: bool, queued: bool, queue_depth: int):
        self.admitted = admitted
        #: Did the request wait for a slot before being admitted?
        self.queued = queued
        #: Waiting requests at the moment of arrival (before this one).
        self.queue_depth = queue_depth


class AdmissionController:
    """Bounded in-flight + bounded queue, FIFO, with shed counters."""

    def __init__(self, max_inflight: int = 8, max_queue: int = 16):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.inflight = 0
        #: High-water mark of concurrently executing requests.
        self.peak_inflight = 0
        #: Totals since construction (stats op / benchmark gate).
        self.admitted_total = 0
        self.rejected_total = 0
        self.completed_total = 0
        self._waiters: Deque[asyncio.Future] = deque()

    @property
    def queued(self) -> int:
        """Requests currently waiting for an execution slot."""
        return sum(1 for waiter in self._waiters if not waiter.done())

    async def acquire(self) -> AdmissionDecision:
        """Admit or reject one arrival; admitted requests may wait.

        Returns once the request either holds an execution slot or has
        been shed. An admitted caller **must** pair this with
        :meth:`release` (use ``try/finally``). Cancellation while
        queued is safe: the slot goes to the next waiter.
        """
        depth = self.queued
        if self.inflight < self.max_inflight:
            self._grant()
            return AdmissionDecision(True, False, depth)
        if depth >= self.max_queue:
            self.rejected_total += 1
            return AdmissionDecision(False, False, depth)
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        try:
            await waiter
        except asyncio.CancelledError:
            # Disconnected while queued. If the grant already landed,
            # pass the slot on rather than leaking it.
            if waiter.done() and not waiter.cancelled():
                self._release_slot()
            raise
        return AdmissionDecision(True, True, depth)

    def release(self) -> None:
        """Return one execution slot; wakes the oldest live waiter."""
        self.completed_total += 1
        self._release_slot()

    # -- internals --------------------------------------------------------

    def _grant(self) -> None:
        self.inflight += 1
        self.admitted_total += 1
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight

    def _release_slot(self) -> None:
        self.inflight -= 1
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                self._grant()
                waiter.set_result(None)
                return

    def snapshot(self) -> Dict[str, int]:
        """Counter snapshot for the ``stats`` op and the bench gate."""
        return {
            "inflight": self.inflight,
            "queued": self.queued,
            "peak_inflight": self.peak_inflight,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "admitted": self.admitted_total,
            "rejected": self.rejected_total,
            "completed": self.completed_total,
        }
