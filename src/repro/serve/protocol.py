"""The wire protocol of ``repro serve``: newline-delimited JSON.

One request per line, one response per line, over TCP or a UNIX
socket. Requests are JSON objects with an ``op`` discriminator::

    {"op": "query",  "id": "1", "query": "p(X)", "limit": 10, "timeout": 2.0}
    {"op": "update", "id": "2", "assert": ["fact(a)."], "retract": ["fact/1"]}
    {"op": "ping",   "id": "3"}
    {"op": "stats",  "id": "4"}

``id`` is an opaque client-chosen correlation token echoed back on the
response (the server processes a connection's requests concurrently, so
responses may arrive out of order). Every response carries ``status``:

* ``ok``          — the request completed; payload fields follow;
* ``error``       — bad request / program error (parse failure,
  unknown predicate, uncaught ball, ...);
* ``timeout``     — the request's wall-clock deadline expired;
* ``exhausted``   — a non-deadline budget (calls/steps) ran out;
* ``cancelled``   — the request was cancelled (drain, disconnect);
* ``rejected``    — admission control shed the request (queue full);
* ``unavailable`` — the server is draining and takes no new work.

:data:`STATUS_EXIT` maps each status to the CLI exit-code taxonomy
(``repro.cli``): 0 success, 2 error, 3 resource
(``EXIT_RESOURCE``), 4 unavailable (``EXIT_UNAVAILABLE`` — admission
rejection and unreachable-server failures share it, so a load balancer
can treat both as "try another replica"). The numbers are duplicated
here as literals so the protocol layer never imports the CLI;
``tests/serve/test_protocol.py`` pins the two tables against each other.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_TIMEOUT",
    "STATUS_EXHAUSTED",
    "STATUS_CANCELLED",
    "STATUS_REJECTED",
    "STATUS_UNAVAILABLE",
    "STATUS_EXIT",
    "OPS",
    "encode",
    "decode_line",
    "error_response",
    "status_exit_code",
]

PROTOCOL_VERSION = 1

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
STATUS_EXHAUSTED = "exhausted"
STATUS_CANCELLED = "cancelled"
STATUS_REJECTED = "rejected"
STATUS_UNAVAILABLE = "unavailable"

#: Request operations the server understands.
OPS = ("query", "update", "ping", "stats")

#: Response status -> process exit code (see repro.cli EXIT_* constants).
STATUS_EXIT: Dict[str, int] = {
    STATUS_OK: 0,
    STATUS_ERROR: 2,
    STATUS_TIMEOUT: 3,
    STATUS_EXHAUSTED: 3,
    STATUS_CANCELLED: 3,
    STATUS_REJECTED: 4,
    STATUS_UNAVAILABLE: 4,
}


class ProtocolError(ReproError):
    """A request line the server could not interpret."""


def encode(message: Dict[str, object]) -> bytes:
    """One message as a newline-terminated JSON line (UTF-8)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, object]:
    """Parse one request line; raises :class:`ProtocolError` on garbage.

    Validation is shallow on purpose — per-op field checking happens in
    the server so errors can be answered on the connection (with the
    offending ``id`` echoed back) instead of dropping it.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable request line: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})")
    return message


def error_response(
    request_id: Optional[object],
    status: str,
    error: str,
    **fields: object,
) -> Dict[str, object]:
    """A non-``ok`` response carrying a human-readable ``error``."""
    response: Dict[str, object] = {"id": request_id, "status": status,
                                   "error": error}
    response.update(fields)
    return response


def status_exit_code(status: str) -> int:
    """The CLI exit code for a response status (unknown -> error, 2)."""
    return STATUS_EXIT.get(status, STATUS_EXIT[STATUS_ERROR])
