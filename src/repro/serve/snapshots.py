"""Generation-pinned program snapshots for concurrent serving.

The paper's machinery assumes the program is fixed while a query runs;
a server accepting updates concurrently with queries must make that
assumption *true per request* rather than globally. The model here is
copy-on-write multi-versioning over whole databases:

* a :class:`Snapshot` is an immutable-by-convention handle pairing one
  :class:`~repro.prolog.database.Database` with the server-side
  generation number it was published under (plus the database's
  per-predicate generation watermarks, for telemetry and cache keys);
* the :class:`SnapshotStore` holds the *current* snapshot. Readers pin
  ``store.current`` once, at admission, and run their whole query
  against that handle — the underlying database is never mutated after
  publication, so a reader can never observe a torn program;
* updates build the **next** database off to the side
  (:meth:`SnapshotStore.build` — a generation-preserving
  :meth:`Database.snapshot` copy plus the asserted/retracted terms) and
  then :meth:`publish` it. Publication is one attribute assignment,
  atomic under the GIL, so concurrent readers see either the old
  snapshot or the new one, never a mixture.

Laziness makes the shared-read case safe too: a published database's
clause index and compiled-skeleton caches fill in lazily under
concurrent readers, but both caches are keyed by the (now frozen)
generation counter and rebuild idempotently — a racing duplicate
computation produces an identical value, and stored clause terms are
never bound during execution (resolution renames or instantiates from
skeletons), so sharing one snapshot across engine threads is sound.
"""

from __future__ import annotations

import re
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import PrologSyntaxError
from ..prolog.database import Database
from ..prolog.reader.parser import Parser, parse_term
from ..prolog.terms import structural_eq

__all__ = ["Snapshot", "SnapshotStore", "UpdateResult"]

Indicator = Tuple[str, int]

#: ``name/arity`` retract shorthand (whole-predicate removal).
_INDICATOR_RE = re.compile(r"^\s*([a-z][A-Za-z0-9_]*)\s*/\s*(\d+)\s*$")


class Snapshot:
    """One published program version: pin it once, use it for the whole
    request.

    ``generation`` is the store's monotonically increasing publication
    counter (0 for the program the server was started with); ``marks``
    is the frozen :meth:`Database.predicate_marks` map at publication
    time, which generation-scoped caches can diff against a later
    snapshot's to see exactly which predicates changed.
    """

    __slots__ = ("database", "generation", "marks", "published_at")

    def __init__(self, database: Database, generation: int):
        self.database = database
        self.generation = generation
        self.marks: Dict[Indicator, int] = database.predicate_marks()
        #: ``perf_counter()`` at publication (latency/age telemetry).
        self.published_at = perf_counter()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Snapshot gen={self.generation} "
            f"predicates={len(self.marks)} clauses={len(self.database)}>"
        )


class UpdateResult:
    """What one :meth:`SnapshotStore.build` produced, pre-publication."""

    __slots__ = ("snapshot", "asserted", "retracted")

    def __init__(self, snapshot: Snapshot, asserted: int, retracted: int):
        self.snapshot = snapshot
        self.asserted = asserted
        self.retracted = retracted


class SnapshotStore:
    """The current snapshot plus the build/publish update protocol.

    The store itself does no locking: the *server* serializes update
    builds (one writer at a time), and publication is a single
    attribute store. Readers only ever touch :attr:`current`.
    """

    def __init__(self, database: Database):
        self._current = Snapshot(database, 0)

    @property
    def current(self) -> Snapshot:
        """The latest published snapshot (atomic read; pin at admission)."""
        return self._current

    @property
    def generation(self) -> int:
        return self._current.generation

    # -- updates ----------------------------------------------------------

    def build(
        self,
        base: Snapshot,
        asserts: Iterable[str] = (),
        retracts: Iterable[str] = (),
    ) -> UpdateResult:
        """Build (but do not publish) the next generation off ``base``.

        ``asserts`` are Prolog source chunks (clauses and/or
        directives, each ending in ``.``); ``retracts`` are either
        ``name/arity`` indicators (remove the whole predicate) or
        clause texts (remove every structurally equal stored clause —
        ``retract``-style, but idempotent). A retract that matches
        nothing counts zero rather than failing, mirroring ``retract/1``
        failure semantics. Malformed source raises
        :class:`~repro.errors.PrologSyntaxError` and nothing is
        published — the caller reports the error and the current
        generation stands.
        """
        database = base.database.snapshot()
        asserted = 0
        retracted = 0
        for chunk in retracts:
            retracted += _apply_retract(database, chunk)
        for chunk in asserts:
            before = len(database) + len(database.directives)
            for term in Parser(chunk, database.operators).read_program():
                database.add_term(term)
            asserted += len(database) + len(database.directives) - before
        snapshot = Snapshot(database, base.generation + 1)
        return UpdateResult(snapshot, asserted, retracted)

    def publish(self, result: UpdateResult) -> Snapshot:
        """Atomically swap the built snapshot in; returns it.

        Rejects stale builds (a racing writer already published past
        the build's base) instead of silently losing their updates —
        the server's update lock makes this unreachable, but a direct
        library user gets a loud error rather than a lost write.
        """
        snapshot = result.snapshot
        if snapshot.generation != self._current.generation + 1:
            raise RuntimeError(
                f"stale update build: built generation {snapshot.generation} "
                f"but current is {self._current.generation}"
            )
        self._current = snapshot
        return snapshot


def _apply_retract(database: Database, spec: str) -> int:
    """Apply one retract spec to ``database``; returns clauses removed."""
    match = _INDICATOR_RE.match(spec)
    if match is not None:
        indicator = (match.group(1), int(match.group(2)))
        removed = len(database.clauses(indicator))
        if removed:
            database.remove_predicate(indicator)
        return removed
    target = parse_term(spec, database.operators)
    from ..prolog.database import split_clause

    head, _body = split_clause(target)
    from ..prolog.terms import functor_indicator

    try:
        indicator = functor_indicator(head)
    except Exception:
        raise PrologSyntaxError(f"retract: not a clause or indicator: {spec!r}")
    kept = [
        clause
        for clause in database.clauses(indicator)
        if not structural_eq(clause.to_term(), target)
    ]
    removed = len(database.clauses(indicator)) - len(kept)
    if removed:
        if kept:
            database.replace_predicate(indicator, kept)
        else:
            database.remove_predicate(indicator)
    return removed
