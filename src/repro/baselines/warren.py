"""Warren's reordering method (paper §I-E) — the baseline.

Warren [25] gave each goal "the factor by which the goal multiplies the
number of alternatives the system must consider": the predicate's tuple
count divided by the product of the domain sizes of its instantiated
argument positions. Conjunctions are ordered greedily, repeatedly
picking the goal with the smallest factor given the variables already
instantiated — cheapest tests first, generators last.

Differences from the Markov method that the ablation benchmark probes:
Warren's function "considers only the number of solutions, not their
costs", does not model backtracking, and was applied only to top-level
conjunctive queries; we additionally let it loose on clause bodies so
the two methods can be compared program-wide. Because Warren's setting
was pure database queries, the program-wide extension needs two minimal
safety rules from the paper's own §IV machinery to stay sound on real
programs: *semifixed* goals wait until their culprit variables are
bound, and clauses containing *fixed* (side-effecting) goals are left
in source order.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..analysis.declarations import Declarations
from ..analysis.domains import DomainAnalysis
from ..prolog.database import Clause, Database, body_goals, goals_to_body
from ..prolog.terms import (
    Atom,
    Struct,
    Term,
    Var,
    deref,
    functor_indicator,
    term_variables,
)
from ..analysis.modes import Mode, ModeItem

__all__ = ["WarrenReorderer"]

Indicator = Tuple[str, int]


class WarrenReorderer:
    """Greedy goal ordering by Warren's domain-size cost function."""

    def __init__(self, database: Database, declarations: Optional[Declarations] = None):
        self.database = database
        self.declarations = declarations or Declarations.from_database(database)
        self.domains = DomainAnalysis(database, self.declarations)
        from ..analysis.callgraph import CallGraph
        from ..analysis.fixity import FixityAnalysis
        from ..analysis.semifixity import SemifixityAnalysis

        graph = CallGraph(database)
        self._fixity = FixityAnalysis(database, graph, self.declarations)
        # No declarations here: declared-mode pins are only sound when a
        # legality checker enforces the declared modes, and Warren's
        # greedy ordering has none — every culprit variable must wait.
        self._semifixity = SemifixityAnalysis(database, graph, None)

    # -- the cost function ------------------------------------------------

    def goal_factor(self, goal: Term, bound: Set[int]) -> float:
        """Warren's multiplying factor for ``goal`` given bound variables.

        An argument counts as instantiated when it contains no unbound
        variable. Builtins and control constructs are outside Warren's
        database model; they get factor 1.0 once their variables are
        bound (a test) and infinity before (never scheduled ahead of
        the goals that bind them — Warren's queries only contained
        database goals, so this is the minimal extension that keeps the
        baseline runnable on rules with arithmetic).
        """
        goal = deref(goal)
        if not isinstance(goal, (Atom, Struct)):
            return 1.0
        indicator = functor_indicator(goal)
        # A semifixed goal must not run before its culprit variables are
        # bound (its result would change, §IV-C).
        if any(
            id(v) not in bound
            for v in self._semifixity.culprit_variables(goal)
        ):
            return float("inf")
        if not self.database.defines(indicator):
            if all(id(v) in bound for v in term_variables(goal)):
                return 1.0
            return float("inf")
        tuples = self.domains.tuple_count(indicator)
        if tuples == 0:  # a rule predicate: use its clause count
            tuples = max(1, len(self.database.clauses(indicator)))
        factor = float(tuples)
        if isinstance(goal, Struct):
            for position, arg in enumerate(goal.args, start=1):
                if self._instantiated(arg, bound):
                    factor /= self.domains.domain_size(indicator, position)
        return factor

    @staticmethod
    def _instantiated(arg: Term, bound: Set[int]) -> bool:
        return all(id(v) in bound for v in term_variables(arg))

    # -- ordering ---------------------------------------------------------------

    def order_goals(
        self, goals: Sequence[Term], bound_vars: Optional[Iterable[Var]] = None
    ) -> List[Term]:
        """Greedy minimum-factor ordering of a conjunction."""
        bound: Set[int] = {id(v) for v in (bound_vars or ())}
        remaining = list(goals)
        ordered: List[Term] = []
        while remaining:
            best_index = min(
                range(len(remaining)),
                key=lambda i: (self.goal_factor(remaining[i], bound), i),
            )
            chosen = remaining.pop(best_index)
            ordered.append(chosen)
            for variable in term_variables(chosen):
                bound.add(id(variable))
        return ordered

    def reorder_query(self, query: Term) -> Term:
        """Reorder a top-level conjunctive query (Warren's original use)."""
        return goals_to_body(self.order_goals(body_goals(query)))

    def reorder_program(self, mode_assumption: str = "free") -> Database:
        """Reorder every clause body greedily (program-wide extension).

        ``mode_assumption`` controls which head variables count as bound
        when a body is ordered: ``"free"`` (queries arrive open) or
        ``"ground"`` (queries arrive fully instantiated).
        """
        output = Database(indexing=self.database.indexing)
        for indicator in self.database.predicates():
            for clause in self.database.clauses(indicator):
                goals = body_goals(clause.body)
                reorderable = not self._fixity.clause_is_fixed(
                    clause.body
                ) and all(
                    not isinstance(deref(g), Atom)
                    or deref(g).name not in ("!", "fail", "false")
                    for g in goals
                )
                if reorderable:
                    head_vars = (
                        term_variables(clause.head)
                        if mode_assumption == "ground"
                        else []
                    )
                    goals = self.order_goals(goals, head_vars)
                output.add_clause(Clause(clause.head, goals_to_body(goals)))
        output.directives = list(self.database.directives)
        output.tabled = set(self.database.tabled)
        return output
