"""Baseline reordering methods the paper compares against."""

from .warren import WarrenReorderer

__all__ = ["WarrenReorderer"]
