"""Reproduction of Gooley & Wah, "Efficient Reordering of Prolog
Programs" (ICDE 1988 / IEEE TKDE 1989).

Top-level convenience imports; see DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"
