"""Pipeline spans: named, accumulating wall-clock timers.

The reordering pipeline (paper Fig. 3) runs ten distinguishable phases
— reading declarations, building the call graph, fixity, semifixity,
mode inference, empirical calibration, the per-block goal search, the
``p/c`` clause ordering, mode specialisation, and unfolding. A
:class:`SpanRecorder` times each of them: phases that run many times
(the goal search runs once per mobile block) *accumulate* into a single
span carrying a total duration and an entry count, so the export stays
one record per phase regardless of program size.

Phases that were skipped (``unfold_rounds=0``, calibration disabled)
are still materialised as zero-duration records with ``skipped: true``,
so consumers of the JSONL stream always see the full phase vocabulary.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = ["PIPELINE_PHASES", "Span", "SpanRecorder"]

#: The canonical phase names of the reordering pipeline, in order.
PIPELINE_PHASES = (
    "unfold",
    "declarations",
    "call graph",
    "fixity",
    "semifixity",
    "mode inference",
    "calibration",
    "goal search",
    "clause order",
    "specialize",
)


@dataclass
class Span:
    """One named phase: accumulated duration, entry count, metadata."""

    name: str
    seconds: float = 0.0
    count: int = 0
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def skipped(self) -> bool:
        """True when the phase was materialised but never entered."""
        return self.count == 0

    def to_record(self) -> Dict[str, object]:
        """The span as one JSONL-ready dict."""
        record: Dict[str, object] = {
            "type": "span",
            "name": self.name,
            "seconds": self.seconds,
            "count": self.count,
            "skipped": self.skipped,
        }
        if self.meta:
            record["meta"] = dict(self.meta)
        return record


class SpanRecorder:
    """Collects :class:`Span` objects, one per distinct name."""

    def __init__(self) -> None:
        self._spans: Dict[str, Span] = {}

    def _get(self, name: str) -> Span:
        span = self._spans.get(name)
        if span is None:
            span = Span(name)
            self._spans[name] = span
        return span

    @contextmanager
    def span(self, name: str, **meta: object) -> Iterator[Span]:
        """Time one entry of phase ``name``; repeated entries accumulate."""
        span = self._get(name)
        span.meta.update(meta)
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.seconds += time.perf_counter() - started
            span.count += 1

    def mark_skipped(self, name: str, **meta: object) -> Span:
        """Materialise a phase as present-but-skipped (no time charged)."""
        span = self._get(name)
        span.meta.update(meta)
        return span

    def ensure(self, names: Iterable[str] = PIPELINE_PHASES) -> None:
        """Materialise every named phase not yet seen as skipped."""
        for name in names:
            self._get(name)

    def get(self, name: str) -> Optional[Span]:
        """The span of one phase, or None when never materialised."""
        return self._spans.get(name)

    def spans(self) -> List[Span]:
        """All spans, in first-materialisation order."""
        return list(self._spans.values())

    def to_records(self) -> List[Dict[str, object]]:
        """One JSONL-ready dict per span."""
        return [span.to_record() for span in self.spans()]

    def format(self) -> str:
        """A small human-readable table (name, seconds, count)."""
        lines = []
        for span in self.spans():
            state = "skipped" if span.skipped else f"{span.seconds * 1e3:9.3f} ms x{span.count}"
            lines.append(f"  {span.name:<16} {state}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._spans)
