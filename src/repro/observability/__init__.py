"""Observability: the telemetry substrate of the reproduction.

Four layers, all optional and zero-overhead when unused:

* :mod:`.events` — a typed event bus fed by the engine (Byrd ports,
  unifications, choice points, per-predicate wall time) and the clause
  database (index hits/misses);
* :mod:`.spans`  — accumulating wall-clock timers over the ten
  reordering-pipeline phases;
* :mod:`.drift`  — predicted-vs-observed statistics per (predicate,
  mode), flagging where the Markov model needs calibration;
* :mod:`.streaming` — the continuous layer: sampling ring-buffer
  recorder, mergeable per-predicate aggregates, live drift monitoring,
  Perfetto export (safe to leave attached under sustained load);
* :mod:`.export` — JSONL serialization of all of the above.

``repro profile FILE QUERY --json out.jsonl`` drives everything from
the command line; docs/OBSERVABILITY.md documents the record schema.

Note: :mod:`.drift` and :mod:`.streaming.monitor` are intentionally
not imported here — they depend on the engine/model layers, which
themselves import :mod:`.events`; import them as
``from repro.observability.drift import DriftReporter`` and
``from repro.observability.streaming.monitor import DriftMonitor``.
"""

from .events import (
    CacheEvent,
    ChoicePointEvent,
    Event,
    EventBus,
    IndexEvent,
    PortEvent,
    PredicateTimeEvent,
    TableEvent,
    UnifyEvent,
    attach,
    detach,
)
from .events import DriftEvent
from .export import (
    SCHEMA_VERSION,
    degenerate_record,
    event_records,
    metrics_record,
    profile_header,
    records_to_jsonl,
    report_records,
    solutions_record,
    write_jsonl,
)
from .spans import PIPELINE_PHASES, Span, SpanRecorder

__all__ = [
    "Event",
    "EventBus",
    "PortEvent",
    "IndexEvent",
    "ChoicePointEvent",
    "UnifyEvent",
    "PredicateTimeEvent",
    "TableEvent",
    "CacheEvent",
    "DriftEvent",
    "attach",
    "detach",
    "PIPELINE_PHASES",
    "Span",
    "SpanRecorder",
    "SCHEMA_VERSION",
    "degenerate_record",
    "profile_header",
    "event_records",
    "metrics_record",
    "solutions_record",
    "report_records",
    "records_to_jsonl",
    "write_jsonl",
]
