"""Observability: the telemetry substrate of the reproduction.

Four layers, all optional and zero-overhead when unused:

* :mod:`.events` — a typed event bus fed by the engine (Byrd ports,
  unifications, choice points, per-predicate wall time) and the clause
  database (index hits/misses);
* :mod:`.spans`  — accumulating wall-clock timers over the ten
  reordering-pipeline phases;
* :mod:`.drift`  — predicted-vs-observed statistics per (predicate,
  mode), flagging where the Markov model needs calibration;
* :mod:`.export` — JSONL serialization of all of the above.

``repro profile FILE QUERY --json out.jsonl`` drives everything from
the command line; docs/OBSERVABILITY.md documents the record schema.

Note: :mod:`.drift` is intentionally not imported here — it depends on
the engine, which itself imports :mod:`.events`; import it as
``from repro.observability.drift import DriftReporter``.
"""

from .events import (
    CacheEvent,
    ChoicePointEvent,
    Event,
    EventBus,
    IndexEvent,
    PortEvent,
    PredicateTimeEvent,
    TableEvent,
    UnifyEvent,
    attach,
    detach,
)
from .export import (
    SCHEMA_VERSION,
    event_records,
    metrics_record,
    profile_header,
    records_to_jsonl,
    report_records,
    solutions_record,
    write_jsonl,
)
from .spans import PIPELINE_PHASES, Span, SpanRecorder

__all__ = [
    "Event",
    "EventBus",
    "PortEvent",
    "IndexEvent",
    "ChoicePointEvent",
    "UnifyEvent",
    "PredicateTimeEvent",
    "TableEvent",
    "CacheEvent",
    "attach",
    "detach",
    "PIPELINE_PHASES",
    "Span",
    "SpanRecorder",
    "SCHEMA_VERSION",
    "profile_header",
    "event_records",
    "metrics_record",
    "solutions_record",
    "report_records",
    "records_to_jsonl",
    "write_jsonl",
]
