"""Typed execution events and the event bus.

The paper's whole methodology is counting — "the number of predicate
calls or unifications; CPU time is too coarse a measure" (§I-B) — but
scalar counters cannot say *where* the calls went, whether the clause
index actually narrowed anything, or how the observed behaviour of a
predicate compares with what the Markov model predicted for it. The
event bus records a structured stream of those facts.

Design constraints:

* **zero overhead when disabled** — the engine and database hold
  ``events = None`` by default and guard every emission site with a
  single ``is not None`` test (the same convention as the four-port
  tracer), so the uninstrumented hot path never constructs an event;
* **typed events** — each record is a small dataclass with a ``kind``
  tag and a ``to_record()`` JSONL serializer, so consumers (the drift
  reporter, the CLI exporters, tests) never parse strings;
* **bounded memory** — the bus keeps at most ``limit`` events and
  counts the overflow instead of growing without bound.

This module deliberately imports nothing from the engine layer so the
engine can import it without cycles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Event",
    "PortEvent",
    "IndexEvent",
    "ChoicePointEvent",
    "UnifyEvent",
    "PredicateTimeEvent",
    "TableEvent",
    "StratumEvent",
    "CacheEvent",
    "BudgetEvent",
    "DegradedEvent",
    "FaultEvent",
    "DriftEvent",
    "RequestEvent",
    "EventBus",
    "attach",
    "detach",
]

Indicator = Tuple[str, int]


def _indicator_text(indicator: Indicator) -> str:
    return f"{indicator[0]}/{indicator[1]}"


@dataclass
class Event:
    """Common shape of every bus event: a kind tag plus a timestamp
    (``time.perf_counter()`` at construction, for ordering/latency)."""

    kind = "event"

    ts: float = field(default_factory=time.perf_counter, init=False)

    def to_record(self) -> Dict[str, object]:
        """The event as one flat JSONL-ready dict."""
        record: Dict[str, object] = {"type": "event", "kind": self.kind}
        for name, value in self.__dict__.items():
            if name == "ts":
                continue
            if name == "indicator":
                record["predicate"] = (
                    _indicator_text(value) if value is not None else None
                )
            else:
                record[name] = value
        record["ts"] = self.ts
        return record


@dataclass
class PortEvent(Event):
    """One Byrd-box port crossing of a real (non-control) goal.

    ``mode`` is the runtime calling mode — ``+`` per nonvar argument,
    ``-`` per unbound one — rendered like ``(+, -)``; it is recorded on
    the ``call`` port only (``None`` elsewhere).
    """

    kind = "port"

    port: str
    indicator: Indicator
    depth: int
    mode: Optional[str] = None


@dataclass
class IndexEvent(Event):
    """One clause-index consultation by ``Database.matching_clauses``.

    ``hit`` means a bound key selected a bucket; ``candidates`` is how
    many clauses survived out of ``total`` stored ones (a hit that does
    not narrow still reports ``candidates == total``). Under
    multi-argument indexing a hit additionally reports which argument
    ``position`` (0-based) won the selectivity contest and the achieved
    ``selectivity`` (``candidates / total``, lower is better); both stay
    ``None`` on misses and on the fixed single-position index modes.
    """

    kind = "index"

    indicator: Indicator
    hit: bool
    candidates: int
    total: int
    position: Optional[int] = None
    selectivity: Optional[float] = None


@dataclass
class ChoicePointEvent(Event):
    """A user-predicate activation that left alternatives to retry."""

    kind = "choicepoint"

    indicator: Indicator
    alternatives: int
    depth: int


@dataclass
class UnifyEvent(Event):
    """One head-unification attempt against a clause."""

    kind = "unify"

    indicator: Indicator
    succeeded: bool


@dataclass
class PredicateTimeEvent(Event):
    """Wall-clock time of one completed Byrd box (call through final
    fail), including all descendant work performed inside it."""

    kind = "wall"

    indicator: Indicator
    seconds: float


@dataclass
class TableEvent(Event):
    """One tabling-subsystem action on a call-variant table.

    ``action`` is one of ``hit`` (call found an existing table),
    ``miss`` (a new table was created), ``answer_added`` (the producer
    stored a new answer), or ``complete`` (the table reached its
    fixpoint). ``answers`` is the table's answer count at that moment.
    """

    kind = "table"

    action: str
    indicator: Indicator
    answers: int


@dataclass
class StratumEvent(Event):
    """One stratum materialized by the bottom-up (semi-naive) backend.

    Emitted once per recursion component the dispatcher evaluates
    bottom-up (:mod:`repro.prolog.bottomup`): ``predicates`` names the
    component as ``name/arity`` strings, ``backend`` is the evaluator
    that ran it (currently always ``bottomup`` — strata left to SLD
    resolution emit nothing), ``rounds`` the number of semi-naive
    iterations to fixpoint, ``delta_sizes`` the new-fact count per
    round, and ``facts`` the materialized relation size summed over the
    component's predicates.
    """

    kind = "stratum"

    predicates: Tuple[str, ...]
    backend: str
    rounds: int
    delta_sizes: List[int]
    facts: int

    def to_record(self) -> Dict[str, object]:
        """The event as one flat JSONL-ready dict (lists stay JSON-native)."""
        record = super().to_record()
        record["predicates"] = list(self.predicates)
        record["delta_sizes"] = list(self.delta_sizes)
        return record


@dataclass
class CacheEvent(Event):
    """One AnalysisContext cache consultation by the reorder pipeline.

    ``stage`` names the cached artefact (an analysis stage such as
    ``"fixity"``, a per-predicate ``"version build"``, or a
    ``"calibration"`` measurement); ``hit`` says whether it was served
    from cache or recomputed. Whole-program stages carry no
    ``indicator``.
    """

    kind = "cache"

    stage: str
    hit: bool
    indicator: Optional[Indicator] = None


@dataclass
class BudgetEvent(Event):
    """A resource budget ran out (see :class:`repro.robustness.Budget`).

    ``what`` names the exhausted bound (``deadline``, ``calls``,
    ``steps``, ``cancelled``); ``site`` is the charge site that noticed
    (``engine.call``, ``engine.step``, ``tabling.fixpoint``,
    ``goal_search.astar``, ...).
    """

    kind = "budget"

    what: str
    site: str


@dataclass
class DegradedEvent(Event):
    """The reorder pipeline degraded one predicate to source order.

    Emitted by the per-predicate failure isolation: ``phase`` is where
    the build failed (currently always ``build``), ``reason`` the
    one-line exception description. All other predicates are unaffected.
    """

    kind = "degraded"

    indicator: Indicator
    phase: str
    reason: str


@dataclass
class FaultEvent(Event):
    """An injected fault fired (:mod:`repro.robustness.faults`).

    ``site`` is the fault site, ``action`` the fault kind
    (``raise`` / ``hang`` / ``exhaust``). Only ever emitted while a
    fault plan is installed — never in production runs.
    """

    kind = "fault"

    site: str
    action: str


@dataclass
class DriftEvent(Event):
    """A (predicate, mode) crossed the drift threshold while being
    watched continuously.

    Emitted by the streaming
    :class:`~repro.observability.streaming.monitor.DriftMonitor` when
    the observed/predicted cost ratio or success-probability delta
    leaves the configured band (the same thresholds as the post-hoc
    drift reporter). ``scc`` names the predicate's whole recursion
    component as ``name/arity`` strings so the incremental pipeline can
    rebuild exactly the affected group; ``mark`` is the database's
    generation watermark for the predicate at emission time.
    """

    kind = "drift"

    indicator: Indicator
    mode: str
    cost_ratio: Optional[float]
    prob_delta: Optional[float]
    reasons: List[str]
    scc: Tuple[str, ...]
    mark: int

    def to_record(self) -> Dict[str, object]:
        """The event as one flat JSONL-ready dict (lists stay JSON-native)."""
        record = super().to_record()
        record["reasons"] = list(self.reasons)
        record["scc"] = list(self.scc)
        return record


@dataclass
class RequestEvent(Event):
    """One lifecycle transition of a server request (``repro serve``).

    ``action`` is one of ``admitted`` (an execution slot was granted,
    possibly after queueing), ``started`` (engine work began),
    ``completed`` (a response was written; ``status`` says which kind),
    ``rejected`` (admission control shed it — queue full or draining),
    ``cancelled`` (a deadline watchdog or drain cancelled it
    in-flight), or ``degraded`` (the process backend gave out on this
    request and it was answered by the threaded fallback).
    ``generation`` is the snapshot generation the request
    was pinned to at admission (-1 before pinning); ``queue_depth`` and
    ``inflight`` are the admission controller's counters at emission
    time, so a JSONL stream of these events reconstructs the server's
    load curve. ``seconds`` is admission-to-response latency, recorded
    on terminal actions only.
    """

    kind = "request"

    action: str
    request_id: str
    op: str
    generation: int
    queue_depth: int
    inflight: int
    status: Optional[str] = None
    seconds: Optional[float] = None


class EventBus:
    """Collects typed events up to ``limit``; counts overflow after."""

    __slots__ = ("events", "limit", "dropped")

    def __init__(self, limit: int = 1_000_000):
        self.events: List[Event] = []
        self.limit = limit
        self.dropped = 0

    def emit(self, event: Event) -> None:
        """Record one event (or count it as dropped past the limit)."""
        if len(self.events) < self.limit:
            self.events.append(event)
        else:
            self.dropped += 1

    @property
    def truncated(self) -> bool:
        """Did any event overflow the limit?"""
        return self.dropped > 0

    def by_kind(self, kind: str) -> List[Event]:
        """All events of one kind, in emission order."""
        return [event for event in self.events if event.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Event count per kind (ports additionally per port name)."""
        tally: Dict[str, int] = {}
        for event in self.events:
            tally[event.kind] = tally.get(event.kind, 0) + 1
            if isinstance(event, PortEvent):
                key = f"port.{event.port}"
                tally[key] = tally.get(key, 0) + 1
            elif isinstance(event, TableEvent):
                key = f"table.{event.action}"
                tally[key] = tally.get(key, 0) + 1
        return tally

    def predicate_wall_seconds(self) -> Dict[Indicator, float]:
        """Total boxed wall time per predicate (from ``wall`` events)."""
        totals: Dict[Indicator, float] = {}
        for event in self.events:
            if isinstance(event, PredicateTimeEvent):
                totals[event.indicator] = (
                    totals.get(event.indicator, 0.0) + event.seconds
                )
        return totals

    def clear(self) -> None:
        """Drop all collected events and the overflow count."""
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)


def attach(engine, bus: Optional[EventBus] = None) -> EventBus:
    """Attach a bus to an engine *and* its database; returns the bus.

    Duck-typed on purpose (no engine import): anything with ``events``
    and ``database.events`` attributes works.
    """
    bus = bus if bus is not None else EventBus()
    engine.events = bus
    engine.database.events = bus
    return bus


def detach(engine) -> Optional[EventBus]:
    """Detach and return the engine's bus (restores the fast path)."""
    bus = engine.events
    engine.events = None
    engine.database.events = None
    return bus
