"""JSONL export: serialize telemetry into machine-readable records.

Every record is one flat JSON object with a ``type`` discriminator:

* ``profile`` — run header (file, query, tool version);
* ``event``   — one bus event (see :mod:`.events`);
* ``span``    — one pipeline phase (see :mod:`.spans`);
* ``metrics`` — engine counters (:meth:`repro.prolog.metrics.Metrics.to_dict`);
* ``search``  — goal-search internals (:class:`repro.reorder.goal_search.SearchCounters`);
* ``report``  — the reorderer's decisions and warnings;
* ``drift``   — one calibration-drift comparison (see :mod:`.drift`);
* ``stream``  — one streaming per-(predicate, mode) aggregate (see
  :mod:`.streaming.aggregate`);
* ``sample``  — one sampled Byrd box (see :mod:`.streaming.recorder`);
* ``degenerate`` — a run produced no usable signal (e.g. zero calls);
* ``solutions`` — answer count (and optional rendered answers).

Schema version 2 adds the streaming record types and the
``dropped``/``sampled_rate`` header fields (how much of the stream the
bounded ring retained, and at what sampling rate). The schema is
documented in docs/OBSERVABILITY.md; benchmark trajectories
(BENCH_*.json) can be distilled from these streams.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, Iterator, List, Optional, Union

__all__ = [
    "SCHEMA_VERSION",
    "profile_header",
    "event_records",
    "metrics_record",
    "solutions_record",
    "degenerate_record",
    "report_records",
    "records_to_jsonl",
    "write_jsonl",
]

SCHEMA_VERSION = 2

Record = Dict[str, object]


def profile_header(**fields: object) -> Record:
    """The stream's leading record (file, query, tool version...).

    Callers with bounded collection pass ``dropped`` (events/samples
    evicted before export) and ``sampled_rate`` (fraction of calls the
    recorder sampled, 1.0 for exhaustive instrumentation) so consumers
    can tell a complete stream from a decimated one up front.
    """
    record: Record = {"type": "profile", "schema": SCHEMA_VERSION}
    record.update(fields)
    return record


def event_records(bus, run: Optional[str] = None) -> Iterator[Record]:
    """One record per bus event, plus a trailing truncation marker."""
    for event in bus:
        record = event.to_record()
        if run is not None:
            record["run"] = run
        yield record
    if bus.truncated:
        marker: Record = {
            "type": "event",
            "kind": "truncated",
            "dropped": bus.dropped,
            "limit": bus.limit,
        }
        if run is not None:
            marker["run"] = run
        yield marker


def metrics_record(metrics, run: Optional[str] = None) -> Record:
    """Engine counters as one record."""
    record: Record = {"type": "metrics"}
    if run is not None:
        record["run"] = run
    record.update(metrics.to_dict())
    return record


def solutions_record(
    solutions, run: Optional[str] = None, render: bool = False
) -> Record:
    """Answer count (and, optionally, the rendered answers)."""
    record: Record = {"type": "solutions", "count": len(solutions)}
    if run is not None:
        record["run"] = run
    if render:
        record["answers"] = [repr(solution) for solution in solutions]
    return record


def degenerate_record(
    reason: str, run: Optional[str] = None, **fields: object
) -> Record:
    """A structured marker that a run yielded no usable signal.

    Emitted (for example) by ``repro compare`` when a side made zero
    calls — a ratio over it would be meaningless, and downstream
    tooling needs a machine-readable marker, not just the
    human-readable ``ratio: n/a`` line.
    """
    record: Record = {"type": "degenerate", "reason": reason}
    if run is not None:
        record["run"] = run
    record.update(fields)
    return record


def report_records(report) -> List[Record]:
    """The :class:`~repro.reorder.system.ReorderReport` as records:
    one per decision line, one per warning, one summary."""
    payload = report.to_dict()
    records: List[Record] = []
    for decision in payload["decisions"]:
        records.append({"type": "report", "kind": "decision", **decision})
    for warning in payload["warnings"]:
        records.append({"type": "report", "kind": "warning", "message": warning})
    for failure in payload.get("calibration_failures", []):
        records.append(
            {"type": "report", "kind": "calibration_failure", "message": failure}
        )
    records.append(
        {
            "type": "report",
            "kind": "summary",
            "fixed": payload["fixed"],
            "recursive": payload["recursive"],
            "semifixed": payload["semifixed"],
            "tabled": payload.get("tabled", []),
            "backends": payload.get("backends", []),
        }
    )
    return records


def records_to_jsonl(records: Iterable[Record]) -> str:
    """All records as newline-delimited JSON text (sorted keys)."""
    return "\n".join(json.dumps(record, sort_keys=True) for record in records)


def write_jsonl(records: Iterable[Record], target: Union[str, IO[str]]) -> int:
    """Write records as JSONL to a path or file object; returns the
    number of records written. ``"-"`` writes to stdout."""
    import sys

    count = 0
    if isinstance(target, str):
        if target == "-":
            handle: IO[str] = sys.stdout
            close = False
        else:
            handle = open(target, "w")
            close = True
    else:
        handle, close = target, False
    try:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    finally:
        if close:
            handle.close()
    return count
