"""Calibration drift: predicted vs. observed predicate statistics.

The Markov cost model predicts, per (predicate, calling mode), an
expected exhaustive-exploration cost, an expected solution count, and a
success probability (§VI-A-4). This module replays a query under event
instrumentation and *measures* the same three quantities from the
four-port stream, then reports every user predicate whose estimates
diverge beyond a configurable factor — exactly the feedback loop the
paper's §VIII asks for ("the reordering system should also estimate
nearly all probabilities and costs on its own"): where the model
drifts, empirical calibration (``:- cost`` declarations, or
:class:`~repro.analysis.calibration.EmpiricalCalibrator`) is worth its
price.

Observed statistics come from Byrd boxes. A box opens at its ``call``
port, *pauses* at ``exit`` (control returns to the caller), *resumes*
at ``redo`` and closes at ``fail``. Because the engine is depth-first,
active boxes nest like a stack, so one linear pass over the stream can
attribute every ``call`` event to all the boxes it executed inside:

* **cost** — 1 (the call itself) + calls made while the box is active,
  matching the engine's call-count metric per exhaustive exploration;
* **solutions** — ``exit`` crossings of the box;
* **success** — whether the box exited at least once.

Runtime modes are nonvar/var approximations of the model's
ground/free abstraction; partially instantiated arguments are counted
as ``+``, which is the standard profiling compromise (documented in
docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.declarations import Declarations
from ..analysis.modes import parse_mode_string
from ..markov.goal_stats import GoalStats
from ..markov.predicate_model import CostModel
from ..prolog.database import Database
from ..prolog.engine import Engine
from .events import EventBus, PortEvent, attach

__all__ = [
    "DriftOptions",
    "Observation",
    "DriftRecord",
    "DriftReporter",
    "collect_observations",
    "compare_estimates",
]

Indicator = Tuple[str, int]


def compare_estimates(
    observed_cost: float,
    observed_prob: float,
    predicted: Optional[GoalStats],
    options: DriftOptions,
) -> Tuple[Optional[float], Optional[float], List[str]]:
    """Score one observed-vs-predicted pair against drift thresholds.

    Returns ``(cost_ratio, prob_delta, reasons)`` — ``reasons`` is
    nonempty exactly when the pair counts as drifted. Shared by the
    post-hoc :class:`DriftReporter` and the continuous
    :class:`~repro.observability.streaming.monitor.DriftMonitor`, so
    both surfaces flag identically. A ``predicted`` of None means the
    model never enumerated this mode — always flagged.
    """
    if predicted is None:
        return None, None, ["mode observed at runtime but illegal for the model"]
    # +1 smoothing keeps tiny costs from generating huge ratios.
    ratio = (observed_cost + 1.0) / (predicted.cost + 1.0)
    prob_delta = observed_prob - predicted.prob
    reasons = []
    factor = options.cost_factor
    if ratio >= factor or ratio <= 1.0 / factor:
        direction = "under" if ratio > 1.0 else "over"
        reasons.append(f"cost {direction}estimated x{max(ratio, 1 / ratio):.1f}")
    if abs(prob_delta) > options.prob_tolerance:
        reasons.append(f"success probability off by {prob_delta:+.2f}")
    return ratio, prob_delta, reasons


@dataclass
class DriftOptions:
    """Thresholds deciding when an estimate counts as drifted."""

    #: Flag when predicted and observed cost differ by this factor
    #: (either direction, with +1 smoothing on both sides).
    cost_factor: float = 3.0
    #: Flag when |predicted - observed| success probability exceeds this.
    prob_tolerance: float = 0.25
    #: Ignore predicates observed fewer times than this.
    min_invocations: int = 1


@dataclass
class Observation:
    """Measured behaviour of one (predicate, runtime mode)."""

    indicator: Indicator
    mode_text: str
    invocations: int = 0
    successes: int = 0
    solutions: int = 0
    total_cost: int = 0

    @property
    def mean_cost(self) -> float:
        return self.total_cost / self.invocations if self.invocations else 0.0

    @property
    def mean_solutions(self) -> float:
        return self.solutions / self.invocations if self.invocations else 0.0

    @property
    def success_rate(self) -> float:
        return self.successes / self.invocations if self.invocations else 0.0

    def as_goal_stats(self) -> GoalStats:
        """The observation in the model's own vocabulary."""
        return GoalStats(
            cost=max(self.mean_cost, 0.0),
            solutions=max(self.mean_solutions, 0.0),
            prob=min(1.0, max(0.0, self.success_rate)),
        )


@dataclass
class _Box:
    """One in-flight Byrd box during stream replay."""

    indicator: Indicator
    mode_text: str
    cost: int = 1  # the call itself
    exits: int = 0


def collect_observations(
    events: Iterable[object],
) -> Dict[Tuple[Indicator, str], Observation]:
    """Aggregate port events into per-(predicate, mode) observations.

    Boxes abandoned by cut/once/limit (no closing ``fail`` port — the
    same gap the tracer has) are finalised with whatever was observed.
    """
    active: List[_Box] = []
    paused: Dict[Tuple[int, Indicator], List[_Box]] = {}
    finished: List[_Box] = []
    for event in events:
        if not isinstance(event, PortEvent):
            continue
        if event.port == "call":
            for box in active:
                box.cost += 1
            active.append(_Box(event.indicator, event.mode or "()"))
        elif event.port == "exit":
            if active and active[-1].indicator == event.indicator:
                box = active.pop()
                box.exits += 1
                paused.setdefault((event.depth, event.indicator), []).append(box)
        elif event.port == "redo":
            stack = paused.get((event.depth, event.indicator))
            if stack:
                active.append(stack.pop())
        elif event.port == "fail":
            if active and active[-1].indicator == event.indicator:
                finished.append(active.pop())
    finished.extend(active)
    for stack in paused.values():
        finished.extend(stack)

    observations: Dict[Tuple[Indicator, str], Observation] = {}
    for box in finished:
        key = (box.indicator, box.mode_text)
        observation = observations.get(key)
        if observation is None:
            observation = Observation(box.indicator, box.mode_text)
            observations[key] = observation
        observation.invocations += 1
        observation.successes += 1 if box.exits else 0
        observation.solutions += box.exits
        observation.total_cost += box.cost
    return observations


@dataclass
class DriftRecord:
    """Predicted-vs-observed comparison for one (predicate, mode)."""

    indicator: Indicator
    mode_text: str
    observed: Observation
    predicted: Optional[GoalStats]
    cost_ratio: Optional[float]
    prob_delta: Optional[float]
    flagged: bool
    reasons: List[str] = field(default_factory=list)

    def to_record(self) -> Dict[str, object]:
        """The comparison as one JSONL-ready dict."""
        record: Dict[str, object] = {
            "type": "drift",
            "predicate": f"{self.indicator[0]}/{self.indicator[1]}",
            "mode": self.mode_text,
            "observed": {
                "invocations": self.observed.invocations,
                "cost": self.observed.mean_cost,
                "solutions": self.observed.mean_solutions,
                "prob": self.observed.success_rate,
            },
            "predicted": None
            if self.predicted is None
            else {
                "cost": self.predicted.cost,
                "solutions": self.predicted.solutions,
                "prob": self.predicted.prob,
            },
            "cost_ratio": self.cost_ratio,
            "prob_delta": self.prob_delta,
            "flagged": self.flagged,
            "reasons": list(self.reasons),
        }
        return record

    def format(self) -> str:
        """One human-readable comparison line."""
        name = f"{self.indicator[0]}/{self.indicator[1]} {self.mode_text}"
        if self.predicted is None:
            return f"{name}: no model prediction ({self.observed.invocations} calls observed)"
        flag = "  DRIFT: " + ", ".join(self.reasons) if self.flagged else ""
        return (
            f"{name}: cost {self.predicted.cost:.1f} -> {self.observed.mean_cost:.1f} "
            f"(x{self.cost_ratio:.2f}), p {self.predicted.prob:.2f} -> "
            f"{self.observed.success_rate:.2f}{flag}"
        )


class DriftReporter:
    """Replays queries and compares the cost model against reality."""

    def __init__(
        self,
        database: Database,
        options: Optional[DriftOptions] = None,
        declarations: Optional[Declarations] = None,
        model: Optional[CostModel] = None,
    ):
        self.database = database
        self.options = options or DriftOptions()
        self.declarations = declarations or Declarations.from_database(database)
        self.model = model or CostModel(database, self.declarations)

    def replay(self, query: str, **engine_kwargs) -> EventBus:
        """Run ``query`` on a fresh instrumented engine; returns the bus."""
        engine = Engine(self.database, **engine_kwargs)
        bus = attach(engine)
        try:
            engine.ask(query)
        finally:
            self.database.events = None
        return bus

    def report(
        self, query: Optional[str] = None, bus: Optional[EventBus] = None
    ) -> List[DriftRecord]:
        """Drift records for every observed user predicate, sorted with
        flagged entries first (then by observed cost, descending).

        Provide either a query to replay or an already-filled bus.
        """
        if bus is None:
            if query is None:
                raise ValueError("need a query or an event bus")
            bus = self.replay(query)
        records = []
        for (indicator, mode_text), observation in collect_observations(bus).items():
            if not self.database.defines(indicator):
                continue  # builtins: not calibration targets
            if observation.invocations < self.options.min_invocations:
                continue
            records.append(self._compare(indicator, mode_text, observation))
        records.sort(
            key=lambda r: (not r.flagged, -r.observed.mean_cost, r.indicator)
        )
        return records

    def _compare(
        self, indicator: Indicator, mode_text: str, observation: Observation
    ) -> DriftRecord:
        predicted = self.model.predicate_stats(
            indicator, parse_mode_string(mode_text)
        )
        ratio, prob_delta, reasons = compare_estimates(
            observation.mean_cost,
            observation.success_rate,
            predicted,
            self.options,
        )
        return DriftRecord(
            indicator=indicator,
            mode_text=mode_text,
            observed=observation,
            predicted=predicted,
            cost_ratio=ratio,
            prob_delta=prob_delta,
            flagged=bool(reasons),
            reasons=reasons,
        )
