"""Continuous, bounded, always-on telemetry (the streaming layer).

Where :mod:`repro.observability.events` is a one-shot instrument —
buffer everything, analyse afterwards — this package is built to stay
attached under sustained load:

* :mod:`.ring`      — bounded retention (ring buffer, reservoir sampler);
* :mod:`.aggregate` — mergeable per-(predicate, mode) online counters
  and log-bucketed histograms with p50/p95/p99;
* :mod:`.recorder`  — the sampling engine hook (``engine.recorder``):
  1-in-N plus rare-predicate sampling, exact call counts, no event
  objects on the hot path;
* :mod:`.monitor`   — the continuous :class:`DriftMonitor` feeding
  observed statistics into the stats store and emitting
  ``DriftEvent`` s naming the drifted SCCs;
* :mod:`.perfetto`  — Chrome/Perfetto trace-event export.

Note: :mod:`.monitor` is intentionally not imported here — it depends
on the model and engine layers, which themselves import
:mod:`repro.observability.events` (whose package import would recurse
back into this one); import it as
``from repro.observability.streaming.monitor import DriftMonitor``,
the same convention as :mod:`repro.observability.drift`.
:mod:`.perfetto` is likewise import-from-module
(``from repro.observability.streaming.perfetto import write_trace``).
"""

from .aggregate import LogHistogram, ModeAggregate, StreamAggregates
from .recorder import (
    BoxSample,
    StreamingRecorder,
    attach_recorder,
    detach_recorder,
)
from .ring import ReservoirSampler, RingBuffer

__all__ = [
    "RingBuffer",
    "ReservoirSampler",
    "LogHistogram",
    "ModeAggregate",
    "StreamAggregates",
    "BoxSample",
    "StreamingRecorder",
    "attach_recorder",
    "detach_recorder",
]
