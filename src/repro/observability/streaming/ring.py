"""Bounded retention primitives: ring buffer and reservoir sampler.

Continuous telemetry must run for hours without growing: the PR-1
:class:`~repro.observability.events.EventBus` buffers its first
``limit`` events and then counts overflow, which makes it a one-shot
instrument — under sustained load it fills once and goes blind. The two
containers here fix retention for the always-on path:

* :class:`RingBuffer` keeps the *most recent* ``capacity`` items,
  overwriting the oldest and counting how many were evicted — the right
  policy for "what just happened" diagnostics;
* :class:`ReservoirSampler` keeps a uniform random ``k``-subset of an
  unbounded stream (Vitter's Algorithm R) under a caller-supplied seed,
  so *rare* predicates keep representation no matter how long a hot
  predicate floods the ring.

Both are engine-agnostic and import nothing from the rest of the
package, so any layer (the four-port tracer, the streaming recorder,
future subsystems) can use them without cycles.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Generic, Iterator, List, Optional, TypeVar

__all__ = ["RingBuffer", "ReservoirSampler"]

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """A most-recent-``capacity`` buffer with eviction accounting.

    Appending past capacity silently evicts the oldest item but *not*
    silently overall: :attr:`seen` counts every offered item and
    :attr:`dropped` how many were evicted, so consumers (JSONL headers,
    ``format()`` footers) can always report how much history is missing.
    """

    __slots__ = ("_items", "capacity", "seen")

    def __init__(self, capacity: int = 10_000):
        self.capacity = max(0, capacity)
        self._items: deque = deque(maxlen=self.capacity)
        #: Total items ever offered (retained or evicted).
        self.seen = 0

    def append(self, item: T) -> None:
        """Retain ``item``, evicting the oldest entry past capacity."""
        self.seen += 1
        if self.capacity:
            self._items.append(item)

    @property
    def dropped(self) -> int:
        """Items evicted (or never retained, when capacity is 0)."""
        return self.seen - len(self._items)

    @property
    def truncated(self) -> bool:
        """Was any item evicted?"""
        return self.dropped > 0

    def to_list(self) -> List[T]:
        """The retained items, oldest first."""
        return list(self._items)

    def clear(self) -> None:
        """Drop all retained items and the accounting."""
        self._items.clear()
        self.seen = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)


class ReservoirSampler(Generic[T]):
    """Uniform ``k``-sample over an unbounded stream (Algorithm R).

    Every offered item has, at any point, probability ``k/seen`` of
    being retained — which is exactly the guarantee the ring buffer
    lacks: a predicate called once an hour survives here even when the
    ring has long since recycled. The RNG is seeded, so a given stream
    always retains the same sample (deterministic tests and merges).
    """

    __slots__ = ("items", "capacity", "seen", "_random")

    def __init__(self, capacity: int = 32, seed: int = 0):
        self.capacity = max(0, capacity)
        self.items: List[T] = []
        #: Total items ever offered.
        self.seen = 0
        self._random = random.Random(seed)

    def offer(self, item: T) -> bool:
        """Offer one item; returns True when it was retained."""
        self.seen += 1
        if len(self.items) < self.capacity:
            self.items.append(item)
            return True
        if self.capacity == 0:
            return False
        # int(random() * seen) instead of randrange(): one C-level RNG
        # draw on the recorder's hot close path (the bias for stream
        # lengths below 2**53 is immaterial for sampling).
        slot = int(self._random.random() * self.seen)
        if slot < self.capacity:
            self.items[slot] = item
            return True
        return False

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[T]:
        return iter(self.items)
