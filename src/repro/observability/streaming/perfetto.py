"""Chrome/Perfetto trace-event export for spans and Byrd boxes.

Renders the repo's three timing sources into the Trace Event JSON
format (``{"traceEvents": [...]}``) that ``chrome://tracing`` and
https://ui.perfetto.dev load directly:

* **pipeline spans** (:class:`~repro.observability.spans.SpanRecorder`)
  — spans carry durations but no start timestamps, so they are laid
  out on a synthetic sequential timeline in recording order: correct
  durations and ordering, no gaps;
* **event-bus boxes** (:class:`~repro.observability.events.EventBus`)
  — ``call``/``redo`` → ``exit``/``fail`` port crossings are paired
  into *active windows* per Byrd box, each a complete (``"X"``) slice;
  depth-first execution makes windows nest properly on one track;
* **recorder samples**
  (:class:`~repro.observability.streaming.recorder.BoxSample`) — each
  sampled box becomes one slice spanning call through final fail on a
  per-depth track. Sampling means parents may be missing and a box's
  wall time includes paused windows, so nesting is approximate —
  good enough for "where did the time go", which is all a sampled
  trace can promise.

All timestamps are microseconds (the format's unit), rebased to the
earliest event so traces start at zero.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from ..events import EventBus, PortEvent
from ..spans import SpanRecorder
from .recorder import BoxSample

__all__ = [
    "trace_events_from_spans",
    "trace_events_from_bus",
    "trace_events_from_samples",
    "perfetto_trace",
    "write_trace",
]

#: Process ids keeping the three sources on separate Perfetto tracks.
_PID_PIPELINE = 1
_PID_ENGINE = 2

TraceEvent = Dict[str, object]


def _slice(
    name: str, ts_us: float, dur_us: float, pid: int, tid: int, args: Dict[str, object]
) -> TraceEvent:
    """One complete ("X") trace event."""
    return {
        "name": name,
        "ph": "X",
        "ts": round(ts_us, 3),
        "dur": round(max(dur_us, 0.0), 3),
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def trace_events_from_spans(spans: SpanRecorder) -> List[TraceEvent]:
    """Pipeline spans on a synthetic sequential timeline.

    Spans record duration only, so each is placed right after the
    previous one; skipped spans become zero-width instant markers.
    """
    events: List[TraceEvent] = []
    cursor = 0.0
    for span in spans.to_records():
        duration = float(span.get("seconds", 0.0) or 0.0) * 1e6
        args: Dict[str, object] = {"count": span.get("count", 0)}
        if span.get("skipped"):
            args["skipped"] = True
        events.append(
            _slice(str(span["name"]), cursor, duration, _PID_PIPELINE, 1, args)
        )
        cursor += duration
    return events


def trace_events_from_bus(bus: EventBus) -> List[TraceEvent]:
    """Byrd-box active windows reconstructed from port events.

    Each ``call``/``redo`` opens a window that the matching ``exit`` /
    ``fail`` closes; depth-first execution nests the windows properly,
    so they all live on one engine track. Windows left open (cut /
    once / solution limits) are closed at the last seen timestamp.
    """
    events: List[TraceEvent] = []
    ports = [event for event in bus if isinstance(event, PortEvent)]
    if not ports:
        return events
    base = ports[0].ts
    last = ports[0].ts
    stack: List[PortEvent] = []
    for event in ports:
        last = max(last, event.ts)
        if event.port in ("call", "redo"):
            stack.append(event)
        elif event.port in ("exit", "fail"):
            if stack and stack[-1].indicator == event.indicator:
                opened = stack.pop()
                events.append(
                    _slice(
                        f"{event.indicator[0]}/{event.indicator[1]}",
                        (opened.ts - base) * 1e6,
                        (event.ts - opened.ts) * 1e6,
                        _PID_ENGINE,
                        1,
                        {
                            "depth": opened.depth,
                            "window": opened.port,
                            "closed": event.port,
                        },
                    )
                )
    for opened in stack:
        events.append(
            _slice(
                f"{opened.indicator[0]}/{opened.indicator[1]}",
                (opened.ts - base) * 1e6,
                (last - opened.ts) * 1e6,
                _PID_ENGINE,
                1,
                {"depth": opened.depth, "window": opened.port, "closed": None},
            )
        )
    events.sort(key=lambda event: event["ts"])
    return events


def trace_events_from_samples(samples: Iterable[BoxSample]) -> List[TraceEvent]:
    """Sampled boxes as slices, one Perfetto track per call depth.

    A sample's wall time spans call through final fail including
    paused windows, and its parents may be unsampled, so per-depth
    tracks keep overlapping siblings readable instead of pretending to
    exact nesting.
    """
    items = list(samples)
    if not items:
        return []
    base = min(sample.ts for sample in items)
    return [
        _slice(
            f"{sample.indicator[0]}/{sample.indicator[1]}",
            (sample.ts - base) * 1e6,
            sample.seconds * 1e6,
            _PID_ENGINE,
            sample.depth + 1,
            {
                "mode": sample.mode,
                "cost": sample.cost,
                "solutions": sample.solutions,
            },
        )
        for sample in sorted(items, key=lambda sample: sample.ts)
    ]


def perfetto_trace(
    spans: Optional[SpanRecorder] = None,
    bus: Optional[EventBus] = None,
    samples: Optional[Iterable[BoxSample]] = None,
) -> Dict[str, object]:
    """A complete Trace Event JSON document from any source mix."""
    events: List[TraceEvent] = []
    if spans is not None:
        events.extend(trace_events_from_spans(spans))
    if bus is not None:
        events.extend(trace_events_from_bus(bus))
    if samples is not None:
        events.extend(trace_events_from_samples(samples))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(
    path: str,
    spans: Optional[SpanRecorder] = None,
    bus: Optional[EventBus] = None,
    samples: Optional[Iterable[BoxSample]] = None,
) -> int:
    """Write a trace file loadable by Perfetto; returns the event count."""
    trace = perfetto_trace(spans=spans, bus=bus, samples=samples)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])
