"""The sampling ring-buffer recorder: tracing that is safe to leave on.

The PR-1 event bus materialises four :class:`PortEvent` objects plus a
wall-time event per Byrd box — fine for a one-shot ``repro profile``,
far too hot for continuous production telemetry. The
:class:`StreamingRecorder` is the always-on alternative, attached via
``engine.recorder`` (a third instrumentation channel beside the tracer
and the event bus):

* the sampling decision is *inlined in the engine*: a hot predicate
  costs one set-membership test (:attr:`StreamingRecorder.hot`) and a
  stride check against the engine's own ``metrics.calls`` counter — no
  per-call function call, no counter of the recorder's own; only
  predicates still in their rare phase reach :meth:`admit_cold`;
* sampling is **1-in-N** (``sample_every``) with a **rare-predicate
  override**: a predicate's first ``rare_threshold`` calls are always
  sampled, so cold predicates are fully observed while hot ones are
  decimated;
* per-box *cost in calls* is exact even when the descendants' own
  boxes were not sampled, because it is a delta of the engine's
  ``metrics.calls`` — which the engine already charges on every call;
  per-predicate call totals are synced lazily from the same metrics
  (:meth:`sync`, run automatically when :attr:`aggregates` is read),
  so ``sampled_rate`` is exact too;
* completed box samples land in a bounded :class:`RingBuffer` (recent
  history) and per-predicate :class:`ReservoirSampler` s (uniform
  history for rare predicates), and fold into the streaming
  :class:`StreamAggregates` — memory stays bounded forever.

Use :func:`attach_recorder` rather than assigning ``engine.recorder``
directly: attaching *binds* the engine's metrics so the recorder can
account calls (a bare assignment still samples and attributes cost
correctly, but ``calls``/``sampled_rate`` stay at their attach-less
zero).

The recorder deliberately does not instrument the clause database:
index events are an offline-profiling concern, and constructing them
per lookup would blow the continuous-overhead budget that
``benchmarks/obs_bench.py`` gates.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

from .aggregate import StreamAggregates
from .ring import ReservoirSampler, RingBuffer

__all__ = [
    "BoxSample",
    "StreamingRecorder",
    "attach_recorder",
    "detach_recorder",
]

Indicator = Tuple[str, int]


class BoxSample:
    """One completed, sampled Byrd box: the unit the ring retains."""

    __slots__ = (
        "indicator",
        "mode",
        "depth",
        "ts",
        "seconds",
        "cost",
        "solutions",
    )

    def __init__(
        self,
        indicator: Indicator,
        mode: str,
        depth: int,
        ts: float,
        seconds: float,
        cost: int,
        solutions: int,
    ):
        self.indicator = indicator
        self.mode = mode
        self.depth = depth
        #: ``perf_counter()`` at the box's call port.
        self.ts = ts
        #: Wall seconds, call through final fail (pauses included).
        self.seconds = seconds
        #: 1 + calls made while the box was active (drift semantics).
        self.cost = cost
        self.solutions = solutions

    @property
    def succeeded(self) -> bool:
        """Did the box exit at least once?"""
        return self.solutions > 0

    def to_record(self) -> Dict[str, object]:
        """The sample as one flat JSONL-ready dict."""
        return {
            "type": "sample",
            "predicate": f"{self.indicator[0]}/{self.indicator[1]}",
            "mode": self.mode,
            "depth": self.depth,
            "ts": self.ts,
            "seconds": self.seconds,
            "cost": self.cost,
            "solutions": self.solutions,
        }


class _OpenBox:
    """Bookkeeping of one in-flight sampled box."""

    __slots__ = (
        "indicator",
        "mode",
        "depth",
        "ts",
        "metrics",
        "resumed_at",
        "accumulated",
        "solutions",
        "paused",
    )

    def __init__(self, indicator: Indicator, mode: str, depth: int, ts: float, metrics):
        self.indicator = indicator
        self.mode = mode
        self.depth = depth
        self.ts = ts
        #: The owning engine's metrics: its ``calls`` counter is the
        #: exact global call clock this box's cost is measured on.
        self.metrics = metrics
        #: ``metrics.calls`` value when the box (re)gained control.
        self.resumed_at = metrics.calls
        #: Calls charged across completed active windows.
        self.accumulated = 0
        self.solutions = 0
        self.paused = False


class _MetricsBinding:
    """One attached engine's metrics plus the attach-time baselines."""

    __slots__ = ("metrics", "by_predicate_base")

    def __init__(self, metrics):
        self.metrics = metrics
        self.by_predicate_base = dict(metrics.calls_by_predicate)


class StreamingRecorder:
    """Sampling recorder safe to leave attached under sustained load.

    ``sample_every`` keeps 1-in-N boxes once a predicate is past its
    ``rare_threshold`` first calls (which are all kept). Retained
    samples go to a ``capacity``-bounded ring plus per-predicate
    reservoirs of ``reservoir_size`` (seeded, deterministic), and every
    sampled box folds into :attr:`aggregates`.

    The engine drives sampling inline: a predicate in :attr:`hot` is
    sampled when ``metrics.calls % sample_every == 0``; anything else
    goes through :meth:`admit_cold`, which always samples and promotes
    the predicate to :attr:`hot` after its ``rare_threshold``-th call.
    """

    def __init__(
        self,
        capacity: int = 8_192,
        sample_every: int = 64,
        rare_threshold: int = 64,
        reservoir_size: int = 16,
        seed: int = 0,
    ):
        self.capacity = capacity
        self.sample_every = max(1, sample_every)
        self.rare_threshold = max(0, rare_threshold)
        self.reservoir_size = max(0, reservoir_size)
        self.seed = seed
        #: Recent sampled boxes, oldest first (bounded).
        self.ring: RingBuffer = RingBuffer(capacity)
        #: Uniform per-predicate sample history (bounded per predicate).
        self.reservoirs: Dict[Indicator, ReservoirSampler] = {}
        #: Streaming per-(predicate, mode) statistics. Read through the
        #: :attr:`aggregates` property so call totals are synced first.
        self._aggregates = StreamAggregates()
        #: Predicates past their rare phase: the engine's inline fast
        #: path is one membership test against this set.
        self.hot: set = set()
        #: Calls seen per predicate while still cold (rare phase only).
        self._cold_counts: Dict[Indicator, int] = {}
        #: Metrics of the engines this recorder is attached to.
        self._bindings: List[_MetricsBinding] = []

    # -- sampling admission (cold path; hot path is inline in Engine) -----

    def admit_cold(self, indicator: Indicator, metrics) -> bool:
        """Sampling decision for a predicate not (yet) in :attr:`hot`.

        Rare-phase calls are always sampled; the ``rare_threshold``-th
        call promotes the predicate to :attr:`hot`, after which the
        engine never calls back here. With ``rare_threshold == 0`` the
        promotion happens on the first call, which already follows the
        1-in-N stride.
        """
        n = self._cold_counts.get(indicator, 0) + 1
        if n > self.rare_threshold:
            self.hot.add(indicator)
            self._cold_counts.pop(indicator, None)
            return not metrics.calls % self.sample_every
        self._cold_counts[indicator] = n
        return True

    # -- call accounting (lazily synced from bound engine metrics) --------

    def bind(self, metrics) -> None:
        """Start accounting calls charged to ``metrics`` (idempotent)."""
        for binding in self._bindings:
            if binding.metrics is metrics:
                return
        self._bindings.append(_MetricsBinding(metrics))

    def unbind(self, metrics) -> None:
        """Fold ``metrics``'s outstanding calls in and stop tracking it."""
        self.sync()
        self._bindings = [
            binding
            for binding in self._bindings
            if binding.metrics is not metrics
        ]

    def sync(self) -> None:
        """Fold bound engines' call counters into the aggregates.

        Idempotent and cheap (O(predicates) per bound engine); runs
        automatically whenever :attr:`aggregates` or :attr:`calls` is
        read, so the hot path never maintains totals of its own.
        """
        totals = self._aggregates.total_calls
        # Snapshot both the binding list and each per-predicate counter
        # dict: under ``repro serve`` engines mutate their metrics on
        # worker threads while the event loop reads the aggregates, and
        # iterating a dict being resized raises.
        for binding in list(self._bindings):
            metrics = binding.metrics
            base = binding.by_predicate_base
            for indicator, count in list(metrics.calls_by_predicate.items()):
                previous = base.get(indicator, 0)
                if count != previous:
                    totals[indicator] = (
                        totals.get(indicator, 0) + count - previous
                    )
                    base[indicator] = count

    @property
    def aggregates(self) -> StreamAggregates:
        """The streaming statistics, with call totals synced."""
        self.sync()
        return self._aggregates

    @property
    def calls(self) -> int:
        """Calls charged to bound engines since attach (exact)."""
        self.sync()
        return sum(self._aggregates.total_calls.values())

    # -- box lifecycle (driven by Engine._record_boxed) -------------------

    def open_box(self, indicator: Indicator, mode: str, depth: int, metrics) -> _OpenBox:
        """Start tracking one sampled box on ``metrics``'s call clock."""
        return _OpenBox(indicator, mode, depth, perf_counter(), metrics)

    def pause_box(self, box: _OpenBox) -> None:
        """The box exited: control (and the call clock) leave it."""
        box.accumulated += box.metrics.calls - box.resumed_at
        box.solutions += 1
        box.paused = True

    def resume_box(self, box: _OpenBox) -> None:
        """The box is redone: calls charge to it again."""
        box.resumed_at = box.metrics.calls
        box.paused = False

    def close_box(self, box: _OpenBox) -> BoxSample:
        """Finalise one box into a sample; folds it into everything.

        Also called for boxes abandoned mid-solution (cut / ``once`` /
        solution limits): whatever was observed still counts, matching
        the drift reporter's treatment of unclosed boxes.
        """
        if not box.paused:
            box.accumulated += box.metrics.calls - box.resumed_at
        sample = BoxSample(
            box.indicator,
            box.mode,
            box.depth,
            box.ts,
            perf_counter() - box.ts,
            box.accumulated + 1,
            box.solutions,
        )
        self.ring.append(sample)
        if self.reservoir_size:
            reservoir = self.reservoirs.get(box.indicator)
            if reservoir is None:
                reservoir = ReservoirSampler(
                    self.reservoir_size,
                    seed=self.seed ^ hash(box.indicator) & 0xFFFF_FFFF,
                )
                self.reservoirs[box.indicator] = reservoir
            reservoir.offer(sample)
        self._aggregates.record_box(
            box.indicator,
            box.mode,
            sample.cost,
            sample.solutions,
            sample.seconds,
        )
        return sample

    # -- reporting --------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Samples evicted from the ring so far."""
        return self.ring.dropped

    @property
    def truncated(self) -> bool:
        """Was any sample evicted from the ring?"""
        return self.ring.truncated

    def sampled_rate(self) -> float:
        """Overall sampled boxes / total calls (1.0 before any call)."""
        return self.aggregates.sampled_rate()  # property: syncs first

    def samples(self) -> List[BoxSample]:
        """Ring plus reservoir samples, deduplicated, in call order."""
        seen = set()
        merged: List[BoxSample] = []
        for sample in self.ring:
            seen.add(id(sample))
            merged.append(sample)
        for reservoir in self.reservoirs.values():
            for sample in reservoir:
                if id(sample) not in seen:
                    seen.add(id(sample))
                    merged.append(sample)
        merged.sort(key=lambda sample: sample.ts)
        return merged

    def summary_lines(self, top: int = 8) -> List[str]:
        """A compact human-readable snapshot (for ``--follow``)."""
        aggregates = self.aggregates  # property: syncs call totals
        total = sum(aggregates.total_calls.values())
        sampled = sum(a.boxes for _k, a in aggregates.items())
        lines = [
            f"calls={total} sampled={sampled} "
            f"({self.sampled_rate() * 100.0:.1f}%) ring={len(self.ring)} "
            f"dropped={self.dropped}"
        ]
        busiest = sorted(
            aggregates.total_calls.items(), key=lambda item: -item[1]
        )[:top]
        for indicator, count in busiest:
            rate = aggregates.sampled_rate(indicator)
            lines.append(
                f"  {indicator[0]}/{indicator[1]:<3} {count:>8} calls "
                f"(sampled {rate * 100.0:.0f}%)"
            )
        return lines

    def __len__(self) -> int:
        return len(self.ring)


def attach_recorder(engine, recorder: Optional[StreamingRecorder] = None) -> StreamingRecorder:
    """Attach a streaming recorder to an engine; returns the recorder.

    Duck-typed like :func:`repro.observability.events.attach`, but
    engine-only: the clause database is left uninstrumented on purpose
    (index events are too hot for the always-on path). Attaching also
    binds the engine's metrics, which is what makes the recorder's
    call accounting (``calls``, per-predicate totals, ``sampled_rate``)
    exact; one recorder may be attached to several engines (e.g. the
    calibrator's sample engines, a server's per-request engines) and
    accounts them all.

    Idempotent: re-attaching the same recorder is a no-op (``bind``
    already dedupes by metrics identity), and attaching a *different*
    recorder first detaches the old one so an engine is never left
    double-instrumented with a stale binding.
    """
    recorder = recorder if recorder is not None else StreamingRecorder()
    previous = getattr(engine, "recorder", None)
    if previous is not None and previous is not recorder:
        detach_recorder(engine)
    recorder.bind(engine.metrics)
    engine.recorder = recorder
    return recorder


def detach_recorder(engine) -> Optional[StreamingRecorder]:
    """Detach and return the engine's recorder (restores the fast path).

    The engine's outstanding calls are folded into the recorder's
    totals before its metrics stop being tracked.

    Idempotent and exception-safe by design: a second detach returns
    None without touching anything, and ``unbind`` on a metrics object
    that was never (or is no longer) bound is a no-op — so callers can
    (and should) put this in a ``finally`` around request execution,
    where it runs once whether the request completed, faulted, or was
    cancelled mid-query. A recorder must never outlive its binding to
    a dead engine's metrics: the binding would silently keep folding a
    stale baseline into the aggregates on every :meth:`~StreamingRecorder.sync`.
    """
    recorder = getattr(engine, "recorder", None)
    engine.recorder = None
    if recorder is not None:
        recorder.unbind(engine.metrics)
    return recorder
