"""Streaming per-(predicate, mode) aggregates with mergeable state.

The drift reporter (PR 1) buffers the whole event stream and replays it
post-hoc; that cannot run continuously. This module keeps the same
three quantities the Markov model predicts — cost in calls, solution
count, success probability (paper §VI-A) — as *online* counters plus
log-bucketed histograms, O(1) per completed Byrd box and O(predicates)
in memory, in the spirit of Ledeniov & Markovitch's per-mode cached
subgoal statistics.

Everything merges: histograms, per-mode aggregates and whole
:class:`StreamAggregates` support ``+``, and round-trip through plain
picklable payloads (``to_payload``/``from_payload``). That is what lets
``robustness/watchdog.py`` calibration workers and ``--jobs`` pools
ship partial aggregates back to the parent for a deterministic
task-order merge, exactly like the calibrator's measurement results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # import-time cycle guard: markov -> analysis ->
    # calibration imports this package, so GoalStats is only imported
    # lazily inside as_goal_stats() at runtime.
    from ...markov.goal_stats import GoalStats

__all__ = ["LogHistogram", "ModeAggregate", "StreamAggregates"]

Indicator = Tuple[str, int]
#: The aggregation unit: (indicator, rendered runtime mode).
AggregateKey = Tuple[Indicator, str]


def _bucket_of(value: float) -> int:
    """The power-of-two bucket index of a nonnegative value.

    Bucket ``b`` holds values in ``[2**(b-1), 2**b)``; bucket 0 holds
    everything below 1. Integer-friendly and allocation-free.
    """
    if value < 1.0:
        return 0
    return int(value).bit_length()


class LogHistogram:
    """A power-of-two-bucketed histogram of nonnegative values.

    Bucket boundaries double, so 64 buckets cover 19 orders of
    magnitude — costs from one call to a trillion, wall times from a
    microsecond to hours — at a fixed, tiny memory cost. Percentile
    queries return the geometric midpoint of the holding bucket,
    clamped to the observed min/max (exact at the extremes, within a
    factor of ``sqrt(2)`` elsewhere — plenty for drift detection).

    ``scale`` maps raw values into bucket space (e.g. ``1e6`` buckets
    wall-clock *seconds* by the microsecond).
    """

    __slots__ = ("buckets", "count", "total", "min", "max", "scale")

    def __init__(self, scale: float = 1.0):
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.scale = scale

    def add(self, value: float) -> None:
        """Record one nonnegative value."""
        if value < 0:
            value = 0.0
        bucket = _bucket_of(value * self.scale)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all recorded values (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The approximate ``q``-quantile (``q`` in [0, 1])."""
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for bucket in sorted(self.buckets):
            cumulative += self.buckets[bucket]
            if cumulative >= rank:
                if bucket == 0:
                    mid = 0.5
                else:
                    # Geometric midpoint of [2**(b-1), 2**b).
                    mid = 2.0 ** (bucket - 0.5)
                value = mid / self.scale
                low = self.min if self.min is not None else value
                high = self.max if self.max is not None else value
                return min(max(value, low), high)
        return self.max if self.max is not None else 0.0

    def quantiles(self) -> Dict[str, float]:
        """The standard latency trio: p50 / p95 / p99."""
        return {
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def __add__(self, other: "LogHistogram") -> "LogHistogram":
        """Order-independent merge of two histograms (same scale)."""
        merged = LogHistogram(self.scale)
        merged.buckets = dict(self.buckets)
        for bucket, count in other.buckets.items():
            merged.buckets[bucket] = merged.buckets.get(bucket, 0) + count
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        for low in (self.min, other.min):
            if low is not None and (merged.min is None or low < merged.min):
                merged.min = low
        for high in (self.max, other.max):
            if high is not None and (merged.max is None or high > merged.max):
                merged.max = high
        return merged

    def to_payload(self) -> Dict[str, object]:
        """The histogram as one picklable/JSON-able dict."""
        return {
            "buckets": {str(b): c for b, c in self.buckets.items()},
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "scale": self.scale,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "LogHistogram":
        """Rebuild a histogram from :meth:`to_payload` output."""
        histogram = cls(payload.get("scale", 1.0))
        histogram.buckets = {
            int(bucket): count
            for bucket, count in payload.get("buckets", {}).items()
        }
        histogram.count = payload.get("count", 0)
        histogram.total = payload.get("total", 0.0)
        histogram.min = payload.get("min")
        histogram.max = payload.get("max")
        return histogram

    def __len__(self) -> int:
        return self.count


class ModeAggregate:
    """Online statistics of one (predicate, runtime mode).

    Counts completed Byrd boxes ("invocations" in the drift reporter's
    vocabulary) and histograms the three per-box measurements: cost in
    calls, solutions produced, and boxed wall time. Mergeable with
    ``+`` and payload round-trips for cross-process shipping.
    """

    __slots__ = ("boxes", "successes", "solutions", "cost", "wall", "yields")

    #: Wall times are bucketed by the microsecond.
    WALL_SCALE = 1e6

    def __init__(self):
        #: Completed Byrd boxes observed (sampled invocations).
        self.boxes = 0
        #: Boxes that exited at least once.
        self.successes = 0
        #: Total solutions across all boxes.
        self.solutions = 0
        #: Histogram of per-box cost, in predicate calls.
        self.cost = LogHistogram()
        #: Histogram of per-box solution counts.
        self.yields = LogHistogram()
        #: Histogram of per-box wall seconds (call through final fail).
        self.wall = LogHistogram(self.WALL_SCALE)

    def record(self, cost: int, solutions: int, seconds: float) -> None:
        """Fold one completed box into the aggregate."""
        self.boxes += 1
        if solutions:
            self.successes += 1
        self.solutions += solutions
        self.cost.add(cost)
        self.yields.add(solutions)
        self.wall.add(seconds)

    @property
    def mean_cost(self) -> float:
        """Mean per-box cost in calls (the model's ``c``)."""
        return self.cost.mean

    @property
    def mean_solutions(self) -> float:
        """Mean solutions per box (the model's multiplying factor)."""
        return self.solutions / self.boxes if self.boxes else 0.0

    @property
    def success_rate(self) -> float:
        """Fraction of boxes that exited at least once (the model's ``p``)."""
        return self.successes / self.boxes if self.boxes else 0.0

    def as_goal_stats(self) -> "GoalStats":
        """The aggregate in the cost model's own vocabulary."""
        from ...markov.goal_stats import GoalStats

        return GoalStats(
            cost=max(self.mean_cost, 0.0),
            solutions=max(self.mean_solutions, 0.0),
            prob=min(1.0, max(0.0, self.success_rate)),
        )

    def __add__(self, other: "ModeAggregate") -> "ModeAggregate":
        """Order-independent merge of two aggregates."""
        merged = ModeAggregate()
        merged.boxes = self.boxes + other.boxes
        merged.successes = self.successes + other.successes
        merged.solutions = self.solutions + other.solutions
        merged.cost = self.cost + other.cost
        merged.yields = self.yields + other.yields
        merged.wall = self.wall + other.wall
        return merged

    def to_payload(self) -> Dict[str, object]:
        """The aggregate as one picklable/JSON-able dict."""
        return {
            "boxes": self.boxes,
            "successes": self.successes,
            "solutions": self.solutions,
            "cost": self.cost.to_payload(),
            "yields": self.yields.to_payload(),
            "wall": self.wall.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ModeAggregate":
        """Rebuild an aggregate from :meth:`to_payload` output."""
        aggregate = cls()
        aggregate.boxes = payload.get("boxes", 0)
        aggregate.successes = payload.get("successes", 0)
        aggregate.solutions = payload.get("solutions", 0)
        aggregate.cost = LogHistogram.from_payload(payload.get("cost", {}))
        aggregate.yields = LogHistogram.from_payload(payload.get("yields", {}))
        aggregate.wall = LogHistogram.from_payload(payload.get("wall", {}))
        return aggregate


class StreamAggregates:
    """All per-(predicate, mode) aggregates of one telemetry stream.

    Two accounting levels: :attr:`total_calls` counts *every* call per
    predicate, sampled or not (the recorder syncs it from the attached
    engines' own call metrics; standalone users can charge it through
    :meth:`record_call`), while the per-mode :class:`ModeAggregate`
    entries hold the *sampled* boxes — so ``sampled_rate`` is always
    known and consumers can scale. Merge whole objects with ``+``
    (sums both levels) and ship them across processes via payloads.
    """

    __slots__ = ("total_calls", "_modes")

    def __init__(self):
        #: Every call per predicate, sampled or not.
        self.total_calls: Dict[Indicator, int] = {}
        self._modes: Dict[AggregateKey, ModeAggregate] = {}

    def record_call(self, indicator: Indicator) -> int:
        """Charge one call (gate path); returns the predicate's count."""
        count = self.total_calls.get(indicator, 0) + 1
        self.total_calls[indicator] = count
        return count

    def record_box(
        self,
        indicator: Indicator,
        mode_text: str,
        cost: int,
        solutions: int,
        seconds: float,
    ) -> None:
        """Fold one completed sampled box into its mode aggregate."""
        key = (indicator, mode_text)
        aggregate = self._modes.get(key)
        if aggregate is None:
            aggregate = ModeAggregate()
            self._modes[key] = aggregate
        aggregate.record(cost, solutions, seconds)

    def get(self, indicator: Indicator, mode_text: str) -> Optional[ModeAggregate]:
        """The aggregate of one (predicate, mode), or None."""
        return self._modes.get((indicator, mode_text))

    def items(self) -> Iterator[Tuple[AggregateKey, ModeAggregate]]:
        """All ((indicator, mode), aggregate) entries."""
        return iter(self._modes.items())

    def sampled_boxes(self, indicator: Optional[Indicator] = None) -> int:
        """Sampled boxes across all modes, per predicate or overall."""
        if indicator is None:
            return sum(aggregate.boxes for aggregate in self._modes.values())
        return sum(
            aggregate.boxes
            for (entry, _mode), aggregate in self._modes.items()
            if entry == indicator
        )

    def sampled_rate(self, indicator: Optional[Indicator] = None) -> float:
        """Sampled boxes / total calls, per predicate or overall.

        1.0 when nothing was ever gated (no calls seen).
        """
        if indicator is not None:
            total = self.total_calls.get(indicator, 0)
            return self.sampled_boxes(indicator) / total if total else 1.0
        total = sum(self.total_calls.values())
        sampled = sum(aggregate.boxes for aggregate in self._modes.values())
        return sampled / total if total else 1.0

    def __add__(self, other: "StreamAggregates") -> "StreamAggregates":
        """Order-independent merge of two aggregate sets."""
        merged = StreamAggregates()
        merged.total_calls = dict(self.total_calls)
        for indicator, count in other.total_calls.items():
            merged.total_calls[indicator] = (
                merged.total_calls.get(indicator, 0) + count
            )
        merged._modes = dict(self._modes)
        for key, aggregate in other._modes.items():
            mine = merged._modes.get(key)
            merged._modes[key] = aggregate if mine is None else mine + aggregate
        return merged

    def to_payload(self) -> Dict[str, object]:
        """The whole aggregate set as one picklable dict."""
        return {
            "total_calls": [
                [name, arity, count]
                for (name, arity), count in self.total_calls.items()
            ],
            "modes": [
                [name, arity, mode_text, aggregate.to_payload()]
                for ((name, arity), mode_text), aggregate in self._modes.items()
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "StreamAggregates":
        """Rebuild an aggregate set from :meth:`to_payload` output."""
        aggregates = cls()
        for name, arity, count in payload.get("total_calls", []):
            aggregates.total_calls[(name, arity)] = count
        for name, arity, mode_text, entry in payload.get("modes", []):
            aggregates._modes[((name, arity), mode_text)] = (
                ModeAggregate.from_payload(entry)
            )
        return aggregates

    def to_records(self) -> List[Dict[str, object]]:
        """One ``{"type": "stream"}`` JSONL record per (predicate, mode),
        sorted by predicate then mode for deterministic output."""
        records: List[Dict[str, object]] = []
        for ((name, arity), mode_text), aggregate in sorted(
            self._modes.items(), key=lambda item: item[0]
        ):
            indicator = (name, arity)
            records.append(
                {
                    "type": "stream",
                    "predicate": f"{name}/{arity}",
                    "mode": mode_text,
                    "boxes": aggregate.boxes,
                    "successes": aggregate.successes,
                    "solutions": aggregate.solutions,
                    "mean_cost": aggregate.mean_cost,
                    "mean_solutions": aggregate.mean_solutions,
                    "success_rate": aggregate.success_rate,
                    "total_calls": self.total_calls.get(indicator, 0),
                    "sampled_rate": self.sampled_rate(indicator),
                    "cost": aggregate.cost.quantiles(),
                    "wall": aggregate.wall.quantiles(),
                }
            )
        return records

    def __len__(self) -> int:
        return len(self._modes)
