"""Continuous drift monitoring: streaming aggregates vs. the model.

The post-hoc :class:`~repro.observability.drift.DriftReporter` replays
one query under full event instrumentation and compares afterwards.
The :class:`DriftMonitor` is its always-on sibling: it is *fed*
streaming aggregates (from a
:class:`~repro.observability.streaming.recorder.StreamingRecorder`, or
merged from calibration workers) as the program keeps running, folds
each batch into the shared :class:`~repro.markov.stats_store.StatsStore`
observed tier via :meth:`~repro.markov.stats_store.StatsStore.observe`
— keyed by :meth:`Database.predicate_marks()
<repro.prolog.database.Database.predicate_marks>` generation watermarks
so pre-edit behaviour never pollutes post-edit statistics — and emits a
:class:`~repro.observability.events.DriftEvent` whenever a
(predicate, mode) *newly* crosses the drift thresholds. Each event
names the predicate's whole strongly-connected component, so the
incremental reorder pipeline (``AnalysisContext.apply_drift``) can
rebuild exactly the affected recursion group and its callers, nothing
else.

Import this as ``from repro.observability.streaming.monitor import
DriftMonitor`` (same convention as ``drift.py``): the package
``__init__`` cannot re-export it because this module imports the
model/engine layers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ...analysis.callgraph import CallGraph
from ...analysis.declarations import Declarations
from ...analysis.modes import parse_mode_string
from ...analysis.recursion import affected_predicates, recursion_groups
from ...markov.predicate_model import CostModel
from ...markov.stats_store import StatsStore
from ...prolog.database import Database
from ..drift import DriftOptions, compare_estimates
from ..events import DriftEvent, EventBus
from .aggregate import StreamAggregates

__all__ = ["DriftMonitor"]

Indicator = Tuple[str, int]


class DriftMonitor:
    """Watches streaming aggregates and flags model drift as it happens.

    Feed it :class:`StreamAggregates` batches with :meth:`feed`; it
    returns (and optionally emits onto a bus) the
    :class:`~repro.observability.events.DriftEvent` s for pairs that
    newly crossed the thresholds in that batch. Thresholds are the
    same :class:`~repro.observability.drift.DriftOptions` the post-hoc
    reporter uses, so the two surfaces always agree on what counts as
    drift.
    """

    def __init__(
        self,
        database: Database,
        options: Optional[DriftOptions] = None,
        declarations: Optional[Declarations] = None,
        model: Optional[CostModel] = None,
        store: Optional[StatsStore] = None,
        bus: Optional[EventBus] = None,
        decay: float = 0.3,
    ):
        self.database = database
        self.options = options or DriftOptions()
        self.declarations = declarations or Declarations.from_database(database)
        self.model = model or CostModel(database, self.declarations)
        #: The stats store receiving the live observed feed.
        self.store = store if store is not None else StatsStore()
        #: Optional bus to emit :class:`DriftEvent` s onto as well.
        self.bus = bus
        self.decay = decay
        #: Pairs currently over threshold (events fire on entry only).
        self._flagged: Set[Tuple[Indicator, str]] = set()
        #: Callgraph generation the SCC cache was built against.
        self._scc_generation: Optional[int] = None
        self._scc_of: Dict[Indicator, Tuple[str, ...]] = {}

    def _component_of(self, indicator: Indicator) -> Tuple[str, ...]:
        """The predicate's SCC as sorted ``name/arity`` strings (cached
        per database generation)."""
        generation = self.database.generation
        if self._scc_generation != generation:
            self._scc_of = {}
            callgraph = CallGraph(self.database)
            for component in recursion_groups(callgraph):
                names = tuple(
                    sorted(f"{name}/{arity}" for name, arity in component)
                )
                for member in component:
                    self._scc_of[member] = names
            self._scc_generation = generation
        return self._scc_of.get(
            indicator, (f"{indicator[0]}/{indicator[1]}",)
        )

    def feed(self, aggregates: StreamAggregates) -> List[DriftEvent]:
        """Fold one aggregate batch into the store; return new drift.

        Every well-supported (predicate, mode) aggregate of a *defined*
        predicate (builtins are not calibration targets) is observed
        into the stats store under the predicate's current generation
        mark, then compared against the model. A
        :class:`DriftEvent` fires only when a pair crosses from
        in-band to out-of-band — a pair that stays drifted across
        batches does not re-fire, and a pair that returns in-band
        re-arms.
        """
        marks = self.database.predicate_marks()
        events: List[DriftEvent] = []
        for (indicator, mode_text), aggregate in aggregates.items():
            if not self.database.defines(indicator):
                continue
            if aggregate.boxes < self.options.min_invocations:
                continue
            mode = parse_mode_string(mode_text)
            mark = marks.get(indicator, 0)
            blended = self.store.observe(
                (indicator, mode),
                aggregate.as_goal_stats(),
                weight=float(aggregate.boxes),
                mark=mark,
                decay=self.decay,
            )
            predicted = self.model.predicate_stats(indicator, mode)
            ratio, prob_delta, reasons = compare_estimates(
                blended.stats.cost,
                blended.stats.prob,
                predicted,
                self.options,
            )
            pair = (indicator, mode_text)
            if reasons:
                if pair not in self._flagged:
                    self._flagged.add(pair)
                    event = DriftEvent(
                        indicator=indicator,
                        mode=mode_text,
                        cost_ratio=ratio,
                        prob_delta=prob_delta,
                        reasons=reasons,
                        scc=self._component_of(indicator),
                        mark=mark,
                    )
                    events.append(event)
                    if self.bus is not None:
                        self.bus.emit(event)
            else:
                self._flagged.discard(pair)
        return events

    def drifted_predicates(self) -> Set[Indicator]:
        """Predicates currently over threshold (any mode)."""
        return {indicator for indicator, _mode in self._flagged}

    def invalidation(self) -> Set[Indicator]:
        """The rebuild closure of the currently drifted predicates.

        SCC plus transitive callers — the exact set
        ``AnalysisContext.apply_drift`` (and the incremental pipeline's
        own edit-tracking) would invalidate for an edit to the same
        predicates.
        """
        drifted = self.drifted_predicates()
        if not drifted:
            return set()
        return affected_predicates(CallGraph(self.database), drifted)

    def reset(self) -> None:
        """Forget which pairs are currently flagged (all re-arm)."""
        self._flagged.clear()
