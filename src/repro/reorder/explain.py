"""Explaining reordering decisions.

The paper's Fig. 3 system "informs the programmer"; this module goes a
step further and shows the *evidence*: for a predicate and calling
mode, every candidate order of each mobile block with its Markov-chain
cost estimate, which candidates are illegal (and stay unranked), and
which order wins. This is the debugging/tuning view a user of the
system needs when the model's numbers surprise them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..analysis.modes import Mode, VarState, bind_head_states, mode_str
from ..prolog.database import Clause, body_goals
from ..prolog.terms import Term
from ..prolog.writer import term_to_string
from .goal_search import find_best_order
from .restrictions import order_constraints, partition_body
from .system import Reorderer

__all__ = ["OrderCandidate", "BlockExplanation", "ClauseExplanation", "explain_predicate"]

Indicator = Tuple[str, int]


@dataclass
class OrderCandidate:
    """One permutation of a block with its model evaluation."""

    order: Tuple[int, ...]
    goals_text: str
    legal: bool
    total_cost: Optional[float] = None
    single_cost: Optional[float] = None
    solutions: Optional[float] = None
    chosen: bool = False
    violates_constraints: bool = False

    def format(self) -> str:
        """One candidate line: marker, goals, verdict."""
        marker = ">>" if self.chosen else "  "
        if self.violates_constraints:
            verdict = "blocked by semifixity constraints"
        elif not self.legal:
            verdict = "ILLEGAL (mode violation)"
        else:
            verdict = (
                f"all-solutions cost {self.total_cost:10.2f}   "
                f"solutions {self.solutions:8.2f}"
            )
        return f"{marker} {self.goals_text:<60} {verdict}"


@dataclass
class BlockExplanation:
    """All candidates of one block (or the reason it was skipped)."""

    mobile: bool
    multi_solution: bool
    goals_text: str
    candidates: List[OrderCandidate] = field(default_factory=list)
    note: str = ""

    def format(self) -> str:
        """The block header plus its candidate lines."""
        if not self.mobile:
            return f"  [immobile] {self.goals_text}"
        lines = [f"  [mobile{'' if self.multi_solution else ', one-solution'}] "
                 f"{self.goals_text}"]
        if self.note:
            lines.append(f"    {self.note}")
        for candidate in self.candidates:
            lines.append("    " + candidate.format())
        return "\n".join(lines)


@dataclass
class ClauseExplanation:
    """The block decomposition and candidates of one clause."""

    index: int
    head_text: str
    blocks: List[BlockExplanation]

    def format(self) -> str:
        """The clause header plus its block explanations."""
        lines = [f"clause {self.index + 1}: {self.head_text}"]
        for block in self.blocks:
            lines.append(block.format())
        return "\n".join(lines)


def explain_predicate(
    reorderer: Reorderer,
    indicator: Indicator,
    mode: Mode,
    max_orders: int = 24,
) -> str:
    """A textual explanation of every ordering decision for one
    (predicate, mode)."""
    clauses = reorderer.database.clauses(indicator)
    if not clauses:
        return f"{indicator[0]}/{indicator[1]} is not defined"
    if not reorderer.modes.is_legal(indicator, mode):
        return (
            f"{indicator[0]}/{indicator[1]} has no legal behaviour in mode "
            f"{mode_str(mode)}"
        )
    sections = [
        f"{indicator[0]}/{indicator[1]} in mode {mode_str(mode)}",
        "=" * 50,
    ]
    for clause_index, clause in enumerate(clauses):
        explanation = _explain_clause(
            reorderer, indicator, clause, clause_index, mode, max_orders
        )
        sections.append(explanation.format())
    return "\n".join(sections)


def _explain_clause(
    reorderer: Reorderer,
    indicator: Indicator,
    clause: Clause,
    clause_index: int,
    mode: Mode,
    max_orders: int,
) -> ClauseExplanation:
    states: VarState = {}
    bind_head_states(clause.head, mode, states)
    partition = partition_body(clause.body, reorderer.fixity)
    blocks: List[BlockExplanation] = []
    for block in partition.blocks:
        goals_text = ", ".join(term_to_string(g) for g in block.goals)
        if not block.mobile or len(block) <= 1:
            reorderer.model.evaluate_goals(block.goals, states)
            blocks.append(
                BlockExplanation(
                    mobile=False, multi_solution=block.multi_solution,
                    goals_text=goals_text,
                )
            )
            continue
        explanation = BlockExplanation(
            mobile=True, multi_solution=block.multi_solution,
            goals_text=goals_text,
        )
        constraints = order_constraints(
            block.goals, reorderer.semifixity, states
        )
        permutations = list(
            itertools.permutations(range(len(block.goals)))
        )
        if len(permutations) > max_orders:
            explanation.note = (
                f"{len(permutations)} permutations; showing the chosen "
                f"order only (A* search territory)"
            )
            permutations = []
        best = find_best_order(
            block.goals, dict(states), reorderer.model, constraints,
            multi_solution=block.multi_solution,
            exhaustive_limit=reorderer.options.exhaustive_limit,
        )
        chosen_order = best.order if best is not None else tuple(
            range(len(block.goals))
        )
        shown = permutations or [chosen_order]
        for permutation in shown:
            ordered = [block.goals[i] for i in permutation]
            candidate = OrderCandidate(
                order=permutation,
                goals_text=", ".join(term_to_string(g) for g in ordered),
                legal=False,
                chosen=permutation == chosen_order,
            )
            position = {g: r for r, g in enumerate(permutation)}
            if any(position[a] >= position[b] for a, b in constraints):
                candidate.violates_constraints = True
                explanation.candidates.append(candidate)
                continue
            evaluation = reorderer.model.evaluate_goals(ordered, dict(states))
            if evaluation is not None:
                candidate.legal = True
                candidate.total_cost = evaluation.total_cost
                candidate.single_cost = evaluation.single_cost
                candidate.solutions = evaluation.solutions
            explanation.candidates.append(candidate)
        explanation.candidates.sort(
            key=lambda c: (
                not c.legal,
                c.total_cost if c.total_cost is not None else float("inf"),
            )
        )
        blocks.append(explanation)
        # Advance states along the chosen order.
        if best is not None:
            states.clear()
            states.update(best.states)
        else:
            reorderer.model.evaluate_goals(block.goals, states)
    return ClauseExplanation(
        index=clause_index,
        head_text=term_to_string(clause.head),
        blocks=blocks,
    )
