"""The reordering system (paper §III, §VI): restriction analysis, goal
and clause ordering, per-mode specialisation, and the driving facade."""

from .clause_order import ClauseRanking, heads_mutually_exclusive, order_clauses
from .explain import explain_predicate
from .pipeline import (
    AnalysisContext,
    CachedPredicateBuild,
    Phase,
    PipelineState,
    ReorderPipeline,
)
from .goal_search import (
    DEFAULT_EXHAUSTIVE_LIMIT,
    OrderResult,
    astar_search,
    exhaustive_search,
    find_best_order,
)
from .legality import legal_orders, order_is_legal, propagate_order
from .restrictions import Block, BlockPartition, goal_is_mobile, order_constraints, partition_body
from .specialize import (
    build_dispatcher,
    mode_suffix,
    rename_goal,
    specialized_indicator,
    specialized_name,
)
from .system import (
    ModeVersion,
    ReorderOptions,
    ReorderReport,
    ReorderedProgram,
    Reorderer,
)
from .unfold import UnfoldOptions, UnfoldReport, unfold_clause_goal, unfold_program
from .verify import QueryCheck, VerificationReport, verify_reordering

__all__ = [
    "AnalysisContext",
    "Block",
    "BlockPartition",
    "CachedPredicateBuild",
    "ClauseRanking",
    "DEFAULT_EXHAUSTIVE_LIMIT",
    "ModeVersion",
    "OrderResult",
    "Phase",
    "PipelineState",
    "QueryCheck",
    "ReorderPipeline",
    "ReorderOptions",
    "ReorderReport",
    "ReorderedProgram",
    "Reorderer",
    "UnfoldOptions",
    "UnfoldReport",
    "VerificationReport",
    "astar_search",
    "build_dispatcher",
    "exhaustive_search",
    "explain_predicate",
    "find_best_order",
    "goal_is_mobile",
    "heads_mutually_exclusive",
    "legal_orders",
    "mode_suffix",
    "order_clauses",
    "order_constraints",
    "order_is_legal",
    "partition_body",
    "propagate_order",
    "rename_goal",
    "specialized_indicator",
    "specialized_name",
    "unfold_clause_goal",
    "unfold_program",
    "verify_reordering",
]
