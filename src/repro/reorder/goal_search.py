"""Searching for the cheapest legal goal order (paper §VI-A-3).

Two strategies over the permutations of a mobile block:

* **exhaustive** — evaluate every constraint-respecting, mode-legal
  permutation with the Markov chain and keep the cheapest ("It permutes
  other blocks exhaustively and computes their cost, saving the least
  expensive order");
* **A-star** — "or, if too many permutations are possible, it reorders them
  using best-first search", adapting Smith & Genesereth: nodes are
  ordered prefixes of the block, the evaluation function is the
  all-solutions chain cost of the prefix, which is admissible because
  appending goals to a prefix can only add cost (every visit count and
  every per-visit cost is nonnegative, and the prefix's visit counts do
  not decrease when goals are appended... they can only grow through
  extra backtracking into the prefix). The first complete node popped is
  optimal.

Both prune illegal orders as soon as a prefix calls a goal in an
illegal mode ("As soon as an illegal mode arises, we backtrack to
generate another order, so that we test only legal orders").

Costs: multi-solution blocks are ranked by the all-solutions total
cost; single-solution blocks (goals committed by a cut) by the Fig. 4
single-solution expected cost.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..markov.clause_model import SequenceEvaluation, evaluate_sequence
from ..markov.goal_stats import GoalStats
from ..markov.predicate_model import CostModel
from ..analysis.modes import VarState
from ..prolog.terms import Term
from ..robustness.budget import Budget

__all__ = [
    "OrderResult",
    "SearchCounters",
    "find_best_order",
    "exhaustive_search",
    "astar_search",
]

#: Block sizes up to this bound are permuted exhaustively by default
#: (the paper: "An n-goal clause has n! permutations; for n > 3, trying
#: all of these can be expensive" — modern hardware affords a bit more).
DEFAULT_EXHAUSTIVE_LIMIT = 6

Constraint = Tuple[int, int]


@dataclass
class SearchCounters:
    """Search-internals telemetry, accumulated across blocks.

    One instance rides along a whole :class:`~repro.reorder.system.Reorderer`
    run (the observability layer exports it as a ``search`` record), so
    the counters describe the pipeline's total search effort.
    """

    #: Blocks handed to :func:`find_best_order`.
    blocks: int = 0
    #: Blocks solved by each strategy.
    exhaustive_blocks: int = 0
    astar_blocks: int = 0
    #: Exhaustive: constraint-respecting permutations fully evaluated,
    #: and how many of those the legality filter rejected.
    exhaustive_permutations: int = 0
    exhaustive_illegal: int = 0
    #: A*: child nodes generated, children pruned as mode-illegal,
    #: and the largest open-list size seen.
    astar_expanded: int = 0
    astar_pruned: int = 0
    astar_heap_peak: int = 0
    #: A*: children whose f-value *decreased* relative to their parent —
    #: each one is a violation of the admissibility argument (appending
    #: a goal should never lower the prefix cost).
    admissibility_violations: int = 0
    #: A*: blocks whose node budget ran out, forcing the greedy
    #: admissible-fallback completion (strategy ``astar-greedy``).
    astar_budget_exhausted: int = 0

    def to_dict(self) -> Dict[str, int]:
        """All counters as a flat dict (JSONL-ready)."""
        return {
            "blocks": self.blocks,
            "exhaustive_blocks": self.exhaustive_blocks,
            "astar_blocks": self.astar_blocks,
            "exhaustive_permutations": self.exhaustive_permutations,
            "exhaustive_illegal": self.exhaustive_illegal,
            "astar_expanded": self.astar_expanded,
            "astar_pruned": self.astar_pruned,
            "astar_heap_peak": self.astar_heap_peak,
            "admissibility_violations": self.admissibility_violations,
            "astar_budget_exhausted": self.astar_budget_exhausted,
        }

    def to_record(self) -> Dict[str, object]:
        """The counters as one typed JSONL record."""
        record: Dict[str, object] = {"type": "search"}
        record.update(self.to_dict())
        return record


@dataclass
class OrderResult:
    """Outcome of a block search."""

    #: Chosen order as indices into the original goal list.
    order: Tuple[int, ...]
    #: Chain evaluation of the chosen order.
    evaluation: SequenceEvaluation
    #: Final variable states after the ordered goals.
    states: VarState
    #: Number of (partial or complete) orders evaluated.
    explored: int
    #: Which strategy ran ('exhaustive' or 'astar' or 'fixed').
    strategy: str


def _respects(order: Sequence[int], constraints: Set[Constraint]) -> bool:
    position = {goal_index: rank for rank, goal_index in enumerate(order)}
    return all(position[a] < position[b] for a, b in constraints)


def _order_cost(evaluation: SequenceEvaluation, multi_solution: bool) -> float:
    return evaluation.total_cost if multi_solution else evaluation.single_cost


def exhaustive_search(
    goals: Sequence[Term],
    states: VarState,
    model: CostModel,
    constraints: Set[Constraint],
    multi_solution: bool = True,
    counters: Optional[SearchCounters] = None,
    budget: Optional[Budget] = None,
) -> Optional[OrderResult]:
    """Evaluate every legal permutation; None if none is legal."""
    best: Optional[OrderResult] = None
    explored = 0
    for permutation in itertools.permutations(range(len(goals))):
        if not _respects(permutation, constraints):
            continue
        explored += 1
        if budget is not None:
            budget.check("goal_search.exhaustive")
        if counters is not None:
            counters.exhaustive_permutations += 1
        scratch = dict(states)
        evaluation = model.evaluate_goals(
            [goals[i] for i in permutation], scratch
        )
        if evaluation is None:
            if counters is not None:
                counters.exhaustive_illegal += 1
            continue
        cost = _order_cost(evaluation, multi_solution)
        if best is None or cost < _order_cost(best.evaluation, multi_solution):
            best = OrderResult(
                order=permutation,
                evaluation=evaluation,
                states=scratch,
                explored=explored,
                strategy="exhaustive",
            )
    if best is not None:
        best.explored = explored
    return best


def _greedy_complete(
    goals: Sequence[Term],
    blocked_by: Dict[int, Set[int]],
    order: Tuple[int, ...],
    stats_list: List[GoalStats],
    node_states: VarState,
    model: CostModel,
    multi_solution: bool,
    explored: int,
) -> Optional[OrderResult]:
    """Finish a prefix greedily: cheapest legal goal next, every step.

    The admissible fallback when the A* node budget runs out: the
    prefix handed in is the cheapest open node (its f-value is a lower
    bound on any completion), and the greedy tail keeps every
    mode-legality guarantee — only optimality of the *suffix* is
    surrendered. Ties break toward the lower goal index, keeping the
    fallback deterministic. Returns None from a legality dead end.
    """
    n = len(goals)
    chosen = list(order)
    chosen_stats = list(stats_list)
    states = dict(node_states)
    while len(chosen) < n:
        used = set(chosen)
        best_step: Optional[Tuple[float, int, GoalStats, VarState]] = None
        for candidate in range(n):
            if candidate in used:
                continue
            if blocked_by[candidate] - used:
                continue
            scratch = dict(states)
            stats = model.goal_stats(goals[candidate], scratch)
            if stats is None:
                continue
            explored += 1
            trial = evaluate_sequence(chosen_stats + [stats])
            cost = _order_cost(trial, multi_solution)
            if best_step is None or cost < best_step[0]:
                best_step = (cost, candidate, stats, scratch)
        if best_step is None:
            return None
        _, candidate, stats, states = best_step
        chosen.append(candidate)
        chosen_stats.append(stats)
    evaluation = evaluate_sequence(chosen_stats)
    return OrderResult(
        order=tuple(chosen),
        evaluation=evaluation,
        states=states,
        explored=explored,
        strategy="astar-greedy",
    )


def astar_search(
    goals: Sequence[Term],
    states: VarState,
    model: CostModel,
    constraints: Set[Constraint],
    multi_solution: bool = True,
    counters: Optional[SearchCounters] = None,
    node_budget: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Optional[OrderResult]:
    """Best-first search over ordered prefixes (Smith & Genesereth / A*).

    ``node_budget`` caps the number of generated children; when it runs
    out, the cheapest open prefix is completed greedily (strategy
    ``astar-greedy``) so the block still gets a legal order instead of
    an unbounded search. ``budget`` adds deadline/cancel checks per
    expansion.
    """
    n = len(goals)
    blocked_by: Dict[int, Set[int]] = {i: set() for i in range(n)}
    for before, after in constraints:
        blocked_by[after].add(before)

    counter = itertools.count()  # deterministic tie-breaking
    # Heap entries: (cost, tiebreak, order, stats list, states)
    start: Tuple[float, int, Tuple[int, ...], List[GoalStats], VarState] = (
        0.0, next(counter), (), [], dict(states),
    )
    heap = [start]
    explored = 0
    exhausted = False
    while heap:
        cost, _, order, stats_list, node_states = heapq.heappop(heap)
        if budget is not None:
            budget.check("goal_search.astar")
        if node_budget is not None and explored >= node_budget:
            if counters is not None and not exhausted:
                counters.astar_budget_exhausted += 1
            exhausted = True
            # Greedily finish the cheapest open prefixes until one
            # completes legally; every pop is still best-first.
            result = _greedy_complete(
                goals, blocked_by, order, stats_list, node_states,
                model, multi_solution, explored,
            )
            if result is not None:
                return result
            continue
        if len(order) == n:
            evaluation = evaluate_sequence(stats_list)
            return OrderResult(
                order=order,
                evaluation=evaluation,
                states=node_states,
                explored=explored,
                strategy="astar",
            )
        used = set(order)
        for candidate in range(n):
            if candidate in used:
                continue
            if blocked_by[candidate] - used:
                continue  # a must-precede goal is not placed yet
            explored += 1
            child_states = dict(node_states)
            stats = model.goal_stats(goals[candidate], child_states)
            if stats is None:
                if counters is not None:
                    counters.astar_pruned += 1
                continue  # illegal in this position: prune
            child_stats = stats_list + [stats]
            child_eval = evaluate_sequence(child_stats)
            child_cost = _order_cost(child_eval, multi_solution)
            if counters is not None:
                counters.astar_expanded += 1
                if child_cost < cost - 1e-9:
                    counters.admissibility_violations += 1
            heapq.heappush(
                heap,
                (
                    child_cost,
                    next(counter),
                    order + (candidate,),
                    child_stats,
                    child_states,
                ),
            )
            if counters is not None and len(heap) > counters.astar_heap_peak:
                counters.astar_heap_peak = len(heap)
    return None


def find_best_order(
    goals: Sequence[Term],
    states: VarState,
    model: CostModel,
    constraints: Optional[Set[Constraint]] = None,
    multi_solution: bool = True,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    counters: Optional[SearchCounters] = None,
    node_budget: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Optional[OrderResult]:
    """Best legal order of a block: exhaustive for small blocks, A* above
    the limit. None when no order is legal (caller falls back to the
    source order and reports). ``node_budget`` bounds the A* expansion
    (greedy admissible fallback past it); ``budget`` adds
    deadline/cancel checks inside both strategies."""
    constraints = constraints or set()
    if counters is not None:
        counters.blocks += 1
    if len(goals) <= 1:
        scratch = dict(states)
        evaluation = model.evaluate_goals(list(goals), scratch)
        if evaluation is None:
            return None
        return OrderResult(
            order=tuple(range(len(goals))),
            evaluation=evaluation,
            states=scratch,
            explored=1,
            strategy="fixed",
        )
    if len(goals) <= exhaustive_limit:
        if counters is not None:
            counters.exhaustive_blocks += 1
        return exhaustive_search(
            goals, states, model, constraints, multi_solution, counters,
            budget=budget,
        )
    if counters is not None:
        counters.astar_blocks += 1
    return astar_search(
        goals, states, model, constraints, multi_solution, counters,
        node_budget=node_budget, budget=budget,
    )
