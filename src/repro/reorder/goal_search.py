"""Searching for the cheapest legal goal order (paper §VI-A-3).

Two strategies over the permutations of a mobile block:

* **exhaustive** — evaluate every constraint-respecting, mode-legal
  permutation with the Markov chain and keep the cheapest ("It permutes
  other blocks exhaustively and computes their cost, saving the least
  expensive order");
* **A-star** — "or, if too many permutations are possible, it reorders them
  using best-first search", adapting Smith & Genesereth: nodes are
  ordered prefixes of the block, the evaluation function is the
  all-solutions chain cost of the prefix, which is admissible because
  appending goals to a prefix can only add cost (every visit count and
  every per-visit cost is nonnegative, and the prefix's visit counts do
  not decrease when goals are appended... they can only grow through
  extra backtracking into the prefix). The first complete node popped is
  optimal.

Both prune illegal orders as soon as a prefix calls a goal in an
illegal mode ("As soon as an illegal mode arises, we backtrack to
generate another order, so that we test only legal orders").

Costs: multi-solution blocks are ranked by the all-solutions total
cost; single-solution blocks (goals committed by a cut) by the Fig. 4
single-solution expected cost.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..markov.clause_model import SequenceEvaluation, evaluate_sequence
from ..markov.goal_stats import GoalStats
from ..markov.predicate_model import CostModel
from ..analysis.modes import VarState
from ..prolog.terms import Term

__all__ = ["OrderResult", "find_best_order", "exhaustive_search", "astar_search"]

#: Block sizes up to this bound are permuted exhaustively by default
#: (the paper: "An n-goal clause has n! permutations; for n > 3, trying
#: all of these can be expensive" — modern hardware affords a bit more).
DEFAULT_EXHAUSTIVE_LIMIT = 6

Constraint = Tuple[int, int]


@dataclass
class OrderResult:
    """Outcome of a block search."""

    #: Chosen order as indices into the original goal list.
    order: Tuple[int, ...]
    #: Chain evaluation of the chosen order.
    evaluation: SequenceEvaluation
    #: Final variable states after the ordered goals.
    states: VarState
    #: Number of (partial or complete) orders evaluated.
    explored: int
    #: Which strategy ran ('exhaustive' or 'astar' or 'fixed').
    strategy: str


def _respects(order: Sequence[int], constraints: Set[Constraint]) -> bool:
    position = {goal_index: rank for rank, goal_index in enumerate(order)}
    return all(position[a] < position[b] for a, b in constraints)


def _order_cost(evaluation: SequenceEvaluation, multi_solution: bool) -> float:
    return evaluation.total_cost if multi_solution else evaluation.single_cost


def exhaustive_search(
    goals: Sequence[Term],
    states: VarState,
    model: CostModel,
    constraints: Set[Constraint],
    multi_solution: bool = True,
) -> Optional[OrderResult]:
    """Evaluate every legal permutation; None if none is legal."""
    best: Optional[OrderResult] = None
    explored = 0
    for permutation in itertools.permutations(range(len(goals))):
        if not _respects(permutation, constraints):
            continue
        explored += 1
        scratch = dict(states)
        evaluation = model.evaluate_goals(
            [goals[i] for i in permutation], scratch
        )
        if evaluation is None:
            continue
        cost = _order_cost(evaluation, multi_solution)
        if best is None or cost < _order_cost(best.evaluation, multi_solution):
            best = OrderResult(
                order=permutation,
                evaluation=evaluation,
                states=scratch,
                explored=explored,
                strategy="exhaustive",
            )
    if best is not None:
        best.explored = explored
    return best


def astar_search(
    goals: Sequence[Term],
    states: VarState,
    model: CostModel,
    constraints: Set[Constraint],
    multi_solution: bool = True,
) -> Optional[OrderResult]:
    """Best-first search over ordered prefixes (Smith & Genesereth / A*)."""
    n = len(goals)
    blocked_by: Dict[int, Set[int]] = {i: set() for i in range(n)}
    for before, after in constraints:
        blocked_by[after].add(before)

    counter = itertools.count()  # deterministic tie-breaking
    # Heap entries: (cost, tiebreak, order, stats list, states)
    start: Tuple[float, int, Tuple[int, ...], List[GoalStats], VarState] = (
        0.0, next(counter), (), [], dict(states),
    )
    heap = [start]
    explored = 0
    while heap:
        cost, _, order, stats_list, node_states = heapq.heappop(heap)
        if len(order) == n:
            evaluation = evaluate_sequence(stats_list)
            return OrderResult(
                order=order,
                evaluation=evaluation,
                states=node_states,
                explored=explored,
                strategy="astar",
            )
        used = set(order)
        for candidate in range(n):
            if candidate in used:
                continue
            if blocked_by[candidate] - used:
                continue  # a must-precede goal is not placed yet
            explored += 1
            child_states = dict(node_states)
            stats = model.goal_stats(goals[candidate], child_states)
            if stats is None:
                continue  # illegal in this position: prune
            child_stats = stats_list + [stats]
            child_eval = evaluate_sequence(child_stats)
            child_cost = _order_cost(child_eval, multi_solution)
            heapq.heappush(
                heap,
                (
                    child_cost,
                    next(counter),
                    order + (candidate,),
                    child_stats,
                    child_states,
                ),
            )
    return None


def find_best_order(
    goals: Sequence[Term],
    states: VarState,
    model: CostModel,
    constraints: Optional[Set[Constraint]] = None,
    multi_solution: bool = True,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
) -> Optional[OrderResult]:
    """Best legal order of a block: exhaustive for small blocks, A* above
    the limit. None when no order is legal (caller falls back to the
    source order and reports)."""
    constraints = constraints or set()
    if len(goals) <= 1:
        scratch = dict(states)
        evaluation = model.evaluate_goals(list(goals), scratch)
        if evaluation is None:
            return None
        return OrderResult(
            order=tuple(range(len(goals))),
            evaluation=evaluation,
            states=scratch,
            explored=1,
            strategy="fixed",
        )
    if len(goals) <= exhaustive_limit:
        return exhaustive_search(goals, states, model, constraints, multi_solution)
    return astar_search(goals, states, model, constraints, multi_solution)
