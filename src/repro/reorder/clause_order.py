"""Clause reordering (paper §III-A).

Clauses of a predicate are ordered by decreasing ``p/c`` — success
probability over expected cost — the Li & Wah optimal order for the
children of an OR-node: the least costly answer is found first.

Restrictions honoured:

* a clause containing a (clause-level) cut is "essentially fixed within
  its predicate" (§IV-D-1) and keeps its absolute position, *except*
  when it is mutually exclusive (for the calling mode) with the clauses
  it would swap past — then the swap "will at most bolster an
  inadequate indexing system" and is allowed;
* a *fixed* clause (one that calls a fixed goal, §IV-B) keeps its
  absolute position;
* when all answers are wanted the search tree is no smaller (§III-A:
  "we have gained nothing"), but the order still matters for
  single-answer queries, so reordering is performed whenever permitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.fixity import FixityAnalysis
from ..analysis.modes import Mode
from ..markov.goal_stats import GoalStats
from ..prolog.database import Clause
from ..prolog.terms import Term, Var, deref, rename_term
from ..prolog.unify import Trail, unify
from .restrictions import _contains_cut

__all__ = ["ClauseRanking", "heads_mutually_exclusive", "order_clauses"]


@dataclass
class ClauseRanking:
    """One clause with the statistics used to rank it."""

    clause: Clause
    stats: GoalStats
    #: Match-probability-weighted success probability.
    p: float
    #: Expected cost of attempting the clause.
    c: float

    @property
    def ratio(self) -> float:
        return self.p / self.c if self.c > 0 else float("inf")


def heads_mutually_exclusive(first: Clause, second: Clause) -> bool:
    """Can no call unify with both heads? (Then swapping past a cut is
    safe for any mode — §IV-D-1's 'trivial exception'.)

    Conservative test: rename both heads apart and try to unify them;
    if they unify, some call could match both.
    """
    head_a = rename_term(deref(first.head), {})
    head_b = rename_term(deref(second.head), {})
    trail = Trail()
    compatible = unify(head_a, head_b, trail)
    trail.undo_to(0)
    return not compatible


def _clause_is_anchored(clause: Clause, fixity: FixityAnalysis) -> bool:
    """Must this clause keep its absolute position?"""
    if fixity.clause_is_fixed(clause.body):
        return True
    return False


def _has_clause_cut(clause: Clause) -> bool:
    return _contains_cut(clause.body)


def order_clauses(
    rankings: Sequence[ClauseRanking],
    fixity: FixityAnalysis,
) -> List[ClauseRanking]:
    """Reorder clauses by decreasing p/c under the §IV restrictions.

    Anchored clauses (fixed, or cut-bearing and not mutually exclusive
    with everything they would cross) keep their absolute positions;
    the mobile clauses are sorted by ratio into the remaining slots.
    """
    n = len(rankings)
    anchored: dict = {}
    mobile: List[ClauseRanking] = []
    for index, ranking in enumerate(rankings):
        if _clause_is_anchored(ranking.clause, fixity):
            anchored[index] = ranking
        elif _has_clause_cut(ranking.clause):
            # Mobile only if mutually exclusive with every other clause.
            exclusive = all(
                other is ranking
                or heads_mutually_exclusive(ranking.clause, other.clause)
                for other in rankings
            )
            if exclusive:
                mobile.append(ranking)
            else:
                anchored[index] = ranking
        else:
            mobile.append(ranking)
    # Stable sort: equal ratios keep source order.
    mobile.sort(key=lambda r: -r.ratio)
    result: List[Optional[ClauseRanking]] = [None] * n
    for index, ranking in anchored.items():
        result[index] = ranking
    iterator = iter(mobile)
    for slot in range(n):
        if result[slot] is None:
            result[slot] = next(iterator)
    return [ranking for ranking in result if ranking is not None]
