"""The reordering system (paper Fig. 3 and §VI-B-2).

:class:`Reorderer` wires the analyses together and drives the
per-predicate, per-mode restructuring:

1. read the program and its declarations;
2. run the automatic analyses — call graph, entry points, recursion,
   fixity, semifixity, mode inference, domain estimation;
3. working callees-first (reverse topological order over the call
   graph's SCC condensation), reorder every user predicate for every
   legal {+,-} input mode: partition each clause body into blocks,
   search the mobile blocks for the cheapest legal order, reorder the
   clauses by ``p/c``, and rename subgoals to the mode-specialised
   versions of their predicates;
4. emit a new program containing the specialised versions plus a
   ``var/1``-testing dispatcher under each original name, so the result
   is a drop-in replacement for the original.

Everything the system could not infer (undeclared recursive modes,
unknown costs) is reported through ``ReorderedProgram.report.warnings``
— the Fig. 3 requirement that "the system informs the programmer when
it cannot infer properties of the program".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.callgraph import CallGraph
from ..analysis.declarations import Declarations
from ..analysis.domains import DomainAnalysis
from ..analysis.fixity import FixityAnalysis
from ..analysis.mode_inference import ModeInference
from ..analysis.modes import (
    Mode,
    ModeItem,
    VarState,
    bind_head_states,
    call_mode,
    mode_str,
)
from ..analysis.recursion import recursive_predicates, strongly_connected_components
from ..analysis.semifixity import SemifixityAnalysis
from ..markov.clause_model import SequenceEvaluation
from ..markov.goal_stats import GoalStats
from ..markov.predicate_model import CostModel, head_match_probability
from ..observability.spans import SpanRecorder
from ..prolog.database import Clause, Database, body_goals, goals_to_body
from ..prolog.engine import Engine
from ..prolog.terms import (
    Atom,
    Struct,
    Term,
    deref,
    functor_indicator,
    indicator_str,
)
from ..prolog.writer import clause_to_string, program_to_string
from .clause_order import ClauseRanking, order_clauses
from .goal_search import DEFAULT_EXHAUSTIVE_LIMIT, SearchCounters, find_best_order
from .restrictions import order_constraints, partition_body
from .specialize import build_dispatcher, rename_goal, specialized_name

__all__ = ["ReorderOptions", "ModeVersion", "ReorderReport", "ReorderedProgram", "Reorderer"]

Indicator = Tuple[str, int]


@dataclass
class ReorderOptions:
    """Knobs of the reordering system."""

    #: Reorder goals within clauses (§III-B).
    reorder_goals: bool = True
    #: Reorder clauses within predicates (§III-A).
    reorder_clauses: bool = True
    #: Emit one version per legal mode plus dispatchers (§VII); when
    #: False, each predicate is reordered in place for its most general
    #: legal mode and keeps its name.
    specialize: bool = True
    #: Blocks up to this size are permuted exhaustively; larger ones use
    #: the A* best-first search (§VI-A-3).
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT
    #: Predicates with more legal modes than this are not specialised
    #: (they are reordered in place like specialize=False).
    max_versions: int = 16
    #: First-argument indexing for the emitted database.
    indexing: bool = True
    #: §V-D run-time tests: when a predicate is reordered *in place*
    #: (specialize=False, or too many modes), clauses whose best order
    #: under full instantiation differs from the generic order get a
    #: ``nonvar``-guarded if-then-else — "the tests are the if, the
    #: reordered version is the then, and the original is the else".
    runtime_tests: bool = False
    #: §VIII unfolding: sweeps of Tamaki–Sato goal unfolding applied to
    #: the program before analysis, to "increase the possibilities for
    #: reordering". 0 disables.
    unfold_rounds: int = 0
    #: Cost-model assumption that *every* user predicate runs tabled
    #: (the engine's ``table_all`` switch / CLI ``--table-all``):
    #: recursive calls become cheap answer streams and per-predicate
    #: costs amortize, so the chosen goal orders can differ.
    table_all: bool = False


@dataclass
class ModeVersion:
    """One mode-specialised version of one predicate."""

    indicator: Indicator
    mode: Mode
    name: str
    clauses: List[Clause]
    #: Model estimate for the reordered version.
    estimate: Optional[GoalStats]
    #: Model estimate for the original (for the report).
    original_estimate: Optional[GoalStats]

    @property
    def version_indicator(self) -> Indicator:
        return (self.name, self.indicator[1])


@dataclass
class ReorderReport:
    """What the reorderer did and what it could not do."""

    warnings: List[str] = field(default_factory=list)
    #: (indicator, mode) → human-readable decision lines.
    decisions: Dict[Tuple[Indicator, Mode], List[str]] = field(default_factory=dict)
    fixed_predicates: Set[Indicator] = field(default_factory=set)
    recursive_predicates: Set[Indicator] = field(default_factory=set)
    semifixed_predicates: Set[Indicator] = field(default_factory=set)
    tabled_predicates: Set[Indicator] = field(default_factory=set)

    def note(self, indicator: Indicator, mode: Mode, line: str) -> None:
        """Record one human-readable decision line."""
        self.decisions.setdefault((indicator, mode), []).append(line)

    def summary(self) -> str:
        """All decisions and warnings as one text block."""
        lines = []
        for (indicator, mode), notes in self.decisions.items():
            header = f"{indicator_str(indicator)} {mode_str(mode)}"
            for note in notes:
                lines.append(f"{header}: {note}")
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """The report as JSON-serializable data (for the JSONL export)."""
        decisions = [
            {
                "predicate": indicator_str(indicator),
                "mode": mode_str(mode),
                "note": note,
            }
            for (indicator, mode), notes in self.decisions.items()
            for note in notes
        ]
        return {
            "decisions": decisions,
            "warnings": list(self.warnings),
            "fixed": sorted(indicator_str(i) for i in self.fixed_predicates),
            "recursive": sorted(
                indicator_str(i) for i in self.recursive_predicates
            ),
            "semifixed": sorted(
                indicator_str(i) for i in self.semifixed_predicates
            ),
            "tabled": sorted(
                indicator_str(i) for i in self.tabled_predicates
            ),
        }


class ReorderedProgram:
    """The output of the reorderer: a drop-in replacement program."""

    def __init__(
        self,
        database: Database,
        versions: Dict[Tuple[Indicator, Mode], ModeVersion],
        report: ReorderReport,
        original: Database,
        version_names: Optional[Dict[Tuple[Indicator, Mode], str]] = None,
    ):
        self.database = database
        self.versions = versions
        self.report = report
        self.original = original
        self._version_names = version_names or {}

    def version_name(self, indicator: Indicator, mode: Mode) -> Optional[str]:
        """The specialised predicate name serving a call mode (modes
        merged into another version resolve to the canonical name)."""
        name = self._version_names.get((indicator, mode))
        if name is not None:
            return name
        version = self.versions.get((indicator, mode))
        return version.name if version else None

    def engine(self, **kwargs) -> Engine:
        """An engine executing the reordered program."""
        return Engine(self.database, **kwargs)

    def source(self) -> str:
        """The reordered program as Prolog source text.

        ``:- table`` directives are re-emitted first (under the
        specialised version names), so consulting the printed program
        reproduces the tabling behaviour of the in-memory one.
        """
        directives = "".join(
            f":- table {name}/{arity}.\n"
            for name, arity in sorted(self.database.tabled)
        )
        body = program_to_string(self.database.to_terms(), self.database.operators)
        return directives + body


class Reorderer:
    """Drives the full reordering pipeline over one program."""

    def __init__(
        self,
        database: Database,
        options: Optional[ReorderOptions] = None,
        declarations: Optional[Declarations] = None,
        spans: Optional[SpanRecorder] = None,
    ):
        self.options = options or ReorderOptions()
        #: Pipeline-phase wall-clock telemetry (shared when passed in).
        self.spans = spans if spans is not None else SpanRecorder()
        #: Search-internals telemetry, accumulated across all blocks.
        self.search_counters = SearchCounters()
        if self.options.unfold_rounds > 0:
            from .unfold import UnfoldOptions, unfold_program

            with self.spans.span("unfold", rounds=self.options.unfold_rounds):
                database, unfold_report = unfold_program(
                    database, UnfoldOptions(rounds=self.options.unfold_rounds)
                )
            self.unfold_report = unfold_report
        else:
            self.spans.mark_skipped("unfold")
            self.unfold_report = None
        self.database = database
        with self.spans.span("declarations"):
            self.declarations = declarations or Declarations.from_database(database)
        with self.spans.span("call graph"):
            self.callgraph = CallGraph(database)
        with self.spans.span("fixity"):
            self.fixity = FixityAnalysis(database, self.callgraph, self.declarations)
        with self.spans.span("semifixity"):
            self.semifixity = SemifixityAnalysis(database, self.callgraph, self.declarations)
        with self.spans.span("mode inference"):
            self.modes = ModeInference(database, self.declarations, self.callgraph)
            self.domains = DomainAnalysis(database, self.declarations)
        self.model = CostModel(
            database, self.declarations, self.modes, self.domains,
            table_all=self.options.table_all,
        )
        self.report = ReorderReport()
        #: (indicator, mode) → final specialised name (after dedup).
        self._version_names: Dict[Tuple[Indicator, Mode], str] = {}

    # -- public API -------------------------------------------------------

    def reorder(self) -> ReorderedProgram:
        """Run the pipeline and return the reordered program."""
        self._record_analysis_summary()
        versions: Dict[Tuple[Indicator, Mode], ModeVersion] = {}
        for indicator in self._processing_order():
            for version in self._process_predicate(indicator):
                versions[(version.indicator, version.mode)] = version
        output = self._build_output(versions)
        self.report.warnings.extend(self.modes.warnings)
        self.report.warnings.extend(self.model.warnings)
        return ReorderedProgram(
            output, versions, self.report, self.database,
            version_names=dict(self._version_names),
        )

    # -- pipeline steps -------------------------------------------------------

    def _record_analysis_summary(self) -> None:
        self.report.fixed_predicates = set(self.fixity.fixed_predicates)
        self.report.recursive_predicates = set(
            recursive_predicates(self.callgraph)
        ) | set(self.declarations.recursive)
        self.report.semifixed_predicates = {
            indicator
            for indicator in self.database.predicates()
            if self.semifixity.is_semifixed(indicator)
        }
        self.report.tabled_predicates = {
            indicator
            for indicator in self.database.predicates()
            if self.model.is_tabled(indicator)
        }

    def _processing_order(self) -> List[Indicator]:
        """User predicates, callees before callers (Tarjan emission order
        is reverse topological over the condensation)."""
        components = strongly_connected_components(self.callgraph.callees)
        order: List[Indicator] = []
        for component in components:
            for indicator in sorted(component):
                if self.database.defines(indicator):
                    order.append(indicator)
        return order

    def _modes_for(self, indicator: Indicator) -> List[Mode]:
        legal = self.modes.legal_input_modes(indicator)
        if not legal:
            self.report.warnings.append(
                f"{indicator_str(indicator)}: no legal {{+,-}} input modes "
                f"inferred or declared; keeping the original definition"
            )
        return legal

    def _process_predicate(self, indicator: Indicator) -> List[ModeVersion]:
        clauses = self.database.clauses(indicator)
        modes = self._modes_for(indicator)
        should_specialize = (
            self.options.specialize
            and indicator[1] > 0
            and 0 < len(modes) <= self.options.max_versions
        )
        if not modes:
            # Keep the predicate verbatim (still reachable via output build).
            version = ModeVersion(
                indicator=indicator,
                mode=(),
                name=indicator[0],
                clauses=list(clauses),
                estimate=None,
                original_estimate=None,
            )
            self._version_names[(indicator, ())] = indicator[0]
            return [version]
        if not should_specialize:
            mode = self._generic_mode(indicator, modes)
            version = self._build_version(indicator, clauses, mode, rename=False)
            version.name = indicator[0]
            self._version_names[(indicator, mode)] = indicator[0]
            for other in modes:
                self._version_names.setdefault((indicator, other), indicator[0])
            if self.options.runtime_tests and indicator[1] > 0:
                self._add_runtime_guards(indicator, clauses, version, mode, modes)
            return [version]
        versions = [
            self._build_version(indicator, clauses, mode, rename=True)
            for mode in modes
        ]
        self._dedup_versions(indicator, versions)
        return versions

    @staticmethod
    def _generic_mode(indicator: Indicator, modes: List[Mode]) -> Mode:
        all_free = (ModeItem.MINUS,) * indicator[1]
        return all_free if all_free in modes else modes[0]

    def _add_runtime_guards(
        self,
        indicator: Indicator,
        clauses: Sequence[Clause],
        version: ModeVersion,
        generic_mode: Mode,
        legal_modes: List[Mode],
    ) -> None:
        """§V-D: wrap clauses in ``nonvar``-guarded if-then-else when the
        fully-instantiated mode prefers a different goal order.

        The guarded clause replaces the version's corresponding clause:
        ``head :- ( nonvar(A1), ... -> optimistic body ; generic body )``.
        Both bodies are the reorderer's output for their respective
        modes, so either branch is safe; the tests cost a few tag
        checks (the paper: "we use the new order and gain efficiency;
        if they fail, we use the original order and lose only the cost
        of the tests").
        """
        optimistic_mode = (ModeItem.PLUS,) * indicator[1]
        if optimistic_mode == generic_mode or optimistic_mode not in legal_modes:
            return
        guarded: List[Clause] = []
        changed = False
        for clause, generic_clause in zip(clauses, version.clauses):
            optimistic_goals, evaluation = self._reorder_clause_goals(
                indicator, clause, optimistic_mode
            )
            generic_goals = body_goals(generic_clause.body)
            optimistic_body = goals_to_body(optimistic_goals)
            if evaluation is None or _same_goal_sequence(
                optimistic_goals, generic_goals
            ):
                guarded.append(generic_clause)
                continue
            head = deref(clause.head)
            if not isinstance(head, Struct):
                guarded.append(generic_clause)
                continue
            condition = goals_to_body(
                [Struct("nonvar", (arg,)) for arg in head.args]
            )
            body = Struct(
                ";",
                (
                    Struct("->", (condition, optimistic_body)),
                    generic_clause.body,
                ),
            )
            guarded.append(Clause(clause.head, body))
            changed = True
        if changed:
            version.clauses = guarded
            self.report.note(
                indicator, generic_mode,
                "run-time nonvar tests added (different order when instantiated)",
            )

    # -- building one version ---------------------------------------------------

    def _build_version(
        self,
        indicator: Indicator,
        clauses: Sequence[Clause],
        mode: Mode,
        rename: bool,
    ) -> ModeVersion:
        name = specialized_name(indicator[0], mode) if rename else indicator[0]
        self._version_names[(indicator, mode)] = name
        original_estimate = self.model.predicate_stats(indicator, mode)
        rankings: List[ClauseRanking] = []
        evaluations: List[Tuple[float, Optional[SequenceEvaluation]]] = []
        for clause in clauses:
            new_goals, evaluation = self._reorder_clause_goals(indicator, clause, mode)
            if rename:
                with self.spans.span("specialize"):
                    renamed_goals = self._rename_goals(clause, new_goals, mode)
            else:
                renamed_goals = new_goals
            head = rename_goal(clause.head, name) if rename else clause.head
            new_clause = Clause(head, goals_to_body(renamed_goals))
            match = head_match_probability(clause, mode, self.domains)
            evaluations.append((match, evaluation))
            if evaluation is None:
                stats = GoalStats(cost=1.0, solutions=0.0, prob=0.0)
                p, c = 0.0, 1.0
            else:
                stats = evaluation.as_goal_stats()
                p = match * evaluation.p_success
                c = max(match * evaluation.single_cost, 1e-6)
            rankings.append(ClauseRanking(clause=new_clause, stats=stats, p=p, c=c))

        if self.options.reorder_clauses and len(rankings) > 1:
            with self.spans.span("clause order"):
                ordered = order_clauses(rankings, self.fixity)
            if [r.clause for r in ordered] != [r.clause for r in rankings]:
                self.report.note(
                    indicator, mode,
                    "clauses reordered to "
                    + str([rankings.index(r) + 1 for r in ordered]),
                )
            rankings = ordered

        new_clauses = [ranking.clause for ranking in rankings]
        # Propagate the reordered version's statistics upward so callers
        # are ordered against the costs they will actually see.
        estimate = self._combined_stats(evaluations)
        if estimate is not None and self.model.is_tabled(indicator):
            # Callers of a tabled predicate mostly pay the amortized
            # re-call cost, not the first derivation.
            from ..prolog.tabling.cost import tabled_stats

            estimate = tabled_stats(estimate)
        if estimate is not None:
            self.model.override_stats(indicator, mode, estimate)
            if (
                original_estimate is not None
                and estimate.cost < original_estimate.cost * 0.999
            ):
                # The paper stores mode, probability and cost with each
                # version; surface the estimated gain in the report.
                self.report.note(
                    indicator, mode,
                    f"estimated cost {original_estimate.cost:.1f} -> "
                    f"{estimate.cost:.1f} "
                    f"(p {original_estimate.prob:.2f} -> {estimate.prob:.2f})",
                )
        return ModeVersion(
            indicator=indicator,
            mode=mode,
            name=name,
            clauses=new_clauses,
            estimate=estimate,
            original_estimate=original_estimate,
        )

    @staticmethod
    def _combined_stats(
        evaluations: List[Tuple[float, Optional[SequenceEvaluation]]]
    ) -> Optional[GoalStats]:
        """Predicate stats from per-clause (match prob, evaluation)."""
        total_cost = 1.0
        solutions = 0.0
        miss = 1.0
        any_legal = False
        for match, evaluation in evaluations:
            if evaluation is None or match == 0.0:
                continue
            any_legal = True
            total_cost += match * evaluation.total_cost
            solutions += match * evaluation.solutions
            miss *= 1.0 - match * evaluation.p_success
        if not any_legal:
            return None
        return GoalStats(cost=total_cost, solutions=solutions, prob=1.0 - miss)

    def _reorder_clause_goals(
        self, indicator: Indicator, clause: Clause, mode: Mode
    ) -> Tuple[List[Term], Optional[SequenceEvaluation]]:
        """Reorder one clause body for one input mode.

        Returns the new goal list (original predicate names — renaming
        happens later) and the chain evaluation of the new order."""
        states: VarState = {}
        bind_head_states(clause.head, mode, states)
        new_goals, legal = self._reorder_goal_sequence(
            indicator, mode, clause.body, states
        )
        if self.options.reorder_goals:
            inner_states: VarState = {}
            bind_head_states(clause.head, mode, inner_states)
            new_goals = self._reorder_inner_controls(
                indicator, mode, new_goals, inner_states
            )
        evaluation = (
            self.model.clause_body_evaluation(
                Clause(clause.head, goals_to_body(new_goals)), mode
            )
            if legal
            else None
        )
        return new_goals, evaluation

    def _reorder_goal_sequence(
        self,
        indicator: Indicator,
        mode: Mode,
        body: Term,
        states: VarState,
        multi_default: bool = True,
    ) -> Tuple[List[Term], bool]:
        """Block-partition and reorder one conjunction; advances states.

        ``multi_default=False`` ranks every block by the single-solution
        chain (used for contexts that need only the first answer, e.g.
        inside negation)."""
        partition = partition_body(body, self.fixity)
        new_goals: List[Term] = []
        legal = True
        for block in partition.blocks:
            multi = block.multi_solution and multi_default
            if (
                not block.mobile
                or not self.options.reorder_goals
                or len(block) <= 1
            ):
                evaluation = self.model.evaluate_goals(block.goals, states)
                if evaluation is None:
                    legal = False
                new_goals.extend(block.goals)
                continue
            constraints = order_constraints(block.goals, self.semifixity, states)
            with self.spans.span("goal search"):
                result = find_best_order(
                    block.goals,
                    states,
                    self.model,
                    constraints,
                    multi_solution=multi,
                    exhaustive_limit=self.options.exhaustive_limit,
                    counters=self.search_counters,
                )
            if result is None:
                self.report.note(
                    indicator, mode,
                    f"no legal order for a {len(block)}-goal block; kept source order",
                )
                self.model.evaluate_goals(block.goals, states)
                new_goals.extend(block.goals)
                legal = False
                continue
            if result.order != tuple(range(len(block.goals))):
                self.report.note(
                    indicator, mode,
                    f"goals reordered to {[i + 1 for i in result.order]} "
                    f"({result.strategy}, {result.explored} orders examined)",
                )
            new_goals.extend(block.goals[i] for i in result.order)
            states.clear()
            states.update(result.states)
        return new_goals, legal

    # -- reordering inside control constructs (§IV-D-2/5/6) -------------------

    def _reorder_inner_controls(
        self, indicator: Indicator, mode: Mode, goals: List[Term], states: VarState
    ) -> List[Term]:
        """Reorder the conjunctions *inside* negation, the set
        predicates, and disjunction halves ("we reorder multiple goals
        within its argument", "we reorder the internal goals"). One
        nesting level; deeper structure is left as written."""
        rebuilt: List[Term] = []
        for goal in goals:
            rebuilt.append(self._reorder_compound(indicator, mode, goal, states))
            self.modes.abstract_execute(goal, states)
        return rebuilt

    def _reorder_compound(
        self, indicator: Indicator, mode: Mode, goal: Term, states: VarState
    ) -> Term:
        goal_deref = deref(goal)
        if not isinstance(goal_deref, Struct):
            return goal
        name, arity = goal_deref.name, goal_deref.arity
        if name in ("\\+", "not", "once") and arity == 1:
            # Only the first solution of the argument matters.
            inner = self._reorder_subbody(
                indicator, mode, goal_deref.args[0], dict(states), multi=False
            )
            return Struct(name, (inner,))
        if name in ("findall", "bagof", "setof") and arity == 3:
            rebuilt = self._reorder_caret_body(
                indicator, mode, goal_deref.args[1], dict(states)
            )
            return Struct(
                name, (goal_deref.args[0], rebuilt, goal_deref.args[2])
            )
        if name == ";" and arity == 2:
            left = deref(goal_deref.args[0])
            if isinstance(left, Struct) and left.name == "->" and left.arity == 2:
                # The premise is immobile "exactly like goals before a
                # cut" (§IV-D-3); then/else halves reorder.
                condition_states = dict(states)
                self.modes.abstract_execute(left.args[0], condition_states)
                then_part = self._reorder_subbody(
                    indicator, mode, left.args[1], condition_states
                )
                else_part = self._reorder_subbody(
                    indicator, mode, goal_deref.args[1], dict(states)
                )
                return Struct(
                    ";", (Struct("->", (left.args[0], then_part)), else_part)
                )
            left_part = self._reorder_subbody(
                indicator, mode, goal_deref.args[0], dict(states)
            )
            right_part = self._reorder_subbody(
                indicator, mode, goal_deref.args[1], dict(states)
            )
            return Struct(";", (left_part, right_part))
        return goal

    def _reorder_subbody(
        self,
        indicator: Indicator,
        mode: Mode,
        body: Term,
        states: VarState,
        multi: bool = True,
    ) -> Term:
        goals, _legal = self._reorder_goal_sequence(
            indicator, mode, body, states, multi_default=multi
        )
        return goals_to_body(goals)

    def _reorder_caret_body(
        self, indicator: Indicator, mode: Mode, term: Term, states: VarState
    ) -> Term:
        term_deref = deref(term)
        if (
            isinstance(term_deref, Struct)
            and term_deref.name == "^"
            and term_deref.arity == 2
        ):
            return Struct(
                "^",
                (
                    term_deref.args[0],
                    self._reorder_caret_body(
                        indicator, mode, term_deref.args[1], states
                    ),
                ),
            )
        return self._reorder_subbody(indicator, mode, term, states)

    def _rename_goals(
        self, clause: Clause, goals: List[Term], mode: Mode
    ) -> List[Term]:
        """Rename subgoals to their mode-specialised versions."""
        if not self.options.specialize:
            return goals
        states: VarState = {}
        bind_head_states(clause.head, mode, states)
        renamed: List[Term] = []
        for goal in goals:
            target = self._rename_one(goal, states)
            self.modes.abstract_execute(goal, states)
            renamed.append(target)
        return renamed

    #: Control constructs whose goal arguments are renamed recursively
    #: (position tuples index the goal-valued arguments).
    _CONTROL_GOAL_ARGS = {
        ("\\+", 1): (0,),
        ("not", 1): (0,),
        ("call", 1): (0,),
        ("once", 1): (0,),
    }

    def _rename_one(self, goal: Term, states: VarState) -> Term:
        """Rename a goal (recursively through control constructs) to the
        specialised versions matching its call modes. ``states`` is not
        mutated; the caller advances it afterwards. Renaming is purely
        an optimisation — unrenamed calls go through the (correct)
        dispatcher — so any part we cannot track stays as written."""
        goal_deref = deref(goal)
        if not isinstance(goal_deref, (Atom, Struct)):
            return goal
        if isinstance(goal_deref, Struct):
            name, arity = goal_deref.name, goal_deref.arity
            if name == "," and arity == 2:
                left = self._rename_one(goal_deref.args[0], states)
                after_left = dict(states)
                self.modes.abstract_execute(goal_deref.args[0], after_left)
                right = self._rename_one(goal_deref.args[1], after_left)
                return Struct(",", (left, right))
            if name == ";" and arity == 2:
                first = deref(goal_deref.args[0])
                if isinstance(first, Struct) and first.name == "->" and first.arity == 2:
                    condition = self._rename_one(first.args[0], states)
                    after_condition = dict(states)
                    self.modes.abstract_execute(first.args[0], after_condition)
                    then_part = self._rename_one(first.args[1], after_condition)
                    else_part = self._rename_one(goal_deref.args[1], dict(states))
                    return Struct(
                        ";", (Struct("->", (condition, then_part)), else_part)
                    )
                left = self._rename_one(goal_deref.args[0], dict(states))
                right = self._rename_one(goal_deref.args[1], dict(states))
                return Struct(";", (left, right))
            if name == "->" and arity == 2:
                condition = self._rename_one(goal_deref.args[0], states)
                after_condition = dict(states)
                self.modes.abstract_execute(goal_deref.args[0], after_condition)
                then_part = self._rename_one(goal_deref.args[1], after_condition)
                return Struct("->", (condition, then_part))
            control = self._CONTROL_GOAL_ARGS.get((name, arity))
            if control is not None:
                args = list(goal_deref.args)
                for position in control:
                    args[position] = self._rename_one(args[position], dict(states))
                return Struct(name, tuple(args))
            if name in ("findall", "bagof", "setof") and arity == 3:
                args = list(goal_deref.args)
                args[1] = self._rename_under_carets(args[1], dict(states))
                return Struct(name, tuple(args))
        try:
            indicator = functor_indicator(goal_deref)
        except TypeError:
            return goal
        if not self.database.defines(indicator):
            return goal
        goal_mode = call_mode(goal_deref, states)
        if any(item is ModeItem.ANY for item in goal_mode):
            return goal  # unknown instantiation: go through the dispatcher
        target = self._version_names.get((indicator, goal_mode))
        if target is None or target == indicator[0]:
            return goal
        return rename_goal(goal_deref, target)

    def _rename_under_carets(self, term: Term, states: VarState) -> Term:
        term_deref = deref(term)
        if (
            isinstance(term_deref, Struct)
            and term_deref.name == "^"
            and term_deref.arity == 2
        ):
            return Struct(
                "^",
                (
                    term_deref.args[0],
                    self._rename_under_carets(term_deref.args[1], states),
                ),
            )
        return self._rename_one(term, states)

    # -- dedup & output -----------------------------------------------------------

    def _dedup_versions(
        self, indicator: Indicator, versions: List[ModeVersion]
    ) -> None:
        """Merge versions whose clause lists are identical.

        "In many cases, the reorderer produces only one or two distinct
        versions of a predicate" (§VII). The canonical version is the
        first mode producing each body; later duplicates are dropped and
        all references rewritten — including self-references inside this
        predicate's own (possibly recursive) clauses.
        """
        by_shape: Dict[str, ModeVersion] = {}
        rename_map: Dict[str, str] = {}
        kept: List[ModeVersion] = []
        for version in versions:
            shape = "\n".join(
                clause_to_string(Clause(_strip_name(c.head), c.body).to_term())
                for c in version.clauses
            )
            canonical = by_shape.get(shape)
            if canonical is None:
                by_shape[shape] = version
                kept.append(version)
            else:
                rename_map[version.name] = canonical.name
                self._version_names[(indicator, version.mode)] = canonical.name
                self.report.note(
                    indicator, version.mode,
                    f"identical to version {canonical.name}; merged",
                )
        if len(kept) == 1:
            # A single distinct version: give it back the original name
            # and skip the dispatcher entirely ("predicates with clauses
            # of one goal cannot be reordered" end up here too).
            only = kept[0]
            rename_map[only.name] = indicator[0]
            only.name = indicator[0]
            for (ind, mode) in list(self._version_names):
                if ind == indicator:
                    self._version_names[(ind, mode)] = indicator[0]
        if not rename_map:
            return
        for version in kept:
            version.clauses = [
                Clause(
                    _rewrite_one_name(clause.head, rename_map),
                    goals_to_body(
                        _rewrite_goal_names(body_goals(clause.body), rename_map)
                    ),
                )
                for clause in version.clauses
            ]
        versions[:] = kept

    def _build_output(
        self, versions: Dict[Tuple[Indicator, Mode], ModeVersion]
    ) -> Database:
        output = Database(indexing=self.options.indexing)
        output.operators = self.database.operators
        # Dispatchers first (they carry the original names).
        dispatched: Set[Indicator] = set()
        for (indicator, _mode), version in versions.items():
            if version.name == indicator[0]:
                continue  # in-place version keeps the original name
            if indicator in dispatched:
                continue
            dispatched.add(indicator)
            mode_map = {
                mode: name
                for (ind, mode), name in self._version_names.items()
                if ind == indicator
            }
            with self.spans.span("specialize"):
                output.add_clause(build_dispatcher(indicator, mode_map))
        seen_versions: Set[Indicator] = set()
        for version in versions.values():
            if version.version_indicator in seen_versions:
                continue
            seen_versions.add(version.version_indicator)
            for clause in version.clauses:
                output.add_clause(Clause(clause.head, clause.body))
            # A tabled predicate stays tabled under its specialised
            # names, so the emitted program memoizes the same calls.
            if version.indicator in self.database.tabled:
                output.tabled.add(version.version_indicator)
        return output


def _same_goal_sequence(first: List[Term], second: List[Term]) -> bool:
    if len(first) != len(second):
        return False
    return all(a is b for a, b in zip(first, second))


def _strip_name(head: Term) -> Term:
    """Replace the head functor with a placeholder for shape comparison."""
    head = deref(head)
    if isinstance(head, Struct):
        return Struct("$head", head.args)
    return Atom("$head")


def _rewrite_one_name(term: Term, mapping: Dict[str, str]) -> Term:
    term_deref = deref(term)
    if isinstance(term_deref, Struct) and term_deref.name in mapping:
        return Struct(mapping[term_deref.name], term_deref.args)
    if isinstance(term_deref, Atom) and term_deref.name in mapping:
        return Atom(mapping[term_deref.name])
    return term


def _rewrite_goal_names(goals: List[Term], mapping: Dict[str, str]) -> List[Term]:
    return [_rewrite_one_name(goal, mapping) for goal in goals]
