"""The reordering system (paper Fig. 3 and §VI-B-2).

:class:`Reorderer` is the facade over the staged pipeline in
:mod:`repro.reorder.pipeline`:

1. read the program and its declarations;
2. run the automatic analyses — call graph, entry points, recursion,
   fixity, semifixity, mode inference, domain estimation — via an
   :class:`~repro.reorder.pipeline.AnalysisContext` that caches them
   (and the per-predicate build results) across runs;
3. working callees-first (reverse topological order over the call
   graph's SCC condensation), reorder every user predicate for every
   legal {+,-} input mode: partition each clause body into blocks,
   search the mobile blocks for the cheapest legal order, reorder the
   clauses by ``p/c``, and rename subgoals to the mode-specialised
   versions of their predicates;
4. emit a new program containing the specialised versions plus a
   ``var/1``-testing dispatcher under each original name, so the result
   is a drop-in replacement for the original.

Everything the system could not infer (undeclared recursive modes,
unknown costs) is reported through ``ReorderedProgram.report.warnings``
— the Fig. 3 requirement that "the system informs the programmer when
it cannot infer properties of the program".

Incremental use: construct the context once, edit the database, and
build a fresh ``Reorderer`` per run::

    context = AnalysisContext(database)
    program = Reorderer(database, context=context).reorder()
    database.replace_predicate(("p", 2), new_clauses)
    program = Reorderer(database, context=context).reorder()   # only
    # p/2's SCC and its callers are recomputed; the rest replays.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.declarations import Declarations
from ..analysis.modes import Mode
from ..observability.spans import SpanRecorder
from ..prolog.database import Database
from ..robustness.budget import Budget
from .goal_search import SearchCounters
from .pipeline import (
    AnalysisContext,
    ModeVersion,
    PipelineState,
    ReorderOptions,
    ReorderPipeline,
    ReorderReport,
    ReorderedProgram,
)
from .pipeline.types import Indicator

__all__ = [
    "ReorderOptions",
    "ModeVersion",
    "ReorderReport",
    "ReorderedProgram",
    "Reorderer",
]


class Reorderer:
    """Drives the full reordering pipeline over one program.

    The analysis attributes (``declarations``, ``callgraph``,
    ``fixity``, ``semifixity``, ``modes``, ``domains``, ``model``) are
    plain, settable attributes snapshotted from the context at
    construction — ablation harnesses may substitute any of them before
    calling :meth:`reorder` (build caching then disables itself, since
    cached builds were produced by the context's own analyses).
    """

    def __init__(
        self,
        database: Database,
        options: Optional[ReorderOptions] = None,
        declarations: Optional[Declarations] = None,
        spans: Optional[SpanRecorder] = None,
        context: Optional[AnalysisContext] = None,
        budget: Optional[Budget] = None,
        events=None,
    ):
        self.options = options or ReorderOptions()
        #: Whole-run resource budget: deadline expiry or cancellation
        #: aborts the run with a BudgetExceededError (per-predicate
        #: failures degrade instead; see docs/ROBUSTNESS.md).
        self.budget = budget
        #: Optional event bus for degraded/budget events.
        self.events = events
        #: Pipeline-phase wall-clock telemetry (shared when passed in).
        self.spans = spans if spans is not None else SpanRecorder()
        #: Search-internals telemetry, accumulated across all blocks.
        self.search_counters = SearchCounters()
        if self.options.unfold_rounds > 0:
            from .unfold import UnfoldOptions, unfold_program

            with self.spans.span("unfold", rounds=self.options.unfold_rounds):
                database, unfold_report = unfold_program(
                    database, UnfoldOptions(rounds=self.options.unfold_rounds)
                )
            self.unfold_report = unfold_report
            # Unfolding produced a new database; a caller-supplied
            # context (keyed to the original) cannot serve it.
            context = None
        else:
            self.spans.mark_skipped("unfold")
            self.unfold_report = None
        self.database = database
        if context is None:
            context = AnalysisContext(database, declarations=declarations)
        else:
            if context.database is not database:
                raise ValueError(
                    "AnalysisContext was built for a different database"
                )
            if declarations is not None:
                raise ValueError(
                    "pass declarations through the AnalysisContext, "
                    "not alongside one"
                )
        self.context = context
        context.refresh(self.options, self.spans)
        # Snapshot the analyses as plain attributes (see class docstring).
        self.declarations = context.declarations
        self.callgraph = context.callgraph
        self.fixity = context.fixity
        self.semifixity = context.semifixity
        self.modes = context.modes
        self.domains = context.domains
        self.model = context.model
        self.report = ReorderReport()
        #: (indicator, mode) → final specialised name (after dedup).
        self._version_names: Dict[Tuple[Indicator, Mode], str] = {}

    # -- public API -------------------------------------------------------

    def reorder(self) -> ReorderedProgram:
        """Run the pipeline and return the reordered program."""
        state = PipelineState(
            options=self.options,
            database=self.database,
            report=self.report,
            spans=self.spans,
            search_counters=self.search_counters,
            declarations=self.declarations,
            callgraph=self.callgraph,
            fixity=self.fixity,
            semifixity=self.semifixity,
            modes=self.modes,
            domains=self.domains,
            model=self.model,
            version_names=self._version_names,
            context=self.context if self._cache_usable() else None,
            budget=self.budget,
            events=self.events,
        )
        return ReorderPipeline(state).run()

    def _cache_usable(self) -> bool:
        """Build caching is sound only while this facade still runs on
        the context's own analyses (an ablation harness swapping in,
        say, a noisy cost model must not replay builds produced by the
        clean one)."""
        context = self.context
        return (
            self.model is context.model
            and self.modes is context.modes
            and self.fixity is context.fixity
            and self.semifixity is context.semifixity
            and self.domains is context.domains
            and self.declarations is context.declarations
        )
