"""Unfold/fold transformation (paper §VIII, after Tamaki & Sato [24]).

"Unfolding of goals (replacing them with the goals of the clauses of
the predicates they call) might greatly increase the possibilities for
reordering, especially when clauses of a program are short."

Unfolding a goal ``g`` in clause ``C`` against the ``k`` clauses of
``g``'s predicate produces ``k`` resolvents of ``C`` (one per callee
clause whose head unifies; heads that cannot unify contribute nothing,
so a goal with no matching clause deletes ``C`` outright). Solution
order is preserved: Prolog tried ``g``'s alternatives in callee clause
order, and the resolvents appear in that same order.

Safety gates (conservative):

* only top-level body goals are unfolded (never inside control
  constructs);
* the callee must be user-defined, non-recursive, and cut-free (a cut's
  scope would silently widen from the callee to the caller);
* clause growth is bounded (``max_resolvents`` per unfold,
  ``max_clauses`` per predicate).

Side-effecting callees *are* unfoldable — the side effect happens at
the same execution point — which is exactly why the paper suggests
unfolding "when clauses of a program ... have many side-effects": it
exposes the pure goals around the write for reordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.callgraph import CallGraph
from ..analysis.fixity import FixityAnalysis
from ..analysis.recursion import recursive_predicates
from ..prolog.database import Clause, Database, body_goals, goals_to_body
from ..prolog.terms import (
    Atom,
    Struct,
    Term,
    Var,
    deref,
    functor_indicator,
    rename_term,
)
from ..prolog.unify import Trail, unify
from .restrictions import _contains_cut

__all__ = ["UnfoldOptions", "UnfoldReport", "unfold_clause_goal", "unfold_program"]

Indicator = Tuple[str, int]


@dataclass
class UnfoldOptions:
    """Bounds on the unfold transformation."""

    #: How many sweeps over the program to make.
    rounds: int = 1
    #: Skip an unfold that would replace one clause by more than this.
    max_resolvents: int = 4
    #: Skip unfolding into predicates that already have this many clauses.
    max_clauses: int = 32
    #: Only unfold callees with at most this many clauses.
    max_callee_clauses: int = 4


@dataclass
class UnfoldReport:
    """What was unfolded."""

    unfolded: List[str]

    def __str__(self) -> str:
        return "\n".join(self.unfolded) if self.unfolded else "(nothing unfolded)"


def _callee_unfoldable(
    indicator: Indicator,
    database: Database,
    recursive: Set[Indicator],
    options: UnfoldOptions,
) -> bool:
    if not database.defines(indicator):
        return False
    if indicator in recursive:
        return False
    clauses = database.clauses(indicator)
    if not 1 <= len(clauses) <= options.max_callee_clauses:
        return False
    return not any(_contains_cut(clause.body) for clause in clauses)


def unfold_clause_goal(
    clause: Clause, goal_index: int, database: Database
) -> Optional[List[Clause]]:
    """All resolvents of ``clause`` on its ``goal_index``-th body goal.

    Returns None when the goal's predicate is undefined; an empty list
    when no callee head unifies (the clause can be deleted)."""
    goals = body_goals(clause.body)
    goal = deref(goals[goal_index])
    if not isinstance(goal, (Atom, Struct)):
        return None
    indicator = functor_indicator(goal)
    callee_clauses = database.clauses(indicator)
    if not database.defines(indicator):
        return None

    resolvents: List[Clause] = []
    trail = Trail()
    for callee in callee_clauses:
        mark = trail.mark()
        head, body = callee.rename()
        if unify(goal, head, trail):
            inline = [
                g
                for g in body_goals(body)
                if not (isinstance(deref(g), Atom) and deref(g).name == "true")
            ]
            new_goals = goals[:goal_index] + inline + goals[goal_index + 1 :]
            mapping: Dict[int, Var] = {}
            new_head = rename_term(clause.head, mapping)
            new_body = goals_to_body(
                [rename_term(g, mapping) for g in new_goals]
            )
            resolvents.append(Clause(new_head, new_body))
        trail.undo_to(mark)
    return resolvents


def unfold_program(
    database: Database, options: Optional[UnfoldOptions] = None
) -> Tuple[Database, UnfoldReport]:
    """Apply bounded unfolding sweeps; returns (new database, report)."""
    options = options or UnfoldOptions()
    report = UnfoldReport(unfolded=[])
    current = database.copy()
    for _ in range(max(0, options.rounds)):
        graph = CallGraph(current)
        recursive = recursive_predicates(graph)
        fixity = FixityAnalysis(current, graph)
        changed = False
        next_database = Database(indexing=current.indexing)
        next_database.directives = list(current.directives)
        next_database.tabled = set(current.tabled)
        next_database.warnings = list(current.warnings)
        for indicator in current.predicates():
            clauses = current.clauses(indicator)
            new_clauses: List[Clause] = []
            for clause in clauses:
                unfolded = _unfold_first_eligible(
                    clause, current, recursive, fixity, options, len(clauses),
                    report, indicator,
                )
                if unfolded is None:
                    new_clauses.append(clause)
                else:
                    changed = True
                    new_clauses.extend(unfolded)
            if not new_clauses and clauses:
                # Every clause resolved away (some goal matched no head):
                # the predicate must still *exist* and fail, not vanish
                # into an existence error.
                new_clauses.append(_failing_clause(indicator))
            for new_clause in new_clauses:
                next_database.add_clause(new_clause)
        current = next_database
        if not changed:
            break
    return current, report


def _failing_clause(indicator: Indicator) -> Clause:
    """``name(V1..Vn) :- fail.`` — an always-failing definition."""
    name, arity = indicator
    head: Term = (
        Struct(name, tuple(Var(f"V{i}") for i in range(arity)))
        if arity
        else Atom(name)
    )
    return Clause(head, Atom("fail"))


def _unfold_first_eligible(
    clause: Clause,
    database: Database,
    recursive: Set[Indicator],
    fixity: FixityAnalysis,
    options: UnfoldOptions,
    predicate_size: int,
    report: UnfoldReport,
    caller: Indicator,
) -> Optional[List[Clause]]:
    """Unfold the first eligible goal of a clause, or None if none is."""
    if predicate_size >= options.max_clauses:
        return None
    # A multi-resolvent unfold turns the goal's alternatives into caller
    # clause alternatives; earlier goals are then re-run per resolvent
    # and a cut in one resolvent prunes the rest. Safe only in
    # side-effect-free, cut-free caller clauses; single-resolvent
    # unfolds (pure inlining) are always safe.
    caller_sensitive = _contains_cut(clause.body) or fixity.clause_is_fixed(
        clause.body
    )
    goals = body_goals(clause.body)
    for index, goal in enumerate(goals):
        goal = deref(goal)
        if not isinstance(goal, (Atom, Struct)):
            continue
        try:
            indicator = functor_indicator(goal)
        except TypeError:
            continue
        if indicator == caller:
            continue  # direct self-call: never unfold
        if not _callee_unfoldable(indicator, database, recursive, options):
            continue
        resolvents = unfold_clause_goal(clause, index, database)
        if resolvents is None or len(resolvents) > options.max_resolvents:
            continue
        if caller_sensitive and len(resolvents) != 1:
            continue
        report.unfolded.append(
            f"{caller[0]}/{caller[1]}: unfolded {indicator[0]}/{indicator[1]} "
            f"({len(resolvents)} resolvents)"
        )
        return resolvents
    return None
