"""Per-mode specialisation and dispatchers (paper §I-E, §VII).

"We tailor a version of the predicate to each mode, renaming both the
new version and the goals that call it." Version names follow the
paper's convention: terminal letters ``u`` (uninstantiated) and ``i``
(instantiated) per argument — ``aunt_uu``, ``aunt_ui``, ... A ``?``
mode item (possible when a goal's call mode cannot be pinned to
``+``/``-``) maps to no specialised version; such calls go through the
dispatcher instead.

Each specialised predicate keeps a *dispatcher* under the original
name: the nested ``var/1`` if-then-else of §VII ("the Prolog engine
needs merely to test two tag bits"). Calls whose mode is statically
known are renamed to the specialised version directly and never pay
the dispatch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.modes import Mode, ModeItem
from ..prolog.database import Clause
from ..prolog.terms import Atom, Struct, Term, Var

__all__ = [
    "mode_suffix",
    "specialized_name",
    "specialized_indicator",
    "rename_goal",
    "build_dispatcher",
]

Indicator = Tuple[str, int]

_SUFFIX = {ModeItem.MINUS: "u", ModeItem.PLUS: "i", ModeItem.ANY: "a"}


def mode_suffix(mode: Mode) -> str:
    """The paper's terminal-letter encoding of a mode (``ui`` etc.)."""
    return "".join(_SUFFIX[item] for item in mode)


def specialized_name(name: str, mode: Mode) -> str:
    """Version name for a predicate tuned to ``mode``."""
    suffix = mode_suffix(mode)
    return f"{name}_{suffix}" if suffix else name


def specialized_indicator(indicator: Indicator, mode: Mode) -> Indicator:
    """Indicator of the version tuned to ``mode``."""
    return (specialized_name(indicator[0], mode), indicator[1])


def rename_goal(goal: Term, target_name: str) -> Term:
    """The same goal calling ``target_name`` instead."""
    if isinstance(goal, Struct):
        return Struct(target_name, goal.args)
    assert isinstance(goal, Atom)
    return Atom(target_name)


def build_dispatcher(
    indicator: Indicator,
    version_names: Dict[Mode, str],
) -> Clause:
    """The ``var/1``-testing dispatcher clause for a predicate.

    ``version_names`` maps each specialised {+,-} mode to the (possibly
    deduplicated) predicate name implementing it. Modes with no version
    (illegal modes) are routed to the version with the fewest mode-item
    mismatches, so a user who calls an undeclared mode gets the original
    program's behaviour (typically a run-time error or a miss) rather
    than a missing-predicate error.
    """
    name, arity = indicator
    arguments = tuple(Var(f"A{i + 1}") for i in range(arity))

    def target(mode: Mode) -> Term:
        chosen = version_names.get(mode)
        if chosen is None:
            chosen = _closest_version(mode, version_names)
        if arity == 0:
            return Atom(chosen)
        return Struct(chosen, arguments)

    def branch(position: int, prefix: Tuple[ModeItem, ...]) -> Term:
        if position == arity:
            return target(prefix)
        test = Struct("var", (arguments[position],))
        free_branch = branch(position + 1, prefix + (ModeItem.MINUS,))
        bound_branch = branch(position + 1, prefix + (ModeItem.PLUS,))
        if _branches_equal(free_branch, bound_branch):
            # Both instantiations route the same way: skip the test
            # ("fewer clauses and tests", §VII).
            return free_branch
        return Struct(
            ";",
            (Struct("->", (test, free_branch)), bound_branch),
        )

    head: Term = Struct(name, arguments) if arity else Atom(name)
    return Clause(head, branch(0, ()))


def _branches_equal(left: Term, right: Term) -> bool:
    """Structural equality of dispatcher branches (same tests, targets)."""
    if isinstance(left, Atom) and isinstance(right, Atom):
        return left is right
    if isinstance(left, Struct) and isinstance(right, Struct):
        if left.indicator != right.indicator:
            return False
        return all(
            (a is b) or _branches_equal(a, b)
            for a, b in zip(left.args, right.args)
        )
    return left is right


def _closest_version(mode: Mode, version_names: Dict[Mode, str]) -> str:
    if not version_names:
        raise ValueError("no specialised versions to dispatch to")

    def mismatches(candidate: Mode) -> int:
        return sum(1 for a, b in zip(candidate, mode) if a is not b)

    best_mode = min(sorted(version_names, key=str), key=mismatches)
    return version_names[best_mode]
