"""Restrictions on movement → block partition (paper §IV, Table I).

A clause body is partitioned into *blocks* of consecutive goals:

* **mobile blocks** — maximal runs of goals that may be freely permuted
  (subject to mode legality and semifixity constraints);
* **immobile blocks** — barriers that stay in place:

  - a *fixed* goal (side-effecting, directly or through descendants);
  - the cut — and, per §IV-D-1, everything *before* a cut: the cut
    commits to the first answer of the preceding conjunction, so
    reordering those goals would only preserve tree-equivalence, which
    we refuse (set-equivalence is the contract);
  - ``fail``/``false`` — the boundary of a failure-driven loop (§IV-D-4:
    "goals of a failure-driven loop must remain within it");
  - compound control goals that *contain* a cut or a fixed goal (a
    disjunction with a write in one branch is itself immobile).

Within a mobile block, *semifixity* (§IV-C) contributes pairwise
precedence constraints instead of barriers: a semifixed goal must keep
its original relative order with every goal that shares one of its
culprit variables, because crossing could change the culprit's
instantiation at test time. Negation (§IV-D-5) is semifixed in all its
variables and is handled by the same mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..analysis.fixity import FixityAnalysis
from ..analysis.semifixity import SemifixityAnalysis
from ..prolog.database import body_goals
from ..prolog.terms import (
    Atom,
    Struct,
    Term,
    Var,
    deref,
    term_variables,
)

__all__ = ["Block", "BlockPartition", "partition_body", "order_constraints"]


@dataclass
class Block:
    """A run of consecutive goals with a shared mobility status."""

    goals: List[Term]
    mobile: bool
    #: True when the block's goals may deliver several solutions to the
    #: rest of the clause (all-solutions chain); False for goals whose
    #: first solution is committed (they precede a cut → Fig. 4 chain).
    multi_solution: bool = True

    def __len__(self) -> int:
        return len(self.goals)


@dataclass
class BlockPartition:
    """The block decomposition of one clause body."""

    blocks: List[Block] = field(default_factory=list)

    @property
    def mobile_goal_count(self) -> int:
        return sum(len(b) for b in self.blocks if b.mobile)

    def all_goals(self) -> List[Term]:
        """The body's goals, flattened back out of the blocks."""
        return [goal for block in self.blocks for goal in block.goals]


def _contains_cut(term: Term) -> bool:
    """Does this (possibly compound control) goal contain a top-level cut
    that would cut the enclosing clause? Cuts inside ``\\+``, ``not``,
    ``call``, ``once`` and the set predicates are local and do not count."""
    term = deref(term)
    if isinstance(term, Atom):
        return term.name == "!"
    if not isinstance(term, Struct):
        return False
    if term.name in (",", ";") and term.arity == 2:
        return _contains_cut(term.args[0]) or _contains_cut(term.args[1])
    if term.name == "->" and term.arity == 2:
        # The condition's cut is local ('->' is an implicit cut barrier),
        # but a cut in the 'then' part cuts the clause.
        return _contains_cut(term.args[1])
    return False


def _is_cut(term: Term) -> bool:
    term = deref(term)
    return isinstance(term, Atom) and term.name == "!"


def _is_fail(term: Term) -> bool:
    term = deref(term)
    return isinstance(term, Atom) and term.name in ("fail", "false")


def goal_is_mobile(goal: Term, fixity: FixityAnalysis) -> bool:
    """May this goal move within its clause?"""
    if _is_cut(goal) or _is_fail(goal):
        return False
    if fixity.goal_is_fixed(goal):
        return False
    if _contains_cut(goal):
        return False
    return True


def partition_body(
    body: Term, fixity: FixityAnalysis
) -> BlockPartition:
    """Split a clause body into mobile and immobile blocks."""
    goals = body_goals(body)
    partition = BlockPartition()
    current: List[Term] = []

    def flush_mobile() -> None:
        if current:
            partition.blocks.append(Block(list(current), mobile=True))
            current.clear()

    for goal in goals:
        if goal_is_mobile(goal, fixity):
            current.append(goal)
        else:
            flush_mobile()
            partition.blocks.append(Block([goal], mobile=False))
    flush_mobile()

    _mark_pre_cut_blocks(partition)
    return partition


def _mark_pre_cut_blocks(partition: BlockPartition) -> None:
    """Goals before a cut are immobile and use the one-solution chain."""
    cut_positions = [
        index
        for index, block in enumerate(partition.blocks)
        if not block.mobile and any(_is_cut(g) or _contains_cut(g) for g in block.goals)
    ]
    if not cut_positions:
        return
    last_cut = max(cut_positions)
    for block in partition.blocks[:last_cut]:
        block.mobile = False
        block.multi_solution = False


def order_constraints(
    goals: Sequence[Term],
    semifixity: SemifixityAnalysis,
    initial_states: Optional[dict] = None,
) -> Set[Tuple[int, int]]:
    """Precedence pairs (i, j): goal i must stay before goal j.

    Generated for every pair where one goal is semifixed and the other
    mentions one of its culprit variables (§IV-C: fixing the semifixed
    goal "with respect to other goals that might change the variable's
    instantiation"). Indices are positions in ``goals``.

    Culprit variables already ground on entry impose no constraint —
    the paper: "If we call t/3 with X instantiated, s(X, Y) does not
    restrict reordering. (Hence, the term 'semifixed.')"
    """
    from ..analysis.modes import Inst

    constraints: Set[Tuple[int, int]] = set()
    culprit_sets = []
    variable_sets = []
    states = initial_states or {}
    for goal in goals:
        culprit_sets.append(
            {
                id(v)
                for v in semifixity.culprit_variables(goal)
                if states.get(id(v)) is not Inst.GROUND
            }
        )
        variable_sets.append({id(v) for v in term_variables(goal)})
    for i in range(len(goals)):
        for j in range(i + 1, len(goals)):
            if culprit_sets[i] & variable_sets[j] or culprit_sets[j] & variable_sets[i]:
                constraints.add((i, j))
    return constraints
