"""The staged reordering pipeline.

``reorder/system.py`` used to be a 900-line monolith running all phases
inline; this package splits it into :class:`Phase` objects over a
shared :class:`PipelineState`, with an incremental
:class:`AnalysisContext` caching analyses and per-predicate builds
across runs. ``Reorderer`` (in :mod:`repro.reorder.system`) survives
as the thin facade everyone imports. See docs/REORDER_PIPELINE.md.
"""

from .build import (
    GoalSequencePhase,
    InnerControlPhase,
    RuntimeGuardPhase,
    VersionBuildPhase,
)
from .context import ANALYSIS_STAGES, AnalysisContext, CachedPredicateBuild
from .phases import (
    AnalysisSummaryPhase,
    ModeEnumerationPhase,
    OutputBuildPhase,
    Phase,
    ProcessingOrderPhase,
    VersionDedupPhase,
)
from .runner import PipelineState, ReorderPipeline
from .types import ModeVersion, ReorderOptions, ReorderReport, ReorderedProgram

__all__ = [
    "ANALYSIS_STAGES",
    "AnalysisContext",
    "AnalysisSummaryPhase",
    "CachedPredicateBuild",
    "GoalSequencePhase",
    "InnerControlPhase",
    "ModeEnumerationPhase",
    "ModeVersion",
    "OutputBuildPhase",
    "Phase",
    "PipelineState",
    "ProcessingOrderPhase",
    "ReorderOptions",
    "ReorderPipeline",
    "ReorderReport",
    "ReorderedProgram",
    "RuntimeGuardPhase",
    "VersionBuildPhase",
    "VersionDedupPhase",
]
