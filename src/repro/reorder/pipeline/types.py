"""Public data types of the reordering pipeline.

These used to live inside ``reorder/system.py``; they are the stable
surface of the reorderer — :class:`ReorderOptions` (the knobs),
:class:`ModeVersion` (one specialised predicate version),
:class:`ReorderReport` (decisions + warnings) and
:class:`ReorderedProgram` (the drop-in replacement program). The
:class:`~repro.reorder.system.Reorderer` facade re-exports all of them,
so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...analysis.modes import Mode, mode_str
from ...markov.backend import BackendChoice
from ...markov.goal_stats import GoalStats
from ...prolog.database import Clause, Database
from ...prolog.engine import Engine
from ...prolog.terms import indicator_str
from ...prolog.writer import program_to_string
from ..goal_search import DEFAULT_EXHAUSTIVE_LIMIT

__all__ = ["ReorderOptions", "ModeVersion", "ReorderReport", "ReorderedProgram"]

Indicator = Tuple[str, int]


@dataclass
class ReorderOptions:
    """Knobs of the reordering system."""

    #: Reorder goals within clauses (§III-B).
    reorder_goals: bool = True
    #: Reorder clauses within predicates (§III-A).
    reorder_clauses: bool = True
    #: Emit one version per legal mode plus dispatchers (§VII); when
    #: False, each predicate is reordered in place for its most general
    #: legal mode and keeps its name.
    specialize: bool = True
    #: Blocks up to this size are permuted exhaustively; larger ones use
    #: the A* best-first search (§VI-A-3).
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT
    #: Predicates with more legal modes than this are not specialised
    #: (they are reordered in place like specialize=False).
    max_versions: int = 16
    #: First-argument indexing for the emitted database.
    indexing: bool = True
    #: §V-D run-time tests: when a predicate is reordered *in place*
    #: (specialize=False, or too many modes), clauses whose best order
    #: under full instantiation differs from the generic order get a
    #: ``nonvar``-guarded if-then-else — "the tests are the if, the
    #: reordered version is the then, and the original is the else".
    runtime_tests: bool = False
    #: §VIII unfolding: sweeps of Tamaki–Sato goal unfolding applied to
    #: the program before analysis, to "increase the possibilities for
    #: reordering". 0 disables.
    unfold_rounds: int = 0
    #: Cost-model assumption that *every* user predicate runs tabled
    #: (the engine's ``table_all`` switch / CLI ``--table-all``):
    #: recursive calls become cheap answer streams and per-predicate
    #: costs amortize, so the chosen goal orders can differ.
    table_all: bool = False
    #: Wall-clock allowance, in seconds, for building any *one*
    #: predicate (mode enumeration + version build + dedup). A
    #: predicate that blows it is degraded to source order; None
    #: disables the per-predicate deadline.
    phase_timeout: Optional[float] = None
    #: Cap on A* child generations per block; past it the cheapest open
    #: prefix is completed greedily (strategy ``astar-greedy``). None
    #: leaves the search unbounded (the golden-pinned default).
    astar_node_budget: Optional[int] = None

    def cache_key(self) -> Tuple:
        """The option fields a cached per-predicate build depends on.

        ``indexing`` only affects the (always rebuilt) output database
        and ``unfold_rounds`` is resolved before analysis, so neither
        invalidates cached builds.
        """
        return (
            self.reorder_goals,
            self.reorder_clauses,
            self.specialize,
            self.exhaustive_limit,
            self.max_versions,
            self.runtime_tests,
            self.table_all,
            self.phase_timeout,
            self.astar_node_budget,
        )


@dataclass
class ModeVersion:
    """One mode-specialised version of one predicate."""

    indicator: Indicator
    mode: Mode
    name: str
    clauses: List[Clause]
    #: Model estimate for the reordered version.
    estimate: Optional[GoalStats]
    #: Model estimate for the original (for the report).
    original_estimate: Optional[GoalStats]

    @property
    def version_indicator(self) -> Indicator:
        return (self.name, self.indicator[1])


@dataclass
class ReorderReport:
    """What the reorderer did and what it could not do."""

    warnings: List[str] = field(default_factory=list)
    #: (indicator, mode) → human-readable decision lines.
    decisions: Dict[Tuple[Indicator, Mode], List[str]] = field(default_factory=dict)
    fixed_predicates: Set[Indicator] = field(default_factory=set)
    recursive_predicates: Set[Indicator] = field(default_factory=set)
    semifixed_predicates: Set[Indicator] = field(default_factory=set)
    tabled_predicates: Set[Indicator] = field(default_factory=set)
    #: (indicator, mode) pairs the empirical calibrator could not
    #: measure, rendered as human-readable lines (see
    #: :meth:`repro.analysis.calibration.EmpiricalCalibrator.failure_warnings`).
    calibration_failures: List[str] = field(default_factory=list)
    #: Predicates the pipeline degraded to source order after a build
    #: failure or per-predicate timeout: indicator → one-line reason.
    #: Every other predicate's output is unaffected (isolation is
    #: per-predicate; see docs/ROBUSTNESS.md).
    degraded: Dict[Indicator, str] = field(default_factory=dict)
    #: Per-predicate evaluation-backend verdicts (see
    #: :class:`~repro.markov.backend.BackendChoice` and
    #: docs/EVALUATION.md): which strata the engine's ``--eval=auto``
    #: dispatcher would materialize bottom-up instead of running SLD.
    backends: Dict[Indicator, BackendChoice] = field(default_factory=dict)
    #: Chronological note log — lets the incremental pipeline replay a
    #: cached predicate's decision lines in their original order.
    _log: List[Tuple[Indicator, Mode, str]] = field(
        default_factory=list, repr=False, compare=False
    )

    def note(self, indicator: Indicator, mode: Mode, line: str) -> None:
        """Record one human-readable decision line."""
        self.decisions.setdefault((indicator, mode), []).append(line)
        self._log.append((indicator, mode, line))

    def summary(self) -> str:
        """All decisions and warnings as one text block."""
        lines = []
        for (indicator, mode), notes in self.decisions.items():
            header = f"{indicator_str(indicator)} {mode_str(mode)}"
            for note in notes:
                lines.append(f"{header}: {note}")
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        for failure in self.calibration_failures:
            lines.append(f"calibration failure: {failure}")
        for indicator, reason in self.degraded.items():
            lines.append(
                f"degraded: {indicator_str(indicator)} kept in source order ({reason})"
            )
        for indicator, choice in sorted(self.backends.items()):
            if choice.backend != "topdown":
                lines.append(
                    f"backend: {indicator_str(indicator)} -> "
                    f"{choice.backend} ({choice.reason})"
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """The report as JSON-serializable data (for the JSONL export)."""
        decisions = [
            {
                "predicate": indicator_str(indicator),
                "mode": mode_str(mode),
                "note": note,
            }
            for (indicator, mode), notes in self.decisions.items()
            for note in notes
        ]
        result: Dict[str, object] = {
            "decisions": decisions,
            "warnings": list(self.warnings),
            "fixed": sorted(indicator_str(i) for i in self.fixed_predicates),
            "recursive": sorted(
                indicator_str(i) for i in self.recursive_predicates
            ),
            "semifixed": sorted(
                indicator_str(i) for i in self.semifixed_predicates
            ),
            "tabled": sorted(
                indicator_str(i) for i in self.tabled_predicates
            ),
            "backends": [
                {
                    "predicate": indicator_str(indicator),
                    "backend": choice.backend,
                    "reason": choice.reason,
                }
                for indicator, choice in sorted(self.backends.items())
            ],
        }
        # Optional key (only when calibration actually failed), so the
        # common no-calibration report stays byte-compatible with the
        # pre-pipeline reorderer.
        if self.calibration_failures:
            result["calibration_failures"] = list(self.calibration_failures)
        if self.degraded:
            result["degraded"] = [
                {"predicate": indicator_str(indicator), "reason": reason}
                for indicator, reason in self.degraded.items()
            ]
        return result


class ReorderedProgram:
    """The output of the reorderer: a drop-in replacement program."""

    def __init__(
        self,
        database: Database,
        versions: Dict[Tuple[Indicator, Mode], ModeVersion],
        report: ReorderReport,
        original: Database,
        version_names: Optional[Dict[Tuple[Indicator, Mode], str]] = None,
    ):
        self.database = database
        self.versions = versions
        self.report = report
        self.original = original
        self._version_names = version_names or {}

    def version_name(self, indicator: Indicator, mode: Mode) -> Optional[str]:
        """The specialised predicate name serving a call mode (modes
        merged into another version resolve to the canonical name)."""
        name = self._version_names.get((indicator, mode))
        if name is not None:
            return name
        version = self.versions.get((indicator, mode))
        return version.name if version else None

    def engine(self, **kwargs) -> Engine:
        """An engine executing the reordered program."""
        return Engine(self.database, **kwargs)

    def source(self) -> str:
        """The reordered program as Prolog source text.

        ``:- table`` directives are re-emitted first (under the
        specialised version names), so consulting the printed program
        reproduces the tabling behaviour of the in-memory one.
        """
        directives = "".join(
            f":- table {name}/{arity}.\n"
            for name, arity in sorted(self.database.tabled)
        )
        body = program_to_string(self.database.to_terms(), self.database.operators)
        return directives + body
