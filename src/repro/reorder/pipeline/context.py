"""The incremental analysis context of the reordering pipeline.

:class:`AnalysisContext` owns everything the pipeline derives from the
program — declarations, call graph, fixity, semifixity, inferred modes,
domains, the Markov cost model, calibrated measurements, and the
per-predicate build results — keyed by the database's generation
counter. :meth:`refresh` compares the database's per-predicate
generation watermarks against the last snapshot, computes the dirty
predicate set, widens it to the invalidation closure (each dirty
predicate's SCC plus its transitive callers — see
:func:`repro.analysis.recursion.affected_predicates`), and drops only
the affected cached builds and measurements. Re-reordering after
editing one predicate therefore recomputes only that SCC and its
callers; everything else replays from cache.

Every cache consultation is counted (:attr:`hits`/:attr:`misses` per
stage), optionally emitted on the event bus as
:class:`~repro.observability.events.CacheEvent`, and surfaced through
the existing pipeline spans (``cache="hit"|"miss"`` span metadata).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...analysis.callgraph import CallGraph
from ...analysis.declarations import CostDeclaration, Declarations
from ...analysis.domains import DomainAnalysis
from ...analysis.fixity import FixityAnalysis
from ...analysis.mode_inference import ModeInference
from ...analysis.modes import Mode, all_input_modes
from ...analysis.recursion import affected_predicates
from ...analysis.semifixity import SemifixityAnalysis
from ...markov.goal_stats import GoalStats
from ...markov.predicate_model import CostModel
from ...markov.stats_store import StatsStore
from ...observability.events import CacheEvent, EventBus
from ...observability.spans import SpanRecorder
from ...prolog.database import Database
from ...prolog.terms import indicator_str
from .types import Indicator, ModeVersion, ReorderOptions

__all__ = ["AnalysisContext", "CachedPredicateBuild", "ANALYSIS_STAGES"]

#: The whole-program analysis stages the context caches, in the order
#: (and under the span names) the pre-pipeline Reorderer ran them.
ANALYSIS_STAGES = (
    "declarations",
    "call graph",
    "fixity",
    "semifixity",
    "mode inference",
)

#: Counter key for the per-predicate build cache.
BUILD_STAGE = "version build"
#: Counter key for calibrated measurements.
CALIBRATION_STAGE = "calibration"


@dataclass
class CachedPredicateBuild:
    """Everything one predicate's processing produced, recorded so a
    cache hit can replay the *exact* side effects of a fresh build:
    version-name registrations (insertion order matters — dispatcher
    clause order follows it), cost-model overrides, report decision
    lines, and the three warning streams."""

    indicator: Indicator
    versions: List[ModeVersion]
    #: (mode, name) in original registration order.
    version_names: List[Tuple[Mode, str]] = field(default_factory=list)
    #: (mode, line) decision notes in chronological order.
    notes: List[Tuple[Mode, str]] = field(default_factory=list)
    #: Warnings appended directly to ``report.warnings`` (e.g. the
    #: no-legal-modes warning from mode enumeration).
    report_warnings: List[str] = field(default_factory=list)
    #: Mode-inference warnings first emitted during this build.
    modes_warnings: List[str] = field(default_factory=list)
    #: Cost-model warnings first emitted during this build.
    model_warnings: List[str] = field(default_factory=list)
    #: (mode, stats) cost-model overrides, in installation order. Kept
    #: separately from ``versions`` because dedup may drop a version
    #: whose override persists.
    overrides: List[Tuple[Mode, GoalStats]] = field(default_factory=list)


class AnalysisContext:
    """Caches program analyses and per-predicate builds across reorder
    runs over one :class:`Database`.

    Construct it once per database, hand it to successive
    ``Reorderer(database, context=...)`` instances, and edit the
    database freely in between; :meth:`refresh` invalidates exactly the
    affected entries.
    """

    def __init__(
        self,
        database: Database,
        declarations: Optional[Declarations] = None,
        events: Optional[EventBus] = None,
    ):
        self.database = database
        #: User-supplied declarations (None = read from the database on
        #: every refresh, like the pre-pipeline Reorderer did).
        self._declared = declarations
        #: Optional event bus receiving a CacheEvent per consultation.
        self.events = events
        # Derived analyses (populated by refresh()).
        self.declarations: Optional[Declarations] = None
        self.callgraph: Optional[CallGraph] = None
        self.fixity: Optional[FixityAnalysis] = None
        self.semifixity: Optional[SemifixityAnalysis] = None
        self.modes: Optional[ModeInference] = None
        self.domains: Optional[DomainAnalysis] = None
        self.model: Optional[CostModel] = None
        #: Calibrated (measured) GoalStats, surviving edits to
        #: unaffected predicates.
        self.calibrated = StatsStore()
        #: Failure lines of the most recent calibrate() call.
        self.last_calibration_failures: List[str] = []
        # Cache bookkeeping.
        self.generation: Optional[int] = None
        self._marks: Dict[Indicator, int] = {}
        self._options_key: Optional[Tuple] = None
        self._builds: Dict[Indicator, CachedPredicateBuild] = {}
        #: Cache consultations per stage.
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        #: Most recent refresh's edited predicates / invalidation closure.
        self.last_dirty: frozenset = frozenset()
        self.last_affected: frozenset = frozenset()

    # -- counters ---------------------------------------------------------

    def _count(
        self, stage: str, hit: bool, indicator: Optional[Indicator] = None
    ) -> None:
        tally = self.hits if hit else self.misses
        tally[stage] = tally.get(stage, 0) + 1
        if self.events is not None:
            self.events.emit(CacheEvent(stage=stage, hit=hit, indicator=indicator))

    def reset_counters(self) -> None:
        """Zero the hit/miss tallies (typically between reorder runs)."""
        self.hits.clear()
        self.misses.clear()

    def counters_record(self) -> Dict[str, object]:
        """One JSONL-ready record summarizing cache behaviour (exported
        by ``repro reorder --json`` / ``repro profile --json``)."""
        return {
            "type": "cache",
            "hits": dict(sorted(self.hits.items())),
            "misses": dict(sorted(self.misses.items())),
            "dirty": sorted(indicator_str(i) for i in self.last_dirty),
            "affected": sorted(indicator_str(i) for i in self.last_affected),
        }

    # -- analyses ---------------------------------------------------------

    def refresh(
        self,
        options: Optional[ReorderOptions] = None,
        spans: Optional[SpanRecorder] = None,
    ) -> "AnalysisContext":
        """Bring every cached artefact up to date with the database.

        Unchanged database + unchanged options is a pure cache hit.
        Otherwise the per-predicate watermarks yield the dirty set,
        which is widened to its invalidation closure; affected builds
        and measurements are dropped, and the whole-program analyses are
        rebuilt only when the program text actually changed (an options
        change alone reuses them and rebuilds just the cost model).
        """
        options = options or ReorderOptions()
        spans = spans if spans is not None else SpanRecorder()
        key = options.cache_key()
        generation = self.database.generation
        if (
            self.model is not None
            and self.generation == generation
            and self._options_key == key
        ):
            for stage in ANALYSIS_STAGES:
                self._count(stage, hit=True)
                spans.mark_skipped(stage, cache="hit")
            self.last_dirty = frozenset()
            self.last_affected = frozenset()
            return self

        marks = self.database.predicate_marks()
        if self.generation is None or self.callgraph is None:
            # First refresh: everything is dirty by definition.
            dirty = set(marks)
        elif self.generation != generation:
            dirty = {
                indicator
                for indicator in set(marks) | set(self._marks)
                if marks.get(indicator) != self._marks.get(indicator)
            }
        else:
            dirty = set()
        # Callers of removed predicates are found through the *new*
        # call graph (built below); CallGraph.callers keeps undefined
        # callees as nodes, so the closure still reaches them.
        program_changed = self.generation != generation or self.callgraph is None
        if program_changed:
            with spans.span("declarations", cache="miss"):
                self.declarations = (
                    self._declared or Declarations.from_database(self.database)
                )
            self._count("declarations", hit=False)
            with spans.span("call graph", cache="miss"):
                self.callgraph = CallGraph(self.database)
            self._count("call graph", hit=False)
            with spans.span("fixity", cache="miss"):
                self.fixity = FixityAnalysis(
                    self.database, self.callgraph, self.declarations
                )
            self._count("fixity", hit=False)
            with spans.span("semifixity", cache="miss"):
                self.semifixity = SemifixityAnalysis(
                    self.database, self.callgraph, self.declarations
                )
            self._count("semifixity", hit=False)
            with spans.span("mode inference", cache="miss"):
                self.modes = ModeInference(
                    self.database, self.declarations, self.callgraph
                )
                self.domains = DomainAnalysis(self.database, self.declarations)
            self._count("mode inference", hit=False)
        else:
            for stage in ANALYSIS_STAGES:
                self._count(stage, hit=True)
                spans.mark_skipped(stage, cache="hit")
        # The cost model is cheap to construct and depends on the
        # options (table_all), so it is rebuilt whenever anything moved.
        self.model = CostModel(
            self.database,
            self.declarations,
            self.modes,
            self.domains,
            table_all=options.table_all,
        )
        if self._options_key is not None and self._options_key != key:
            # Different knobs invalidate every build (but not the
            # measurements: those depend only on the program).
            self._builds.clear()
        affected = (
            affected_predicates(self.callgraph, dirty) if dirty else set()
        )
        for indicator in affected:
            self._builds.pop(indicator, None)
        self.calibrated.invalidate(affected)
        self._marks = marks
        self.generation = generation
        self._options_key = key
        self.last_dirty = frozenset(dirty)
        self.last_affected = frozenset(affected)
        return self

    def apply_drift(self, drifted) -> set:
        """Invalidate the caches of runtime-drifted predicates.

        ``drifted`` is an iterable of indicators — typically
        :meth:`DriftMonitor.drifted_predicates()
        <repro.observability.streaming.monitor.DriftMonitor.drifted_predicates>`
        or the ``scc`` members of emitted ``DriftEvent`` s. The set is
        widened to the same invalidation closure an *edit* to those
        predicates would trigger (SCC plus transitive callers), the
        affected cached builds and calibrated measurements are dropped,
        and the closure is returned — so the next :meth:`refresh` +
        reorder rebuilds exactly the drifted groups against fresh
        observed statistics while everything else replays from cache.
        """
        dirty = set(drifted)
        if not dirty:
            return set()
        callgraph = self.callgraph or CallGraph(self.database)
        affected = affected_predicates(callgraph, dirty)
        for indicator in affected:
            self._builds.pop(indicator, None)
        self.calibrated.invalidate(affected)
        # Force the next refresh to rebuild the cost model against the
        # thinned measurement store even if the program text (and the
        # options) did not move.
        self.model = None
        self.last_dirty = frozenset(dirty)
        self.last_affected = frozenset(affected)
        return affected

    # -- per-predicate builds ---------------------------------------------

    def build_for(self, indicator: Indicator) -> Optional[CachedPredicateBuild]:
        """The cached build of one predicate (None = must rebuild).
        Counts the consultation and emits a CacheEvent."""
        build = self._builds.get(indicator)
        self._count(BUILD_STAGE, hit=build is not None, indicator=indicator)
        return build

    def store_build(self, indicator: Indicator, build: CachedPredicateBuild) -> None:
        """Remember one freshly built predicate for later replay."""
        self._builds[indicator] = build

    def cached_predicates(self) -> List[Indicator]:
        """The predicates currently served from cache (for tests)."""
        return sorted(self._builds)

    # -- calibration ------------------------------------------------------

    def calibrate(
        self,
        calibration=None,
        jobs: int = 1,
        indicators=None,
        declarations: Optional[Declarations] = None,
    ) -> Declarations:
        """Measured cost declarations, served from the context cache.

        Pairs never measured (or invalidated by an edit) are measured
        now — fanned across ``jobs`` worker processes when ``jobs > 1``
        — and remembered, including failed measurements, so a pair only
        re-runs after its predicate's SCC is touched. Semantics
        otherwise match
        :meth:`repro.analysis.calibration.EmpiricalCalibrator.calibrate`:
        existing ``:- cost`` declarations win.
        """
        from ...analysis.calibration import EmpiricalCalibrator

        calibrator = EmpiricalCalibrator(self.database, calibration)
        if declarations is None:
            declarations = self.declarations or Declarations()
        targets = list(indicators or self.database.predicates())
        pairs: List[Tuple[Indicator, Mode]] = []
        for indicator in targets:
            for mode in all_input_modes(indicator[1]):
                if (indicator, mode) in declarations.costs:
                    continue
                pairs.append((indicator, mode))
        missing = []
        for pair in pairs:
            known, _stats = self.calibrated.lookup(pair)
            if known:
                self._count(CALIBRATION_STAGE, hit=True, indicator=pair[0])
            else:
                self._count(CALIBRATION_STAGE, hit=False, indicator=pair[0])
                missing.append(pair)
        if missing:
            results = calibrator.measure_pairs(missing, jobs=jobs)
            for pair, stats in zip(missing, results):
                self.calibrated.put(pair, stats)
        self.last_calibration_failures = calibrator.failure_warnings()
        for pair in pairs:
            _known, stats = self.calibrated.lookup(pair)
            if stats is None:
                continue
            indicator, mode = pair
            declarations.costs[pair] = CostDeclaration(
                indicator=indicator,
                mode=mode,
                cost=stats.cost,
                prob=stats.prob,
                solutions=stats.solutions,
            )
        return declarations
