"""The whole-program phases of the reordering pipeline.

Each phase is a :class:`Phase` object with declared inputs/outputs over
the shared :class:`~repro.reorder.pipeline.runner.PipelineState`. The
bodies are verbatim transplants of the corresponding ``Reorderer``
methods — the cold-path output must stay byte-identical to the
pre-pipeline monolith (asserted against the committed golden fixtures
in ``tests/reorder/golden/``), so the operation *order* here is load
bearing.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ...analysis.modes import Mode, ModeItem
from ...analysis.recursion import recursive_predicates, strongly_connected_components
from ...analysis.stratify import stratify
from ...markov.backend import choose_backend
from ...prolog.database import Clause, Database, body_goals, goals_to_body
from ...prolog.terms import Atom, Struct, Term, deref, indicator_str
from ...prolog.writer import clause_to_string
from ..specialize import build_dispatcher
from .types import Indicator, ModeVersion

__all__ = [
    "Phase",
    "AnalysisSummaryPhase",
    "ProcessingOrderPhase",
    "ModeEnumerationPhase",
    "VersionDedupPhase",
    "OutputBuildPhase",
    "BackendSelectionPhase",
]


class Phase:
    """One stage of the reordering pipeline.

    ``inputs``/``outputs`` declare, as dotted state paths, what the
    phase reads and writes on the shared
    :class:`~repro.reorder.pipeline.runner.PipelineState`; they are
    documentation *and* contract — ``tests/reorder/test_pipeline.py``
    checks the declarations stay truthful enough to reason about
    caching (a phase must not write outside its declared outputs).
    """

    #: Stable phase identifier (also the key in progress/debug output).
    name: str = ""
    #: Dotted state paths read by :meth:`run`.
    inputs: Tuple[str, ...] = ()
    #: Dotted state paths written by :meth:`run`.
    outputs: Tuple[str, ...] = ()

    def run(self, state) -> None:
        """Execute the phase over the shared pipeline state."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Phase {self.name}>"


class AnalysisSummaryPhase(Phase):
    """Copy the analysis verdicts (fixed/recursive/semifixed/tabled)
    into the report, before any reordering decisions are made."""

    name = "analysis summary"
    inputs = (
        "fixity",
        "callgraph",
        "declarations",
        "database",
        "semifixity",
        "model",
    )
    outputs = (
        "report.fixed_predicates",
        "report.recursive_predicates",
        "report.semifixed_predicates",
        "report.tabled_predicates",
    )

    def run(self, state) -> None:
        """Fill the four report predicate sets from the analyses."""
        state.report.fixed_predicates = set(state.fixity.fixed_predicates)
        state.report.recursive_predicates = set(
            recursive_predicates(state.callgraph)
        ) | set(state.declarations.recursive)
        state.report.semifixed_predicates = {
            indicator
            for indicator in state.database.predicates()
            if state.semifixity.is_semifixed(indicator)
        }
        state.report.tabled_predicates = {
            indicator
            for indicator in state.database.predicates()
            if state.model.is_tabled(indicator)
        }


class ProcessingOrderPhase(Phase):
    """User predicates, callees before callers (Tarjan emission order
    is reverse topological over the condensation)."""

    name = "processing order"
    inputs = ("callgraph", "database")
    outputs = ("order",)

    def run(self, state) -> None:
        """Compute ``state.order`` from the call graph's SCCs."""
        components = strongly_connected_components(state.callgraph.callees)
        order: List[Indicator] = []
        for component in components:
            for indicator in sorted(component):
                if state.database.defines(indicator):
                    order.append(indicator)
        state.order = order


class ModeEnumerationPhase(Phase):
    """Legal {+,-} input modes of the current predicate (warning when
    none could be inferred or declared)."""

    name = "mode enumeration"
    inputs = ("current", "modes")
    outputs = ("current_modes", "report.warnings")

    def run(self, state) -> None:
        """Fill ``state.current_modes`` for the current predicate."""
        indicator = state.current
        legal = state.modes.legal_input_modes(indicator)
        if not legal:
            state.report.warnings.append(
                f"{indicator_str(indicator)}: no legal {{+,-}} input modes "
                f"inferred or declared; keeping the original definition"
            )
        state.current_modes = legal


class VersionDedupPhase(Phase):
    """Merge versions whose clause lists are identical.

    "In many cases, the reorderer produces only one or two distinct
    versions of a predicate" (§VII). The canonical version is the
    first mode producing each body; later duplicates are dropped and
    all references rewritten — including self-references inside this
    predicate's own (possibly recursive) clauses.
    """

    name = "version dedup"
    inputs = ("current", "current_versions", "current_specialized")
    outputs = ("current_versions", "version_names", "report.decisions")

    def run(self, state) -> None:
        """Deduplicate ``state.current_versions`` in place (specialised
        predicates only; in-place versions are already singular)."""
        if not state.current_specialized:
            return
        indicator = state.current
        versions = state.current_versions
        by_shape: Dict[str, ModeVersion] = {}
        rename_map: Dict[str, str] = {}
        kept: List[ModeVersion] = []
        for version in versions:
            shape = "\n".join(
                clause_to_string(Clause(_strip_name(c.head), c.body).to_term())
                for c in version.clauses
            )
            canonical = by_shape.get(shape)
            if canonical is None:
                by_shape[shape] = version
                kept.append(version)
            else:
                rename_map[version.name] = canonical.name
                state.version_names[(indicator, version.mode)] = canonical.name
                state.report.note(
                    indicator, version.mode,
                    f"identical to version {canonical.name}; merged",
                )
        if len(kept) == 1:
            # A single distinct version: give it back the original name
            # and skip the dispatcher entirely ("predicates with clauses
            # of one goal cannot be reordered" end up here too).
            only = kept[0]
            rename_map[only.name] = indicator[0]
            only.name = indicator[0]
            for (ind, mode) in list(state.version_names):
                if ind == indicator:
                    state.version_names[(ind, mode)] = indicator[0]
        if not rename_map:
            return
        for version in kept:
            version.clauses = [
                Clause(
                    _rewrite_one_name(clause.head, rename_map),
                    goals_to_body(
                        _rewrite_goal_names(body_goals(clause.body), rename_map)
                    ),
                )
                for clause in version.clauses
            ]
        versions[:] = kept


class OutputBuildPhase(Phase):
    """Emit the output database: dispatchers first (they carry the
    original names), then every distinct version's clauses, with
    tabling propagated to the specialised names."""

    name = "output build"
    inputs = ("versions", "version_names", "database", "options", "spans")
    outputs = ("output",)

    def run(self, state) -> None:
        """Build ``state.output`` from the collected versions."""
        versions = state.versions
        output = Database(indexing=state.options.indexing)
        output.operators = state.database.operators
        dispatched: Set[Indicator] = set()
        for (indicator, _mode), version in versions.items():
            if version.name == indicator[0]:
                continue  # in-place version keeps the original name
            if indicator in dispatched:
                continue
            dispatched.add(indicator)
            mode_map = {
                mode: name
                for (ind, mode), name in state.version_names.items()
                if ind == indicator
            }
            with state.spans.span("specialize"):
                output.add_clause(build_dispatcher(indicator, mode_map))
        seen_versions: Set[Indicator] = set()
        for version in versions.values():
            if version.version_indicator in seen_versions:
                continue
            seen_versions.add(version.version_indicator)
            for clause in version.clauses:
                output.add_clause(Clause(clause.head, clause.body))
            # A tabled predicate stays tabled under its specialised
            # names, so the emitted program memoizes the same calls.
            if version.indicator in state.database.tabled:
                output.tabled.add(version.version_indicator)
        state.output = output


class BackendSelectionPhase(Phase):
    """Pick the evaluation backend (top-down SLD vs bottom-up
    semi-naive) for every user predicate, per recursion component.

    This is the reorder-time face of the ``--eval=auto`` dispatcher:
    the program is stratified with :func:`repro.analysis.stratify`,
    and each stratum gets a :class:`~repro.markov.backend.BackendChoice`
    verdict — datalog-eligible recursive strata go bottom-up, eligible
    non-recursive strata are decided by comparing the cost model's
    all-free-mode estimate against the materialization bound, and
    everything else stays top-down. The verdicts land in
    ``report.backends`` (and the JSONL report's ``backends`` key) so a
    user can see which strata the engine would materialize before ever
    running the program.
    """

    name = "backend selection"
    inputs = ("database", "callgraph", "model")
    outputs = ("report.backends",)

    def run(self, state) -> None:
        """Stratify the source program and record one verdict per
        defined predicate on ``state.report.backends``."""
        stratification = stratify(state.database, state.callgraph)
        for stratum in stratification.strata:
            for indicator in stratum.predicates:
                if not state.database.defines(indicator):
                    continue
                topdown = None
                if stratum.eligible and not stratum.recursive:
                    mode = (ModeItem.MINUS,) * indicator[1]
                    topdown = state.model.predicate_stats(indicator, mode)
                state.report.backends[indicator] = choose_backend(
                    eligible=stratum.eligible,
                    recursive=stratum.recursive,
                    fact_count=stratum.fact_count,
                    rule_count=stratum.rule_count,
                    topdown=topdown,
                )


def _strip_name(head: Term) -> Term:
    """Replace the head functor with a placeholder for shape comparison."""
    head = deref(head)
    if isinstance(head, Struct):
        return Struct("$head", head.args)
    return Atom("$head")


def _rewrite_one_name(term: Term, mapping: Dict[str, str]) -> Term:
    term_deref = deref(term)
    if isinstance(term_deref, Struct) and term_deref.name in mapping:
        return Struct(mapping[term_deref.name], term_deref.args)
    if isinstance(term_deref, Atom) and term_deref.name in mapping:
        return Atom(mapping[term_deref.name])
    return term


def _rewrite_goal_names(goals: List[Term], mapping: Dict[str, str]) -> List[Term]:
    return [_rewrite_one_name(goal, mapping) for goal in goals]
