"""Wiring and execution order of the reordering pipeline.

:class:`ReorderPipeline` instantiates the nine phases, runs them over a
:class:`PipelineState`, and — when an :class:`AnalysisContext` is
attached — replays cached per-predicate builds instead of recomputing
them. The cold path performs exactly the operations of the
pre-pipeline ``Reorderer.reorder()`` in exactly the same order, so its
output is byte-identical (pinned by ``tests/reorder/golden/``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...analysis.modes import Mode
from ...errors import BudgetExceededError
from ...robustness import faults
from ...robustness.budget import Budget
from .build import (
    GoalSequencePhase,
    InnerControlPhase,
    RuntimeGuardPhase,
    VersionBuildPhase,
)
from .context import AnalysisContext, CachedPredicateBuild
from .phases import (
    AnalysisSummaryPhase,
    BackendSelectionPhase,
    ModeEnumerationPhase,
    OutputBuildPhase,
    ProcessingOrderPhase,
)
from .phases import VersionDedupPhase
from .types import Indicator, ModeVersion, ReorderedProgram

__all__ = ["PipelineState", "ReorderPipeline"]


class PipelineState:
    """Everything the phases read and write while reordering one
    program: the analyses, the shared report/telemetry objects, and the
    per-predicate scratch slots (``current*``)."""

    def __init__(
        self,
        *,
        options,
        database,
        report,
        spans,
        search_counters,
        declarations,
        callgraph,
        fixity,
        semifixity,
        modes,
        domains,
        model,
        version_names,
        context: Optional[AnalysisContext] = None,
        budget: Optional[Budget] = None,
        events=None,
    ):
        self.options = options
        self.database = database
        self.report = report
        self.spans = spans
        self.search_counters = search_counters
        self.declarations = declarations
        self.callgraph = callgraph
        self.fixity = fixity
        self.semifixity = semifixity
        self.modes = modes
        self.domains = domains
        self.model = model
        #: (indicator, mode) → final specialised name (shared with the
        #: facade so later runs and explain() see the same mapping).
        self.version_names: Dict[Tuple[Indicator, Mode], str] = version_names
        #: None disables build caching (cold one-shot run).
        self.context = context
        #: Whole-run resource budget (None = unbounded). Exhaustion of
        #: *this* budget aborts the run; per-predicate failures degrade.
        self.budget = budget
        #: Per-predicate deadline budget, rebuilt by the runner for each
        #: indicator when ``options.phase_timeout`` is set.
        self.phase_budget: Optional[Budget] = None
        #: Optional event bus (degraded/budget events).
        self.events = events
        # Whole-program results.
        self.order: List[Indicator] = []
        self.versions: Dict[Tuple[Indicator, Mode], ModeVersion] = {}
        self.output = None
        # Per-predicate scratch (reset per indicator by the runner).
        self.current: Optional[Indicator] = None
        self.current_modes: List[Mode] = []
        self.current_versions: List[ModeVersion] = []
        self.current_specialized = False
        self.current_overrides: List[Tuple[Mode, object]] = []
        # Nested sub-phase request slots.
        self.sequence_request = None
        self.control_request = None
        self.guard_request = None
        # Run-local warning accumulators: the mode-inference and
        # cost-model warning streams of *this* run, in emission order.
        # With a reused context the underlying analyses keep warnings
        # from previous runs (memo-guarded, so they would not re-emit);
        # per-predicate deltas + cached replays reconstruct the stream.
        self.run_modes_warnings: List[str] = []
        self.run_model_warnings: List[str] = []


class ReorderPipeline:
    """The ten phases, in execution order, over one PipelineState."""

    def __init__(self, state: PipelineState):
        self.state = state
        self.analysis_summary = AnalysisSummaryPhase()
        self.processing_order = ProcessingOrderPhase()
        self.mode_enumeration = ModeEnumerationPhase()
        self.goal_sequence = GoalSequencePhase()
        self.inner_control = InnerControlPhase(self.goal_sequence)
        self.runtime_guards = RuntimeGuardPhase(
            self.goal_sequence, self.inner_control
        )
        self.version_build = VersionBuildPhase(
            self.goal_sequence, self.inner_control, self.runtime_guards
        )
        self.version_dedup = VersionDedupPhase()
        self.output_build = OutputBuildPhase()
        self.backend_selection = BackendSelectionPhase()
        #: All phases, in the order their work happens.
        self.phases = (
            self.analysis_summary,
            self.processing_order,
            self.mode_enumeration,
            self.version_build,
            self.goal_sequence,
            self.inner_control,
            self.runtime_guards,
            self.version_dedup,
            self.output_build,
            self.backend_selection,
        )

    def run(self) -> ReorderedProgram:
        """Execute all phases and return the reordered program.

        Per-predicate failure isolation: any exception out of one
        predicate's build (injected fault, per-predicate deadline, a
        bug in an analysis) rolls back that predicate's side effects
        and degrades it to source order, leaving every other
        predicate's output untouched. Only exhaustion of the
        *whole-run* budget (deadline expiry / cancellation) aborts.
        """
        state = self.state
        if state.budget is not None:
            state.budget.start()
        self.analysis_summary.run(state)
        self.processing_order.run(state)
        for indicator in state.order:
            state.current = indicator
            if state.budget is not None:
                state.budget.check("phase.build")
            if state.options.phase_timeout is not None:
                state.phase_budget = Budget(
                    deadline=state.options.phase_timeout
                ).start()
            snapshot = self._snapshot()
            try:
                if faults.ACTIVE is not None:
                    faults.ACTIVE.hit("phase.build")
                if not self._replay_cached(indicator):
                    self._build_fresh(indicator)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                if self._whole_run_exhausted(exc):
                    raise
                self._degrade(indicator, exc, snapshot)
            finally:
                state.phase_budget = None
            for version in state.current_versions:
                state.versions[(version.indicator, version.mode)] = version
        self.output_build.run(state)
        self.backend_selection.run(state)
        state.report.warnings.extend(state.run_modes_warnings)
        state.report.warnings.extend(state.run_model_warnings)
        return ReorderedProgram(
            state.output,
            state.versions,
            state.report,
            state.database,
            version_names=dict(state.version_names),
        )

    # -- failure isolation -------------------------------------------------

    def _whole_run_exhausted(self, exc: Exception) -> bool:
        """Is this exception the *whole-run* budget giving out (which
        must propagate), rather than a per-predicate failure (which
        degrades)?"""
        budget = self.state.budget
        if budget is None or not isinstance(exc, BudgetExceededError):
            return False
        return budget.expired or (
            budget.token is not None and budget.token.cancelled
        )

    def _snapshot(self) -> Tuple[int, int, int, int, int, int, int]:
        """Lengths of every append-only stream a build mutates, taken
        before the build so :meth:`_rollback` can truncate them."""
        state = self.state
        return (
            len(state.report._log),
            len(state.report.warnings),
            len(state.modes.warnings),
            len(state.model.warnings),
            len(state.version_names),
            len(state.run_modes_warnings),
            len(state.run_model_warnings),
        )

    def _rollback(self, indicator: Indicator, snapshot) -> None:
        """Undo every side effect of a failed build: report notes and
        warnings, analysis warning streams, version-name registrations,
        and cost-model overrides."""
        state = self.state
        (
            log_start, warn_start, modes_start, model_start,
            names_start, run_modes_start, run_model_start,
        ) = snapshot
        report = state.report
        for ind, mode, _line in reversed(report._log[log_start:]):
            notes = report.decisions.get((ind, mode))
            if notes:
                notes.pop()
                if not notes:
                    del report.decisions[(ind, mode)]
        del report._log[log_start:]
        del report.warnings[warn_start:]
        del state.modes.warnings[modes_start:]
        del state.model.warnings[model_start:]
        del state.run_modes_warnings[run_modes_start:]
        del state.run_model_warnings[run_model_start:]
        for key in list(state.version_names.keys())[names_start:]:
            del state.version_names[key]
        for mode, _stats in state.current_overrides:
            state.model.remove_override(indicator, mode)
        state.current_overrides = []

    def _degrade(self, indicator: Indicator, exc: Exception, snapshot) -> None:
        """Fall back to the predicate's source clauses after a failed
        build: roll back the build's side effects, register a verbatim
        version under the original name (exactly the shape the
        no-legal-modes path emits, so the output builder adds no
        dispatcher), and record the degradation."""
        state = self.state
        self._rollback(indicator, snapshot)
        reason = f"{type(exc).__name__}: {exc}"
        version = ModeVersion(
            indicator=indicator,
            mode=(),
            name=indicator[0],
            clauses=list(state.database.clauses(indicator)),
            estimate=None,
            original_estimate=None,
        )
        state.version_names[(indicator, ())] = indicator[0]
        state.current_versions = [version]
        state.current_specialized = False
        state.report.degraded[indicator] = reason
        state.report.warnings.append(
            f"degraded {indicator[0]}/{indicator[1]} to source order: {reason}"
        )
        if state.events is not None:
            from ...observability.events import DegradedEvent

            state.events.emit(
                DegradedEvent(indicator=indicator, phase="build", reason=reason)
            )

    # -- one predicate, fresh ---------------------------------------------

    def _build_fresh(self, indicator: Indicator) -> None:
        """Run mode enumeration, version build and dedup for one
        predicate, capturing every side effect for later replay when a
        context is attached."""
        state = self.state
        caching = state.context is not None
        log_start = len(state.report._log)
        warn_start = len(state.report.warnings)
        modes_start = len(state.modes.warnings)
        model_start = len(state.model.warnings)
        names_start = len(state.version_names)
        state.current_overrides = []

        self.mode_enumeration.run(state)
        self.version_build.run(state)
        self.version_dedup.run(state)

        modes_delta = list(state.modes.warnings[modes_start:])
        model_delta = list(state.model.warnings[model_start:])
        state.run_modes_warnings.extend(modes_delta)
        state.run_model_warnings.extend(model_delta)
        if not caching:
            return
        # Capture this predicate's registrations in insertion order.
        # Dedup rewrites names in place (no reinsertion), so slicing the
        # ordered dict view from names_start is exact for new entries;
        # a predicate is processed once, so all its entries are new.
        new_names = [
            (mode, name)
            for (ind, mode), name in list(state.version_names.items())[names_start:]
            if ind == indicator
        ]
        notes = [
            (mode, line)
            for (ind, mode, line) in state.report._log[log_start:]
            if ind == indicator
        ]
        state.context.store_build(
            indicator,
            CachedPredicateBuild(
                indicator=indicator,
                versions=list(state.current_versions),
                version_names=new_names,
                notes=notes,
                report_warnings=list(state.report.warnings[warn_start:]),
                modes_warnings=modes_delta,
                model_warnings=model_delta,
                overrides=list(state.current_overrides),
            ),
        )

    # -- one predicate, from cache ----------------------------------------

    def _replay_cached(self, indicator: Indicator) -> bool:
        """Serve one predicate from the context cache, replaying the
        side effects a fresh build would have had. Returns False on a
        miss (or when no context is attached)."""
        state = self.state
        if state.context is None:
            return False
        build = state.context.build_for(indicator)
        if build is None:
            return False
        for mode, name in build.version_names:
            state.version_names[(indicator, mode)] = name
        for mode, stats in build.overrides:
            state.model.override_stats(indicator, mode, stats)
        for mode, line in build.notes:
            state.report.note(indicator, mode, line)
        state.report.warnings.extend(build.report_warnings)
        state.run_modes_warnings.extend(build.modes_warnings)
        state.run_model_warnings.extend(build.model_warnings)
        state.current_versions = list(build.versions)
        return True
