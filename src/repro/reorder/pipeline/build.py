"""The per-predicate phases: version building and its sub-phases.

Goal-sequence reordering (§III-B/§VI-A), inner-control reordering
(§IV-D-2/5/6), §V-D runtime guards, and the per-mode version build that
drives them. Like :mod:`.phases`, the bodies are operation-order
preserving transplants from the pre-pipeline ``Reorderer`` — golden
fixtures pin the cold-path output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...analysis.modes import (
    Mode,
    ModeItem,
    VarState,
    bind_head_states,
    call_mode,
)
from ...markov.clause_model import SequenceEvaluation
from ...markov.goal_stats import GoalStats
from ...markov.predicate_model import head_match_probability
from ...prolog.database import Clause, body_goals, goals_to_body
from ...prolog.terms import Atom, Struct, Term, deref, functor_indicator
from ..clause_order import ClauseRanking, order_clauses
from ..goal_search import find_best_order
from ..restrictions import order_constraints, partition_body
from ..specialize import rename_goal, specialized_name
from .phases import Phase
from .types import Indicator, ModeVersion

__all__ = [
    "SequenceRequest",
    "ControlRequest",
    "GuardRequest",
    "GoalSequencePhase",
    "InnerControlPhase",
    "RuntimeGuardPhase",
    "VersionBuildPhase",
    "reorder_clause_goals",
]


@dataclass
class SequenceRequest:
    """One conjunction to reorder: inputs plus result slots.

    ``multi_default=False`` ranks every block by the single-solution
    chain (used for contexts that need only the first answer, e.g.
    inside negation). ``states`` is advanced in place across blocks.
    """

    indicator: Indicator
    mode: Mode
    body: Term
    states: VarState
    multi_default: bool = True
    #: Result: the reordered goal list.
    goals: List[Term] = field(default_factory=list)
    #: Result: False when some block had no legal order.
    legal: bool = True


@dataclass
class ControlRequest:
    """One already-reordered goal list whose control constructs
    (negation, set predicates, disjunction halves) still need their
    inner conjunctions reordered."""

    indicator: Indicator
    mode: Mode
    goals: List[Term]
    states: VarState
    #: Result: the rebuilt goal list.
    rebuilt: List[Term] = field(default_factory=list)


@dataclass
class GuardRequest:
    """One in-place version to consider for §V-D runtime guards."""

    indicator: Indicator
    clauses: Sequence[Clause]
    version: ModeVersion
    generic_mode: Mode
    legal_modes: List[Mode]


class GoalSequencePhase(Phase):
    """Block-partition one conjunction and search every mobile block
    for its cheapest legal order; advances the request's states."""

    name = "goal sequence"
    inputs = (
        "sequence_request",
        "fixity",
        "semifixity",
        "model",
        "options",
        "spans",
        "search_counters",
    )
    outputs = ("sequence_request.goals", "sequence_request.legal", "report.decisions")

    def run(self, state) -> None:
        """Process ``state.sequence_request`` (fills goals/legal)."""
        request = state.sequence_request
        indicator, mode, states = request.indicator, request.mode, request.states
        partition = partition_body(request.body, state.fixity)
        new_goals: List[Term] = []
        legal = True
        for block in partition.blocks:
            multi = block.multi_solution and request.multi_default
            if (
                not block.mobile
                or not state.options.reorder_goals
                or len(block) <= 1
            ):
                evaluation = state.model.evaluate_goals(block.goals, states)
                if evaluation is None:
                    legal = False
                new_goals.extend(block.goals)
                continue
            constraints = order_constraints(block.goals, state.semifixity, states)
            with state.spans.span("goal search"):
                result = find_best_order(
                    block.goals,
                    states,
                    state.model,
                    constraints,
                    multi_solution=multi,
                    exhaustive_limit=state.options.exhaustive_limit,
                    counters=state.search_counters,
                    node_budget=state.options.astar_node_budget,
                    budget=(
                        state.phase_budget
                        if state.phase_budget is not None
                        else state.budget
                    ),
                )
            if result is None:
                state.report.note(
                    indicator, mode,
                    f"no legal order for a {len(block)}-goal block; kept source order",
                )
                state.model.evaluate_goals(block.goals, states)
                new_goals.extend(block.goals)
                legal = False
                continue
            if result.order != tuple(range(len(block.goals))):
                state.report.note(
                    indicator, mode,
                    f"goals reordered to {[i + 1 for i in result.order]} "
                    f"({result.strategy}, {result.explored} orders examined)",
                )
            new_goals.extend(block.goals[i] for i in result.order)
            states.clear()
            states.update(result.states)
        request.goals = new_goals
        request.legal = legal

    def reorder(
        self,
        state,
        indicator: Indicator,
        mode: Mode,
        body: Term,
        states: VarState,
        multi_default: bool = True,
    ) -> Tuple[List[Term], bool]:
        """Run the phase on one conjunction (nesting-safe)."""
        request = SequenceRequest(indicator, mode, body, states, multi_default)
        previous = getattr(state, "sequence_request", None)
        state.sequence_request = request
        try:
            self.run(state)
        finally:
            state.sequence_request = previous
        return request.goals, request.legal


class InnerControlPhase(Phase):
    """Reorder the conjunctions *inside* negation, the set predicates,
    and disjunction halves ("we reorder multiple goals within its
    argument", "we reorder the internal goals"). One nesting level;
    deeper structure is left as written."""

    name = "inner control"
    inputs = ("control_request", "modes")
    outputs = ("control_request.rebuilt",)

    def __init__(self, goal_sequence: GoalSequencePhase):
        self.goal_sequence = goal_sequence

    def run(self, state) -> None:
        """Process ``state.control_request`` (fills rebuilt)."""
        request = state.control_request
        rebuilt: List[Term] = []
        for goal in request.goals:
            rebuilt.append(
                self._reorder_compound(
                    state, request.indicator, request.mode, goal, request.states
                )
            )
            state.modes.abstract_execute(goal, request.states)
        request.rebuilt = rebuilt

    def reorder(
        self,
        state,
        indicator: Indicator,
        mode: Mode,
        goals: List[Term],
        states: VarState,
    ) -> List[Term]:
        """Run the phase on one goal list (nesting-safe)."""
        request = ControlRequest(indicator, mode, goals, states)
        previous = getattr(state, "control_request", None)
        state.control_request = request
        try:
            self.run(state)
        finally:
            state.control_request = previous
        return request.rebuilt

    def _reorder_compound(
        self, state, indicator: Indicator, mode: Mode, goal: Term, states: VarState
    ) -> Term:
        goal_deref = deref(goal)
        if not isinstance(goal_deref, Struct):
            return goal
        name, arity = goal_deref.name, goal_deref.arity
        if name in ("\\+", "not", "once") and arity == 1:
            # Only the first solution of the argument matters.
            inner = self._reorder_subbody(
                state, indicator, mode, goal_deref.args[0], dict(states), multi=False
            )
            return Struct(name, (inner,))
        if name in ("findall", "bagof", "setof") and arity == 3:
            rebuilt = self._reorder_caret_body(
                state, indicator, mode, goal_deref.args[1], dict(states)
            )
            return Struct(
                name, (goal_deref.args[0], rebuilt, goal_deref.args[2])
            )
        if name == ";" and arity == 2:
            left = deref(goal_deref.args[0])
            if isinstance(left, Struct) and left.name == "->" and left.arity == 2:
                # The premise is immobile "exactly like goals before a
                # cut" (§IV-D-3); then/else halves reorder.
                condition_states = dict(states)
                state.modes.abstract_execute(left.args[0], condition_states)
                then_part = self._reorder_subbody(
                    state, indicator, mode, left.args[1], condition_states
                )
                else_part = self._reorder_subbody(
                    state, indicator, mode, goal_deref.args[1], dict(states)
                )
                return Struct(
                    ";", (Struct("->", (left.args[0], then_part)), else_part)
                )
            left_part = self._reorder_subbody(
                state, indicator, mode, goal_deref.args[0], dict(states)
            )
            right_part = self._reorder_subbody(
                state, indicator, mode, goal_deref.args[1], dict(states)
            )
            return Struct(";", (left_part, right_part))
        return goal

    def _reorder_subbody(
        self,
        state,
        indicator: Indicator,
        mode: Mode,
        body: Term,
        states: VarState,
        multi: bool = True,
    ) -> Term:
        goals, _legal = self.goal_sequence.reorder(
            state, indicator, mode, body, states, multi_default=multi
        )
        return goals_to_body(goals)

    def _reorder_caret_body(
        self, state, indicator: Indicator, mode: Mode, term: Term, states: VarState
    ) -> Term:
        term_deref = deref(term)
        if (
            isinstance(term_deref, Struct)
            and term_deref.name == "^"
            and term_deref.arity == 2
        ):
            return Struct(
                "^",
                (
                    term_deref.args[0],
                    self._reorder_caret_body(
                        state, indicator, mode, term_deref.args[1], states
                    ),
                ),
            )
        return self._reorder_subbody(state, indicator, mode, term, states)


def reorder_clause_goals(
    state,
    goal_sequence: GoalSequencePhase,
    inner_control: InnerControlPhase,
    indicator: Indicator,
    clause: Clause,
    mode: Mode,
) -> Tuple[List[Term], Optional[SequenceEvaluation]]:
    """Reorder one clause body for one input mode.

    Returns the new goal list (original predicate names — renaming
    happens later) and the chain evaluation of the new order."""
    states: VarState = {}
    bind_head_states(clause.head, mode, states)
    new_goals, legal = goal_sequence.reorder(
        state, indicator, mode, clause.body, states
    )
    if state.options.reorder_goals:
        inner_states: VarState = {}
        bind_head_states(clause.head, mode, inner_states)
        new_goals = inner_control.reorder(
            state, indicator, mode, new_goals, inner_states
        )
    evaluation = (
        state.model.clause_body_evaluation(
            Clause(clause.head, goals_to_body(new_goals)), mode
        )
        if legal
        else None
    )
    return new_goals, evaluation


class RuntimeGuardPhase(Phase):
    """§V-D: wrap clauses in ``nonvar``-guarded if-then-else when the
    fully-instantiated mode prefers a different goal order.

    The guarded clause replaces the version's corresponding clause:
    ``head :- ( nonvar(A1), ... -> optimistic body ; generic body )``.
    Both bodies are the reorderer's output for their respective
    modes, so either branch is safe; the tests cost a few tag
    checks (the paper: "we use the new order and gain efficiency;
    if they fail, we use the original order and lose only the cost
    of the tests").
    """

    name = "runtime guards"
    inputs = ("guard_request", "options", "model")
    outputs = ("guard_request.version.clauses", "report.decisions")

    def __init__(
        self, goal_sequence: GoalSequencePhase, inner_control: InnerControlPhase
    ):
        self.goal_sequence = goal_sequence
        self.inner_control = inner_control

    def run(self, state) -> None:
        """Process ``state.guard_request`` (rewrites version.clauses)."""
        request = state.guard_request
        indicator = request.indicator
        version = request.version
        generic_mode = request.generic_mode
        optimistic_mode = (ModeItem.PLUS,) * indicator[1]
        if (
            optimistic_mode == generic_mode
            or optimistic_mode not in request.legal_modes
        ):
            return
        guarded: List[Clause] = []
        changed = False
        for clause, generic_clause in zip(request.clauses, version.clauses):
            optimistic_goals, evaluation = reorder_clause_goals(
                state, self.goal_sequence, self.inner_control,
                indicator, clause, optimistic_mode,
            )
            generic_goals = body_goals(generic_clause.body)
            optimistic_body = goals_to_body(optimistic_goals)
            if evaluation is None or _same_goal_sequence(
                optimistic_goals, generic_goals
            ):
                guarded.append(generic_clause)
                continue
            head = deref(clause.head)
            if not isinstance(head, Struct):
                guarded.append(generic_clause)
                continue
            condition = goals_to_body(
                [Struct("nonvar", (arg,)) for arg in head.args]
            )
            body = Struct(
                ";",
                (
                    Struct("->", (condition, optimistic_body)),
                    generic_clause.body,
                ),
            )
            guarded.append(Clause(clause.head, body))
            changed = True
        if changed:
            version.clauses = guarded
            state.report.note(
                indicator, generic_mode,
                "run-time nonvar tests added (different order when instantiated)",
            )


class VersionBuildPhase(Phase):
    """Build every version of the current predicate: one per legal mode
    when specialising, one in-place version (optionally runtime-guarded)
    otherwise, verbatim when no legal mode exists."""

    name = "version build"
    inputs = (
        "current",
        "current_modes",
        "database",
        "options",
        "model",
        "modes",
        "domains",
        "fixity",
        "spans",
    )
    outputs = (
        "current_versions",
        "current_specialized",
        "current_overrides",
        "version_names",
        "report.decisions",
    )

    def __init__(
        self,
        goal_sequence: GoalSequencePhase,
        inner_control: InnerControlPhase,
        runtime_guards: RuntimeGuardPhase,
    ):
        self.goal_sequence = goal_sequence
        self.inner_control = inner_control
        self.runtime_guards = runtime_guards

    def run(self, state) -> None:
        """Build ``state.current_versions`` for the current predicate."""
        indicator = state.current
        clauses = state.database.clauses(indicator)
        modes = state.current_modes
        state.current_specialized = False
        should_specialize = (
            state.options.specialize
            and indicator[1] > 0
            and 0 < len(modes) <= state.options.max_versions
        )
        if not modes:
            # Keep the predicate verbatim (still reachable via output build).
            version = ModeVersion(
                indicator=indicator,
                mode=(),
                name=indicator[0],
                clauses=list(clauses),
                estimate=None,
                original_estimate=None,
            )
            state.version_names[(indicator, ())] = indicator[0]
            state.current_versions = [version]
            return
        if not should_specialize:
            mode = _generic_mode(indicator, modes)
            version = self._build_version(state, indicator, clauses, mode, rename=False)
            version.name = indicator[0]
            state.version_names[(indicator, mode)] = indicator[0]
            for other in modes:
                state.version_names.setdefault((indicator, other), indicator[0])
            if state.options.runtime_tests and indicator[1] > 0:
                previous = getattr(state, "guard_request", None)
                state.guard_request = GuardRequest(
                    indicator, clauses, version, mode, modes
                )
                try:
                    self.runtime_guards.run(state)
                finally:
                    state.guard_request = previous
            state.current_versions = [version]
            return
        state.current_specialized = True
        state.current_versions = [
            self._build_version(state, indicator, clauses, mode, rename=True)
            for mode in modes
        ]

    # -- building one version ---------------------------------------------

    def _build_version(
        self,
        state,
        indicator: Indicator,
        clauses: Sequence[Clause],
        mode: Mode,
        rename: bool,
    ) -> ModeVersion:
        name = specialized_name(indicator[0], mode) if rename else indicator[0]
        state.version_names[(indicator, mode)] = name
        original_estimate = state.model.predicate_stats(indicator, mode)
        rankings: List[ClauseRanking] = []
        evaluations: List[Tuple[float, Optional[SequenceEvaluation]]] = []
        for clause in clauses:
            new_goals, evaluation = reorder_clause_goals(
                state, self.goal_sequence, self.inner_control,
                indicator, clause, mode,
            )
            if rename:
                with state.spans.span("specialize"):
                    renamed_goals = self._rename_goals(state, clause, new_goals, mode)
            else:
                renamed_goals = new_goals
            head = rename_goal(clause.head, name) if rename else clause.head
            new_clause = Clause(head, goals_to_body(renamed_goals))
            match = head_match_probability(clause, mode, state.domains)
            evaluations.append((match, evaluation))
            if evaluation is None:
                stats = GoalStats(cost=1.0, solutions=0.0, prob=0.0)
                p, c = 0.0, 1.0
            else:
                stats = evaluation.as_goal_stats()
                p = match * evaluation.p_success
                c = max(match * evaluation.single_cost, 1e-6)
            rankings.append(ClauseRanking(clause=new_clause, stats=stats, p=p, c=c))

        if state.options.reorder_clauses and len(rankings) > 1:
            with state.spans.span("clause order"):
                ordered = order_clauses(rankings, state.fixity)
            if [r.clause for r in ordered] != [r.clause for r in rankings]:
                state.report.note(
                    indicator, mode,
                    "clauses reordered to "
                    + str([rankings.index(r) + 1 for r in ordered]),
                )
            rankings = ordered

        new_clauses = [ranking.clause for ranking in rankings]
        # Propagate the reordered version's statistics upward so callers
        # are ordered against the costs they will actually see.
        estimate = _combined_stats(evaluations)
        if estimate is not None and state.model.is_tabled(indicator):
            # Callers of a tabled predicate mostly pay the amortized
            # re-call cost, not the first derivation.
            from ...prolog.tabling.cost import tabled_stats

            estimate = tabled_stats(estimate)
        if estimate is not None:
            state.model.override_stats(indicator, mode, estimate)
            state.current_overrides.append((mode, estimate))
            if (
                original_estimate is not None
                and estimate.cost < original_estimate.cost * 0.999
            ):
                # The paper stores mode, probability and cost with each
                # version; surface the estimated gain in the report.
                state.report.note(
                    indicator, mode,
                    f"estimated cost {original_estimate.cost:.1f} -> "
                    f"{estimate.cost:.1f} "
                    f"(p {original_estimate.prob:.2f} -> {estimate.prob:.2f})",
                )
        return ModeVersion(
            indicator=indicator,
            mode=mode,
            name=name,
            clauses=new_clauses,
            estimate=estimate,
            original_estimate=original_estimate,
        )

    def _rename_goals(
        self, state, clause: Clause, goals: List[Term], mode: Mode
    ) -> List[Term]:
        """Rename subgoals to their mode-specialised versions."""
        if not state.options.specialize:
            return goals
        states: VarState = {}
        bind_head_states(clause.head, mode, states)
        renamed: List[Term] = []
        for goal in goals:
            target = self._rename_one(state, goal, states)
            state.modes.abstract_execute(goal, states)
            renamed.append(target)
        return renamed

    #: Control constructs whose goal arguments are renamed recursively
    #: (position tuples index the goal-valued arguments).
    _CONTROL_GOAL_ARGS = {
        ("\\+", 1): (0,),
        ("not", 1): (0,),
        ("call", 1): (0,),
        ("once", 1): (0,),
    }

    def _rename_one(self, state, goal: Term, states: VarState) -> Term:
        """Rename a goal (recursively through control constructs) to the
        specialised versions matching its call modes. ``states`` is not
        mutated; the caller advances it afterwards. Renaming is purely
        an optimisation — unrenamed calls go through the (correct)
        dispatcher — so any part we cannot track stays as written."""
        goal_deref = deref(goal)
        if not isinstance(goal_deref, (Atom, Struct)):
            return goal
        if isinstance(goal_deref, Struct):
            name, arity = goal_deref.name, goal_deref.arity
            if name == "," and arity == 2:
                left = self._rename_one(state, goal_deref.args[0], states)
                after_left = dict(states)
                state.modes.abstract_execute(goal_deref.args[0], after_left)
                right = self._rename_one(state, goal_deref.args[1], after_left)
                return Struct(",", (left, right))
            if name == ";" and arity == 2:
                first = deref(goal_deref.args[0])
                if isinstance(first, Struct) and first.name == "->" and first.arity == 2:
                    condition = self._rename_one(state, first.args[0], states)
                    after_condition = dict(states)
                    state.modes.abstract_execute(first.args[0], after_condition)
                    then_part = self._rename_one(state, first.args[1], after_condition)
                    else_part = self._rename_one(
                        state, goal_deref.args[1], dict(states)
                    )
                    return Struct(
                        ";", (Struct("->", (condition, then_part)), else_part)
                    )
                left = self._rename_one(state, goal_deref.args[0], dict(states))
                right = self._rename_one(state, goal_deref.args[1], dict(states))
                return Struct(";", (left, right))
            if name == "->" and arity == 2:
                condition = self._rename_one(state, goal_deref.args[0], states)
                after_condition = dict(states)
                state.modes.abstract_execute(goal_deref.args[0], after_condition)
                then_part = self._rename_one(
                    state, goal_deref.args[1], after_condition
                )
                return Struct("->", (condition, then_part))
            control = self._CONTROL_GOAL_ARGS.get((name, arity))
            if control is not None:
                args = list(goal_deref.args)
                for position in control:
                    args[position] = self._rename_one(
                        state, args[position], dict(states)
                    )
                return Struct(name, tuple(args))
            if name in ("findall", "bagof", "setof") and arity == 3:
                args = list(goal_deref.args)
                args[1] = self._rename_under_carets(state, args[1], dict(states))
                return Struct(name, tuple(args))
        try:
            indicator = functor_indicator(goal_deref)
        except TypeError:
            return goal
        if not state.database.defines(indicator):
            return goal
        goal_mode = call_mode(goal_deref, states)
        if any(item is ModeItem.ANY for item in goal_mode):
            return goal  # unknown instantiation: go through the dispatcher
        target = state.version_names.get((indicator, goal_mode))
        if target is None or target == indicator[0]:
            return goal
        return rename_goal(goal_deref, target)

    def _rename_under_carets(self, state, term: Term, states: VarState) -> Term:
        term_deref = deref(term)
        if (
            isinstance(term_deref, Struct)
            and term_deref.name == "^"
            and term_deref.arity == 2
        ):
            return Struct(
                "^",
                (
                    term_deref.args[0],
                    self._rename_under_carets(state, term_deref.args[1], states),
                ),
            )
        return self._rename_one(state, term, states)


def _generic_mode(indicator: Indicator, modes: List[Mode]) -> Mode:
    all_free = (ModeItem.MINUS,) * indicator[1]
    return all_free if all_free in modes else modes[0]


def _combined_stats(
    evaluations: List[Tuple[float, Optional[SequenceEvaluation]]]
) -> Optional[GoalStats]:
    """Predicate stats from per-clause (match prob, evaluation)."""
    total_cost = 1.0
    solutions = 0.0
    miss = 1.0
    any_legal = False
    for match, evaluation in evaluations:
        if evaluation is None or match == 0.0:
            continue
        any_legal = True
        total_cost += match * evaluation.total_cost
        solutions += match * evaluation.solutions
        miss *= 1.0 - match * evaluation.p_success
    if not any_legal:
        return None
    return GoalStats(cost=total_cost, solutions=solutions, prob=1.0 - miss)


def _same_goal_sequence(first: List[Term], second: List[Term]) -> bool:
    if len(first) != len(second):
        return False
    return all(a is b for a, b in zip(first, second))
