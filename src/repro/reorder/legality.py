"""Goal-order legality checking (paper §VI-B-1).

"Every goal must make a legal call to its predicate. A reordering that
prevents this, instantiating a goal improperly, is rejected. We generate
a potential order by instantiating a clause head with the mode and
scanning the clause goal by goal, keeping track of the variables each
goal demands and instantiates."

This module provides exactly that scan, independent of the cost model,
so legality can be tested (and is tested) in isolation; the search uses
the cost model's equivalent propagation because it needs the statistics
anyway.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..analysis.mode_inference import ModeInference
from ..analysis.modes import Mode, VarState, bind_head_states
from ..prolog.terms import Term

__all__ = ["order_is_legal", "propagate_order", "legal_orders"]


def propagate_order(
    goals: Sequence[Term],
    states: VarState,
    inference: ModeInference,
) -> bool:
    """Scan goals left to right, updating ``states``; False when some
    goal would be called in an illegal mode."""
    for goal in goals:
        if not inference.abstract_execute(goal, states):
            return False
    return True


def order_is_legal(
    head: Term,
    goals: Sequence[Term],
    input_mode: Mode,
    inference: ModeInference,
) -> bool:
    """Is this ordering of the clause body legal for the input mode?"""
    states: VarState = {}
    bind_head_states(head, input_mode, states)
    return propagate_order(goals, states, inference)


def legal_orders(
    head: Term,
    goals: Sequence[Term],
    input_mode: Mode,
    inference: ModeInference,
) -> List[Tuple[int, ...]]:
    """All legal permutations, as index tuples (test/diagnostic helper).

    Exponential — intended for short bodies and the test-suite; the
    search in :mod:`repro.reorder.goal_search` prunes instead.
    """
    import itertools

    result = []
    for permutation in itertools.permutations(range(len(goals))):
        ordered = [goals[i] for i in permutation]
        if order_is_legal(head, ordered, input_mode, inference):
            result.append(permutation)
    return result
