"""Systematic set-equivalence verification of a reordered program.

The paper's contract (§II) is that permitted reorderings preserve
set-equivalence. This module *checks* that on concrete executions: for
every entry predicate (or a chosen set), it issues sampled calls in
every {+,-} mode — constants drawn from the program's own fact domains
— against both the original and the reordered program, and compares

* the multiset of answers (set-equivalence proper),
* success/failure ("they fail on the same queries"),
* captured side-effect output (write/nl), which set-equivalence does
  not promise but dispatched drop-in use usually wants flagged.

The result is a report the user can read before adopting the output —
the final safety net behind the static guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..analysis.calibration import CalibrationOptions, EmpiricalCalibrator
from ..analysis.modes import Mode, all_input_modes, mode_str
from ..errors import PrologError
from ..prolog.database import Database
from ..prolog.engine import Engine
from .system import ReorderedProgram

__all__ = ["QueryCheck", "VerificationReport", "verify_reordering"]

Indicator = Tuple[str, int]


@dataclass
class QueryCheck:
    """The outcome of one original-vs-reordered query comparison."""

    query: str
    reordered_query: str
    answers_match: bool
    output_matches: bool
    original_answers: int
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.answers_match and self.error is None


@dataclass
class VerificationReport:
    """All checks performed, with a pass/fail summary."""

    checks: List[QueryCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[QueryCheck]:
        return [check for check in self.checks if not check.ok]

    @property
    def output_mismatches(self) -> List[QueryCheck]:
        return [
            check
            for check in self.checks
            if check.ok and not check.output_matches
        ]

    def format(self) -> str:
        """The verification verdict with per-failure detail."""
        lines = [
            f"set-equivalence verification: {len(self.checks)} checks, "
            f"{len(self.failures)} failures, "
            f"{len(self.output_mismatches)} side-effect order differences"
        ]
        for check in self.failures:
            lines.append(
                f"  FAIL {check.query}  ({check.error or 'answers differ'})"
            )
        for check in self.output_mismatches:
            lines.append(f"  note {check.query}: output text differs")
        if self.passed:
            lines.append("  all answer sets identical")
        return "\n".join(lines)


def verify_reordering(
    original: Database,
    reordered: ReorderedProgram,
    indicators: Optional[Sequence[Indicator]] = None,
    max_samples: int = 6,
    call_budget: int = 200_000,
) -> VerificationReport:
    """Compare original and reordered behaviour over sampled calls.

    ``indicators`` defaults to every user predicate of the original
    program. Calls go through the reordered program's *dispatchers*
    (the drop-in path), so the var-test routing is verified too.
    """
    calibrator = EmpiricalCalibrator(
        original, CalibrationOptions(max_samples=max_samples)
    )
    report = VerificationReport()
    targets = list(indicators or original.predicates())
    for indicator in targets:
        if not reordered.database.defines(indicator):
            continue  # merged away or renamed: dispatcher absent
        for mode in all_input_modes(indicator[1]):
            for query in calibrator.sample_queries(indicator, mode):
                report.checks.append(
                    _check_query(original, reordered, query, call_budget)
                )
    return report


def _check_query(
    original: Database,
    reordered: ReorderedProgram,
    query: str,
    call_budget: int,
) -> QueryCheck:
    original_engine = Engine(original, call_budget=call_budget)
    reordered_engine = reordered.engine(call_budget=call_budget)
    try:
        original_solutions = original_engine.ask(query)
    except PrologError as error:
        # The original itself errors/diverges on this sample: the
        # reordered program is allowed to do anything here; skip deep
        # comparison but require it not to *succeed differently*.
        try:
            reordered_engine.ask(query)
            mirrored = False
        except PrologError:
            mirrored = True
        return QueryCheck(
            query=query,
            reordered_query=query,
            answers_match=mirrored,
            output_matches=True,
            original_answers=0,
            error=None if mirrored else f"original raised {type(error).__name__},"
            f" reordered did not",
        )
    try:
        reordered_solutions = reordered_engine.ask(query)
    except PrologError as error:
        return QueryCheck(
            query=query,
            reordered_query=query,
            answers_match=False,
            output_matches=True,
            original_answers=len(original_solutions),
            error=f"reordered raised {type(error).__name__}",
        )
    answers_match = sorted(s.key() for s in original_solutions) == sorted(
        s.key() for s in reordered_solutions
    )
    return QueryCheck(
        query=query,
        reordered_query=query,
        answers_match=answers_match,
        output_matches=original_engine.output_text()
        == reordered_engine.output_text(),
        original_answers=len(original_solutions),
    )
