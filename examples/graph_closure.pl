% Transitive closure over a small directed graph, tabled.
%
% The left-recursive formulation below loops forever under plain SLD
% resolution; under ":- table path/2." it terminates with the complete
% answer set (see docs/TABLING.md). Try:
%
%   PYTHONPATH=src python -m repro run examples/graph_closure.pl 'path(a, X)'
%   PYTHONPATH=src python -m repro compare examples/graph_closure.pl 'path(X, Y)'
%   PYTHONPATH=src python -m repro profile examples/graph_closure.pl 'path(X, Y)' --json -
%
% The graph: two diamonds sharing a spine, plus a cycle f -> g -> f
% (cycles are exactly what untabled closure cannot survive).

:- table path/2.
:- entry(path/2).

edge(a, b).
edge(a, c).
edge(b, d).
edge(c, d).
edge(d, e).
edge(e, f).
edge(f, g).
edge(g, f).

path(X, Y) :- path(X, Z), edge(Z, Y).
path(X, Y) :- edge(X, Y).

% Stratified negation over the completed table is fine:
node(a). node(b). node(c). node(d).
node(e). node(f). node(g). node(h).
unreachable_from(Source, Node) :-
    node(Node),
    Node \= Source,
    \+ path(Source, Node).
