"""The corporate-database experiment (paper §VII, Table III).

Run:  python examples/corporate_rules.py

Reorders the 120-employee synthetic corporate database and replays the
Table III queries, showing where the id-indexed facts let reordering
pay and where the rules are already optimal.
"""

from repro.experiments.tables import table3
from repro.prolog import Database, Engine
from repro.programs import corporate
from repro.reorder import Reorderer
from repro.prolog.writer import clause_to_string


def main() -> None:
    database = corporate.database()
    program = Reorderer(database).reorder()

    print("--- reordered rules " + "-" * 44)
    for indicator in program.database.predicates():
        name = indicator[0]
        if any(
            name == rule or name.startswith(f"{rule}_")
            for rule in ("benefits", "maternity", "tax")
        ):
            for clause in program.database.clauses(indicator):
                print(clause_to_string(clause.to_term()))

    print("\n--- Table III " + "-" * 50)
    print(table3().format())

    # Spot-check: a named-employee query through the dispatcher (the
    # drop-in path a user of the reordered program would take).
    engine = program.engine()
    (solution,) = engine.ask("maternity(Weeks, jane)")
    print(f"\nmaternity(Weeks, jane): Weeks = {solution['Weeks']}")


if __name__ == "__main__":
    main()
